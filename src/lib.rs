//! # dcbackup
//!
//! A cost–performance–availability framework for **underprovisioning the
//! backup power infrastructure of datacenters**, reproducing
//! *Underprovisioning Backup Power Infrastructure for Datacenters*
//! (Wang, Govindan, Sivasubramaniam, Kansal, Liu, Khessib — ASPLOS 2014).
//!
//! Datacenters conventionally provision diesel generators (DGs) and UPS
//! batteries to carry the *entire* peak load through *any* utility outage.
//! Because most outages are rare and short, much of that capital is wasted.
//! This crate lets you:
//!
//! * **price** any backup configuration — DG power, UPS power, UPS battery
//!   energy — with the paper's cap-ex model ([`core::cost`]);
//! * **simulate** power outages against a cluster running realistic
//!   application models, executing outage-handling techniques (throttling,
//!   consolidation via live migration, sleep, hibernation, and hybrids)
//!   within the provisioned capacity ([`sim`]);
//! * **size** the cheapest backup that meets a performability target
//!   ([`core::sizing`]), **plan** heterogeneous sections
//!   ([`core::planner`]), run the **TCO** break-even analysis
//!   ([`core::tco`]), and drive outages of unknown duration with the
//!   **adaptive controller** ([`core::online`]).
//!
//! ## Quick start
//!
//! ```
//! use dcbackup::core::evaluate::evaluate;
//! use dcbackup::core::{BackupConfig, Cluster, Technique};
//! use dcbackup::units::Seconds;
//! use dcbackup::workload::Workload;
//!
//! // A rack of Specjbb servers on a DG-less, 30-minute-battery backup.
//! let rack = Cluster::rack(Workload::specjbb());
//! let point = evaluate(
//!     &rack,
//!     &BackupConfig::large_e_ups(),
//!     &Technique::ride_through(),
//!     Seconds::from_minutes(30.0),
//! );
//! assert!(point.outcome.seamless());      // full availability...
//! assert!(point.cost < 0.6);              // ...at ~55% of today's cost.
//! ```
//!
//! ## Parallel sweeps
//!
//! Sweeps, sizing searches, plans, and availability analyses all route
//! through a shared deterministic thread pool and evaluation cache
//! ([`fleet`], surfaced in core as [`core::fleet`]): batches fan out over
//! all available cores (override with `DCB_THREADS=1` for serial runs) and
//! return results bit-identical to serial evaluation.
//!
//! ```
//! use dcbackup::core::evaluate::{paper_durations, sweep_configs};
//! use dcbackup::core::{fleet, BackupConfig, Cluster, Technique};
//! use dcbackup::workload::Workload;
//!
//! // The full Figure-5 grid, fanned out over the shared pool.
//! let rows = sweep_configs(
//!     &Cluster::rack(Workload::specjbb()),
//!     &BackupConfig::table3(),
//!     &paper_durations(),
//!     &Technique::catalog(),
//! );
//! assert_eq!(rows.len(), BackupConfig::table3().len() * 5);
//! // Every simulated point is now memoized: re-sweeping is ~free.
//! assert!(fleet::cache_stats().misses > 0);
//! ```
//!
//! ## Observability
//!
//! Every layer is instrumented through [`telemetry`] — deterministic
//! counters, histograms, and span timers that stay one branch per record
//! when disabled. Set `DCB_TELEMETRY=json` on the `repro` binary for a
//! byte-reproducible metric snapshot, or `text` for a human-readable
//! report; see OBSERVABILITY.md for the metric catalog.
//!
//! ## Hierarchical topologies
//!
//! The flat kernel evaluates one cluster behind one backup configuration.
//! [`topology`] scales that to a whole facility: a DC → cluster → rack
//! tree with capacity-limited feed edges, backup provisioned per subtree,
//! and prioritized consumers with shed/brownout deficit policies.
//! Identical subtrees resolve once (structural-digest aggregation), so a
//! million-server DC resolves in thousands of node-steps; see DESIGN.md
//! §12 and `repro topo --help` for the spec format.
//!
//! The sub-crates are re-exported as modules: [`units`], [`battery`],
//! [`outage`], [`server`], [`workload`], [`migration`], [`power`], [`sim`],
//! [`fleet`], [`core`], [`topology`], and [`telemetry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcb_battery as battery;
pub use dcb_core as core;
pub use dcb_fleet as fleet;
pub use dcb_migration as migration;
pub use dcb_outage as outage;
pub use dcb_power as power;
pub use dcb_server as server;
pub use dcb_sim as sim;
pub use dcb_telemetry as telemetry;
pub use dcb_topology as topology;
pub use dcb_units as units;
pub use dcb_workload as workload;
