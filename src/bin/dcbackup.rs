//! `dcbackup` — command-line front end to the underprovisioning framework.
//!
//! ```text
//! dcbackup cost <config> [--peak-mw <MW>]
//! dcbackup simulate <config> <technique> <minutes> [--workload <name>]
//! dcbackup size <technique> <minutes> [--workload <name>]
//! dcbackup availability <config> <technique> [--workload <name>] [--years <n>]
//! dcbackup list
//! ```

use dcbackup::core::availability::analyze;
use dcbackup::core::cost::CostModel;
use dcbackup::core::evaluate::evaluate;
use dcbackup::core::sizing::{min_cost_ups, SizingTargets};
use dcbackup::core::{BackupConfig, Cluster, Technique};
use dcbackup::units::{Kilowatts, Seconds};
use dcbackup::workload::Workload;
use std::process::ExitCode;

fn configs() -> Vec<BackupConfig> {
    BackupConfig::table3()
}

fn techniques() -> Vec<Technique> {
    Technique::extended_catalog()
}

fn find_config(name: &str) -> Option<BackupConfig> {
    configs()
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(name))
}

fn find_technique(name: &str) -> Option<Technique> {
    techniques()
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
}

fn find_workload(name: &str) -> Option<Workload> {
    match name.to_ascii_lowercase().as_str() {
        "specjbb" => Some(Workload::specjbb()),
        "websearch" | "web-search" => Some(Workload::web_search()),
        "memcached" => Some(Workload::memcached()),
        "speccpu" | "mcf" => Some(Workload::spec_cpu()),
        _ => None,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn workload_arg(args: &[String]) -> Result<Workload, String> {
    match flag_value(args, "--workload") {
        None => Ok(Workload::specjbb()),
        Some(name) => {
            find_workload(&name).ok_or(format!("unknown workload '{name}' (see `dcbackup list`)"))
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "list" => {
            println!("configurations:");
            let model = CostModel::paper();
            for c in configs() {
                println!(
                    "  {:<20} normalized cost {:.2}",
                    c.label(),
                    model.normalized_cost(&c)
                );
            }
            println!("techniques:");
            for t in techniques() {
                println!("  {}", t.name());
            }
            println!("workloads: specjbb, websearch, memcached, speccpu");
            Ok(())
        }
        "cost" => {
            let name = args
                .get(1)
                .ok_or("usage: dcbackup cost <config> [--peak-mw <MW>]")?;
            let config = find_config(name).ok_or(format!("unknown configuration '{name}'"))?;
            let peak = Kilowatts::from_megawatts(
                flag_value(&args, "--peak-mw")
                    .map(|v| v.parse().map_err(|_| format!("bad --peak-mw '{v}'")))
                    .transpose()?
                    .unwrap_or(10.0),
            );
            let model = CostModel::paper();
            let breakdown = model.annual_cost(&config, peak.to_watts());
            println!("{config}");
            println!("  datacenter peak    {} MW", peak.to_megawatts());
            println!("  DG                 ${:>12.0}/yr", breakdown.dg.value());
            println!(
                "  UPS electronics    ${:>12.0}/yr",
                breakdown.ups_power.value()
            );
            println!(
                "  UPS battery energy ${:>12.0}/yr",
                breakdown.ups_energy.value()
            );
            println!(
                "  total              ${:>12.0}/yr",
                breakdown.total().value()
            );
            println!(
                "  normalized (MaxPerf = 1): {:.2}",
                model.normalized_cost(&config)
            );
            Ok(())
        }
        "simulate" => {
            let usage =
                "usage: dcbackup simulate <config> <technique> <minutes> [--workload <name>]";
            let config = find_config(args.get(1).ok_or(usage)?).ok_or("unknown configuration")?;
            let technique = find_technique(args.get(2).ok_or(usage)?).ok_or("unknown technique")?;
            let minutes: f64 = args
                .get(3)
                .ok_or(usage)?
                .parse()
                .map_err(|_| "minutes must be a number")?;
            let cluster = Cluster::rack(workload_arg(&args)?);
            let p = evaluate(
                &cluster,
                &config,
                &technique,
                Seconds::from_minutes(minutes),
            );
            println!(
                "{} + {} on {} for a {minutes} min outage:",
                config.label(),
                technique.name(),
                cluster.workload()
            );
            println!("  normalized cost      {:.2}", p.cost);
            println!("  feasible             {}", p.outcome.feasible);
            println!("  state preserved      {}", !p.outcome.state_lost);
            println!(
                "  perf during outage   {:.1}%",
                p.outcome.perf_during_outage.to_percent()
            );
            println!(
                "  downtime             {:.1} min (range {:.1}–{:.1})",
                p.outcome.downtime.expected.to_minutes(),
                p.outcome.downtime.min.to_minutes(),
                p.outcome.downtime.max.to_minutes()
            );
            println!(
                "  peak backup draw     {:.0}% of nameplate",
                p.outcome.peak_power_fraction.to_percent()
            );
            Ok(())
        }
        "size" => {
            let usage = "usage: dcbackup size <technique> <minutes> [--workload <name>]";
            let technique = find_technique(args.get(1).ok_or(usage)?).ok_or("unknown technique")?;
            let minutes: f64 = args
                .get(2)
                .ok_or(usage)?
                .parse()
                .map_err(|_| "minutes must be a number")?;
            let cluster = Cluster::rack(workload_arg(&args)?);
            match min_cost_ups(
                &cluster,
                &technique,
                Seconds::from_minutes(minutes),
                &SizingTargets::execute_to_plan(),
            ) {
                Some(point) => {
                    println!(
                        "cheapest UPS for {} to cover {minutes} min on {}:",
                        technique.name(),
                        cluster.workload()
                    );
                    println!("  {}", point.config);
                    println!("  normalized cost {:.2}", point.performability.cost);
                    println!(
                        "  perf {:.0}%, downtime {:.1} min",
                        point.performability.outcome.perf_during_outage.to_percent(),
                        point.performability.outcome.downtime.expected.to_minutes()
                    );
                    Ok(())
                }
                None => Err(format!(
                    "{} cannot execute to plan for {minutes} min at any candidate UPS size",
                    technique.name()
                )),
            }
        }
        "availability" => {
            let usage = "usage: dcbackup availability <config> <technique> [--workload <name>] [--years <n>]";
            let config = find_config(args.get(1).ok_or(usage)?).ok_or("unknown configuration")?;
            let technique = find_technique(args.get(2).ok_or(usage)?).ok_or("unknown technique")?;
            let years: usize = flag_value(&args, "--years")
                .map(|v| v.parse().map_err(|_| format!("bad --years '{v}'")))
                .transpose()?
                .unwrap_or(50);
            let cluster = Cluster::rack(workload_arg(&args)?);
            let r = analyze(&cluster, &config, &technique, years, 2014);
            println!(
                "{} + {} over {} sampled years ({}):",
                r.config,
                r.technique,
                r.years,
                cluster.workload()
            );
            println!("  normalized cost      {:.2}", r.cost);
            println!(
                "  downtime/yr          {:.1} min (p95 {:.1} min)",
                r.mean_yearly_downtime.to_minutes(),
                r.p95_yearly_downtime.to_minutes()
            );
            println!(
                "  availability         {:.5}%",
                r.mean_availability.to_percent()
            );
            println!("  nines                {:.1}", r.nines.min(9.9));
            println!("  state-loss rate      {:.0}%", r.state_loss_rate * 100.0);
            Ok(())
        }
        _ => {
            println!(
                "dcbackup — datacenter backup-power underprovisioning framework\n\n\
                 commands:\n\
                 \u{20} list                                           catalogues\n\
                 \u{20} cost <config> [--peak-mw <MW>]                 price a configuration\n\
                 \u{20} simulate <config> <technique> <minutes>        ride one outage\n\
                 \u{20} size <technique> <minutes>                     cheapest sufficient UPS\n\
                 \u{20} availability <config> <technique> [--years n]  yearly Monte-Carlo\n\
                 options: --workload specjbb|websearch|memcached|speccpu"
            );
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
