#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test suite.
# Everything runs offline against the vendored dependency stubs (vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo doc --no-deps (rustdoc, missing_docs warnings fatal via clippy above)"
cargo doc --no-deps --workspace -q

echo "== cargo test -q (tier-1)"
cargo test -q

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== topology differential tests (single-path == kernel, bit for bit)"
cargo test -q --release -p dcb-topology --test differential

echo "== topology aggregation proptests (explicit == collapsed, thread-invariant)"
cargo test -q --release -p dcb-topology --test aggregation

echo "== dcb-engine core (calendar/clock/locate units + determinism proptests)"
cargo test -q -p dcb-engine

echo "== componentized kernel differential (engine vs legacy oracle, bit for bit, 120s budget)"
comp_start=$(date +%s)
cargo test -q --release -p dcb-sim --test componentized
comp_end=$(date +%s)
comp_elapsed=$((comp_end - comp_start))
test "$comp_elapsed" -le 120 || { echo "componentized differential took ${comp_elapsed}s (> 120s budget)"; exit 1; }

echo "== engine bench smoke (event kernel vs stepped oracle)"
DCB_ENGINE_BENCH_SMOKE=1 cargo bench -q -p dcb-bench --bench engine

echo "== bench history schema validation after engine append (repro perf validate)"
cargo run --release -q -p dcb-bench --bin repro -- perf validate

echo "== topology bench smoke (aggregated vs flat resolution)"
DCB_TOPOLOGY_BENCH_SMOKE=1 cargo bench -q -p dcb-bench --bench topology

echo "== bench history schema validation after topology append (repro perf validate)"
cargo run --release -q -p dcb-bench --bin repro -- perf validate

echo "== ratcheted bench-history floors (repro perf check; supersedes the old 5x/10x greps)"
cargo run --release -q -p dcb-bench --bin repro -- perf check

echo "== dcb-audit check (workspace invariants)"
cargo run --release -q -p dcb-audit -- check

echo "== dcb-audit self-test (fixtures + lexer + lints)"
cargo test -q -p dcb-audit

echo "== dcb-audit telemetry read-fence self-test (lint fixture)"
cargo test -q -p dcb-audit --test selftest telemetry

echo "== dcb-audit trace read-fence self-test (lint fixture)"
cargo test -q -p dcb-audit --test selftest trace

echo "== dcb-audit prof read-fence self-test (lint fixture)"
cargo test -q -p dcb-audit --test selftest prof

echo "== dcb-audit kernel-internals fence self-test (lint fixture)"
cargo test -q -p dcb-audit kernel_internals

echo "== trace determinism (Chrome export byte-identical across DCB_THREADS)"
cargo test -q --release -p dcb-bench --test trace_chrome

echo "== profiler determinism (collapsed/svg byte-identical across DCB_THREADS, telemetry-reconciled)"
cargo test -q --release -p dcb-bench --test prof_profile

echo "== perf observatory regression detection (injected-regression fixture)"
cargo test -q -p dcb-bench --test perf_observatory

echo "== explain timeline consistency (trace tally vs kernel outcome)"
cargo test -q --release -p dcb-bench --test explain_timeline

echo "== dcb-audit graph (call-graph passes vs audit.baseline.json, 10s budget)"
graph_start=$(date +%s)
cargo run --release -q -p dcb-audit -- graph
graph_end=$(date +%s)
graph_elapsed=$((graph_end - graph_start))
test "$graph_elapsed" -le 10 || { echo "dcb-audit graph took ${graph_elapsed}s (> 10s budget)"; exit 1; }

echo "== dcb-audit graph self-test (taint/unit-flow fixtures + ratchet)"
cargo test -q -p dcb-audit --test graphtest

echo "== dcb-audit docs (markdown links + DESIGN.md section references)"
cargo run --release -q -p dcb-audit -- docs

echo "== dcb-audit sweep (model contracts over the Table 3 grid)"
cargo run --release -q -p dcb-audit -- sweep

echo "CI green."
