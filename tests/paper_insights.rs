//! The paper's two "Summary of Insights" lists (§6.1 and §6.2), each bullet
//! asserted against the models — the reproduction's capstone test.

use dcbackup::core::evaluate::{best_technique, evaluate};
use dcbackup::core::sizing::{min_cost_ups, SizingTargets};
use dcbackup::core::{BackupConfig, Cluster, Technique};
use dcbackup::sim::low_power_level;
use dcbackup::units::{Fraction, Seconds};
use dcbackup::workload::Workload;

fn specjbb() -> Cluster {
    Cluster::rack(Workload::specjbb())
}

// ---------------------------------------------------------------- §6.1 ---

#[test]
fn insight_61_i_dg_translates_long_outages_at_significant_cost() {
    // "Though DG translates long outages into small ones from the
    // perspective of offered performability, it does so at a significant
    // cost."
    let catalog = Technique::catalog();
    let long = Seconds::from_hours(2.0);
    let with_dg = best_technique(&specjbb(), &BackupConfig::max_perf(), long, &catalog);
    assert!(with_dg.outcome.seamless());
    // The DG-carrying configuration costs ~2.6x the best DG-less point that
    // still preserves state for the same outage.
    let without = best_technique(
        &specjbb(),
        &BackupConfig::small_p_large_e_ups(),
        long,
        &catalog,
    );
    assert!(!without.outcome.state_lost);
    assert!(with_dg.cost > 2.5 * without.cost);
}

#[test]
fn insight_61_ii_ups_crucial_for_short_outages_with_or_without_dg() {
    // "UPS plays a crucial role in improving performability for short
    // outages irrespective of the presence of DG."
    let short = Seconds::new(30.0);
    let catalog = Technique::catalog();
    // Without UPS, even a DG cannot prevent the crash (start-up gap).
    let no_ups = best_technique(&specjbb(), &BackupConfig::no_ups(), short, &catalog);
    assert!(no_ups.outcome.state_lost);
    // Any UPS-bearing configuration rides it seamlessly.
    for config in [BackupConfig::no_dg(), BackupConfig::max_perf()] {
        let p = best_technique(&specjbb(), &config, short, &catalog);
        assert!(p.outcome.seamless(), "{}", config.label());
    }
}

#[test]
fn insight_61_iii_ups_can_eliminate_dg_to_100_minutes_at_same_cost() {
    // "UPS can eliminate DG for up to 100 mins of outage duration and offer
    // the same performance as with today's approach at the same cost."
    let config = BackupConfig::custom(
        "UPS-100",
        Fraction::ZERO,
        Fraction::ONE,
        Seconds::from_minutes(100.0),
    );
    let p = evaluate(
        &specjbb(),
        &config,
        &Technique::ride_through(),
        Seconds::from_minutes(95.0),
    );
    assert!(p.cost <= 1.0);
    assert!(p.outcome.seamless());
}

#[test]
fn insight_61_iv_forty_percent_degradation_forty_percent_savings() {
    // "UPS can result in 40% cost savings for outages as long as 1 hour for
    // datacenter willing to tolerate 40% performance degradation."
    let targets = SizingTargets {
        require_state_preserved: true,
        min_perf: Some(0.58),
        max_downtime: Some(Seconds::new(1.0)),
    };
    let point = min_cost_ups(
        &specjbb(),
        &Technique::throttle(dcbackup::server::ThrottleLevel {
            p: dcbackup::server::PState::new(3),
            t: dcbackup::server::TState::full(),
        }),
        Seconds::from_minutes(60.0),
        &targets,
    )
    .expect("sizable");
    assert!(
        point.performability.cost <= 0.6,
        "cost {}",
        point.performability.cost
    );
}

#[test]
fn insight_61_v_long_runtime_beats_high_power_for_long_outages() {
    // "For the same cost, the performability offered by UPS with small
    // power capacity and longer runtime may be better than that offered by
    // UPS with high power capacity and shorter runtime for relatively long
    // outages."
    let catalog = Technique::catalog();
    for minutes in [30.0, 60.0] {
        let duration = Seconds::from_minutes(minutes);
        let runtime_rich = best_technique(
            &specjbb(),
            &BackupConfig::small_p_large_e_ups(),
            duration,
            &catalog,
        );
        let power_rich = best_technique(&specjbb(), &BackupConfig::no_dg(), duration, &catalog);
        assert!((runtime_rich.cost - power_rich.cost).abs() < 0.01);
        assert!(
            runtime_rich.lost_service() < power_rich.lost_service(),
            "{minutes} min"
        );
    }
}

// ---------------------------------------------------------------- §6.2 ---

#[test]
fn insight_62_i_sleep_low_cost_low_downtime_for_short_to_medium() {
    // "Sleep is a low cost technique for achieving lower application down
    // time for short to medium outages."
    let targets = SizingTargets::execute_to_plan();
    for minutes in [0.5, 30.0] {
        let point = min_cost_ups(
            &specjbb(),
            &Technique::sleep_l(),
            Seconds::from_minutes(minutes),
            &targets,
        )
        .expect("sleep sizable");
        assert!(point.performability.cost <= 0.2, "{minutes} min cost");
        // Downtime ≈ outage + resume, far below the crash baseline.
        let crash = evaluate(
            &specjbb(),
            &BackupConfig::min_cost(),
            &Technique::crash(),
            Seconds::from_minutes(minutes),
        );
        assert!(point.performability.outcome.downtime.expected < crash.outcome.downtime.expected);
    }
}

#[test]
fn insight_62_ii_throttling_spectrum_but_infeasible_at_low_budgets() {
    // "Throttling can cover a large spectrum of cost-performability for
    // short to medium outages, though it becomes infeasible at lower cost
    // budgets."
    let duration = Seconds::from_minutes(30.0);
    let targets = SizingTargets::execute_to_plan();
    let deep = min_cost_ups(
        &specjbb(),
        &Technique::throttle_deepest(),
        duration,
        &targets,
    )
    .expect("deep throttle sizable");
    let full = min_cost_ups(&specjbb(), &Technique::ride_through(), duration, &targets)
        .expect("ride-through sizable");
    // A spectrum: deeper throttle cheaper, shallower costlier but faster.
    assert!(deep.performability.cost < full.performability.cost);
    // Infeasible below the spectrum: the deepest throttle cannot run on the
    // base 2-minute battery for 30 minutes.
    let starved = evaluate(
        &specjbb(),
        &BackupConfig::small_pups(),
        &Technique::throttle_deepest(),
        duration,
    );
    assert!(!starved.outcome.feasible);
}

#[test]
fn insight_62_iii_migration_preferred_for_longer_outages() {
    // "Migration/consolidation is preferred for longer outages due to
    // better performability compared to throttling (owing to lack of energy
    // proportionality in today's servers)."
    let duration = Seconds::from_minutes(60.0);
    let migration = evaluate(
        &specjbb(),
        &BackupConfig::large_e_ups(),
        &Technique::migration(),
        duration,
    );
    let throttle = evaluate(
        &specjbb(),
        &BackupConfig::large_e_ups(),
        &Technique::throttle_deepest(),
        duration,
    );
    assert!(migration.outcome.feasible);
    assert!(
        migration.outcome.perf_during_outage > throttle.outcome.perf_during_outage,
        "migration {:?} vs throttle {:?}",
        migration.outcome.perf_during_outage,
        throttle.outcome.perf_during_outage
    );
}

#[test]
fn insight_62_iv_hybrids_cover_the_spectrum_even_for_long_outages() {
    // "Hybrid techniques allow us to traverse the entire
    // cost-performability spectrum even for long outages."
    let duration = Seconds::from_hours(2.0);
    let targets = SizingTargets::execute_to_plan();
    let hybrid = min_cost_ups(
        &specjbb(),
        &Technique::throttle_sleep_l(low_power_level()),
        duration,
        &targets,
    )
    .expect("hybrid sizable at 2 h");
    assert!(hybrid.performability.cost <= 0.25);
    assert!(!hybrid.performability.outcome.state_lost);
}

#[test]
fn insight_62_v_very_long_outages_prefer_geo_redirection() {
    // "For very long outages (> 4 hours), it is preferred to transfer load
    // (request redirection) to geo-replicated datacenters if no DG is
    // used."
    use dcbackup::core::geo::{evaluate_with_failover, GeoFailover};
    let duration = Seconds::from_hours(5.0);
    let local_only = evaluate(
        &specjbb(),
        &BackupConfig::large_e_ups(),
        &Technique::throttle_sleep_l(low_power_level()),
        duration,
    );
    let with_geo = evaluate_with_failover(
        &specjbb(),
        &BackupConfig::large_e_ups(),
        &Technique::throttle_sleep_l(low_power_level()),
        duration,
        &GeoFailover::typical(),
    );
    // Local-only spends most of five hours down; geo keeps serving.
    assert!(local_only.outcome.downtime.expected > Seconds::from_hours(3.0));
    assert!(with_geo.perf_during_outage.value() > 0.5);
    assert!(with_geo.hard_downtime < Seconds::from_minutes(3.0));
}

#[test]
fn insight_62_vi_state_size_drives_hibernate_and_migration() {
    // "Application state size crucially impacts the performability-cost
    // tradeoffs associated with techniques such as Hibernation and
    // Migration."
    use dcbackup::units::Gigabytes;
    let small = Cluster::rack(Workload::specjbb().with_memory_footprint(Gigabytes::new(6.0)));
    let duration = Seconds::from_minutes(30.0);
    let config = BackupConfig::large_e_ups();
    let small_hib = evaluate(&small, &config, &Technique::hibernate(), duration);
    let big_hib = evaluate(&specjbb(), &config, &Technique::hibernate(), duration);
    assert!(small_hib.outcome.downtime.expected < big_hib.outcome.downtime.expected);
    // Smaller state migrates faster, so consolidation (and its energy
    // saving) kicks in sooner: less backup energy drawn over the outage.
    let small_mig = evaluate(&small, &config, &Technique::migration(), duration);
    let big_mig = evaluate(&specjbb(), &config, &Technique::migration(), duration);
    assert!(small_mig.outcome.energy < big_mig.outcome.energy);
    // While sleep is insensitive to state size.
    let small_sleep = evaluate(&small, &config, &Technique::sleep_l(), duration);
    let big_sleep = evaluate(&specjbb(), &config, &Technique::sleep_l(), duration);
    assert!(
        (small_sleep.outcome.downtime.expected - big_sleep.outcome.downtime.expected)
            .abs()
            .value()
            < 5.0
    );
}
