//! Integration tests for the §7 machinery: the adaptive controller over
//! sampled outage traces, and heterogeneous capacity planning.

use dcbackup::core::online::AdaptiveController;
use dcbackup::core::planner::{plan, Slo};
use dcbackup::core::tco::TcoModel;
use dcbackup::core::{BackupConfig, Cluster, Technique};
use dcbackup::outage::{DurationDistribution, DurationPredictor, OutageSampler};
use dcbackup::units::Seconds;
use dcbackup::workload::Workload;

fn controller() -> AdaptiveController {
    AdaptiveController::new(DurationPredictor::from_distribution(
        &DurationDistribution::us_business(),
    ))
}

#[test]
fn controller_handles_a_sampled_decade_without_stranding_state() {
    // Run the controller over ten sampled years of outages on a LargeEUPS
    // backup; the risk budget is 10%, so over the sampled outages the
    // state-loss rate must stay low and the controller must stay sensible.
    let cluster = Cluster::rack(Workload::specjbb());
    let config = BackupConfig::large_e_ups();
    let ctl = controller();
    let mut sampler = OutageSampler::seeded(77);
    let mut outages = 0usize;
    let mut losses = 0usize;
    for trace in sampler.sample_years(10) {
        for outage in trace.outages() {
            outages += 1;
            let outcome = ctl.simulate(&cluster, &config, outage.duration);
            if outcome.state_lost {
                losses += 1;
            }
            // Short outages must be served at high performance.
            if outage.duration <= Seconds::from_minutes(2.0) {
                assert!(
                    outcome.perf_during_outage.value() > 0.9,
                    "short outage {:.1} min served at {:?}",
                    outage.duration.to_minutes(),
                    outcome.perf_during_outage
                );
            }
        }
    }
    assert!(outages > 10, "sampler produced only {outages} outages");
    let loss_rate = losses as f64 / outages as f64;
    assert!(
        loss_rate <= 0.12,
        "state lost in {losses}/{outages} outages ({loss_rate:.2})"
    );
}

#[test]
fn controller_beats_static_sleep_on_short_outages() {
    // Against a static immediately-sleep policy, the controller should
    // deliver strictly better performance for sub-5-minute outages at the
    // same backup.
    let cluster = Cluster::rack(Workload::memcached());
    let config = BackupConfig::no_dg();
    let ctl = controller();
    for minutes in [0.5, 1.0, 2.0] {
        let adaptive = ctl.simulate(&cluster, &config, Seconds::from_minutes(minutes));
        // Static sleep would score ~0 here; the controller must serve a
        // substantial share, and essentially all of a 30 s outage.
        assert!(
            adaptive.perf_during_outage.value() > 0.25,
            "{minutes} min: {:?}",
            adaptive.perf_during_outage
        );
    }
    let short = ctl.simulate(&cluster, &config, Seconds::new(30.0));
    assert!(
        short.perf_during_outage.value() > 0.9,
        "{:?}",
        short.perf_during_outage
    );
}

#[test]
fn fitted_predictor_tracks_short_outage_history() {
    // A utility with only sub-minute outages should make the controller
    // serve aggressively even on small batteries.
    let trace: dcbackup::outage::OutageTrace = (0..200)
        .map(|i| dcbackup::outage::Outage {
            start: Seconds::from_hours(f64::from(i)),
            duration: Seconds::new(40.0),
        })
        .collect();
    let predictor = DurationPredictor::fit(&[trace]);
    let ctl = AdaptiveController::new(predictor);
    let outcome = ctl.simulate(
        &Cluster::rack(Workload::specjbb()),
        &BackupConfig::no_dg(),
        Seconds::new(40.0),
    );
    assert!(!outcome.state_lost);
    assert!(
        outcome.perf_during_outage.value() > 0.9,
        "perf {:?} with history of short outages",
        outcome.perf_during_outage
    );
}

#[test]
fn plan_composes_sizing_and_cost_consistently() {
    let sections = vec![
        (
            Cluster::rack(Workload::web_search()),
            Slo::survive(Seconds::from_minutes(10.0)).with_min_perf(0.4),
        ),
        (
            Cluster::rack(Workload::memcached()),
            Slo::survive(Seconds::from_minutes(30.0)),
        ),
    ];
    let plan = plan(&sections, &Technique::catalog());
    assert!(plan.fully_satisfied());
    assert!(plan.total_cost() < plan.max_perf_cost());
    assert!(plan.savings_fraction() > 0.0 && plan.savings_fraction() < 1.0);
    for entry in &plan.entries {
        let point = entry.point.as_ref().unwrap();
        assert!(point.performability.outcome.feasible);
        assert!(!point.performability.outcome.state_lost);
    }
}

#[test]
fn tco_and_outage_statistics_compose() {
    // Expected yearly outage minutes from the Figure 1 distributions sit
    // far below the Google break-even, so skipping DGs is profitable in
    // expectation.
    let mut sampler = OutageSampler::seeded(3);
    let years = sampler.sample_years(2_000);
    let mean_minutes: f64 = years
        .iter()
        .map(|y| y.total_outage_time().to_minutes())
        .sum::<f64>()
        / years.len() as f64;
    let tco = TcoModel::google_2011();
    assert!(
        mean_minutes < tco.breakeven_minutes_per_year(),
        "mean {mean_minutes:.0} min/yr vs breakeven {:.0}",
        tco.breakeven_minutes_per_year()
    );
    assert!(tco.profitable_without_dg(mean_minutes));
}
