//! Integration tests: the paper's cost exhibits (Tables 1–3, Figure 2)
//! reproduced end to end through the public facade.

use dcbackup::core::cost::{CostModel, CostParams};
use dcbackup::core::BackupConfig;
use dcbackup::units::{Fraction, Kilowatts, Seconds};

#[test]
fn table1_parameters_are_paper_values() {
    let p = CostParams::paper();
    assert_eq!(p.dg_power.value(), 83.3);
    assert_eq!(p.ups_power.value(), 50.0);
    assert_eq!(p.ups_energy.value(), 50.0);
    assert_eq!(p.free_runtime, Seconds::from_minutes(2.0));
}

#[test]
fn table2_all_three_rows_to_two_decimals() {
    let model = CostModel::paper();
    let cases = [
        (1.0, 2.0, 0.08, 0.05, 0.13),
        (10.0, 2.0, 0.83, 0.51, 1.34),
        (10.0, 42.0, 0.83, 0.83, 1.66),
    ];
    for (mw, minutes, dg_m, ups_m, total_m) in cases {
        let config = BackupConfig::custom(
            "row",
            Fraction::ONE,
            Fraction::ONE,
            Seconds::from_minutes(minutes),
        );
        let cost = model.annual_cost(&config, Kilowatts::from_megawatts(mw).to_watts());
        assert!(
            (cost.dg.value() / 1e6 - dg_m).abs() < 0.01,
            "{mw} MW / {minutes} min: DG {} vs paper {dg_m}",
            cost.dg.value() / 1e6
        );
        let ups = (cost.ups_power + cost.ups_energy).value() / 1e6;
        assert!(
            (ups - ups_m).abs() < 0.015,
            "{mw} MW / {minutes} min: UPS {ups} vs paper {ups_m}"
        );
        assert!(
            (cost.total().value() / 1e6 - total_m).abs() < 0.015,
            "{mw} MW / {minutes} min: total {} vs paper {total_m}",
            cost.total().value() / 1e6
        );
    }
}

#[test]
fn table3_every_normalized_cost_within_one_point() {
    let model = CostModel::paper();
    let paper = [
        ("MaxPerf", 1.00),
        ("MinCost", 0.00),
        ("NoDG", 0.38),
        ("NoUPS", 0.63),
        ("DG-SmallPUPS", 0.81),
        ("SmallDG-SmallPUPS", 0.50),
        ("SmallPUPS", 0.19),
        ("LargeEUPS", 0.55),
        ("SmallP-LargeEUPS", 0.38),
    ];
    for (config, (label, value)) in BackupConfig::table3().iter().zip(paper) {
        assert_eq!(config.label(), label);
        let got = model.normalized_cost(config);
        assert!(
            (got - value).abs() <= 0.006,
            "{label}: model {got:.3} vs paper {value}"
        );
    }
}

#[test]
fn figure2_upfront_costs_are_consistent_with_amortized_rates() {
    // $1.0/W over 12 years ≈ $83.3/kW/yr; $0.6/W over 12 ≈ $50/kW/yr;
    // $0.2/Wh over 4 ≈ $50/kWh/yr.
    assert!((1.0f64 * 1000.0 / 12.0 - 83.3).abs() < 0.1);
    assert!((0.6f64 * 1000.0 / 12.0 - 50.0).abs() < 0.1);
    assert!((0.2f64 * 1000.0 / 4.0 - 50.0).abs() < 0.1);
}

#[test]
fn dg_versus_ups_crossover_sits_near_40_minutes() {
    // §3 observation (iii) locates the DG/UPS cost crossover. Search for it.
    let model = CostModel::paper();
    let dg_only = model.normalized_cost(&BackupConfig::no_ups());
    let cost_at = |minutes: f64| {
        model.normalized_cost(&BackupConfig::custom(
            "x",
            Fraction::ZERO,
            Fraction::ONE,
            Seconds::from_minutes(minutes),
        ))
    };
    let mut crossover = None;
    for minutes in 2..240 {
        if cost_at(f64::from(minutes)) > dg_only {
            crossover = Some(minutes);
            break;
        }
    }
    let crossover = crossover.expect("UPS-only cost must eventually exceed DG cost");
    assert!(
        (35..=45).contains(&crossover),
        "crossover at {crossover} min, paper says ~40"
    );
}
