//! Integration tests: the qualitative orderings of Figures 5–9 — who wins,
//! by roughly what factor, and where crossovers fall.

use dcbackup::core::evaluate::{best_technique, evaluate};
use dcbackup::core::{BackupConfig, Cluster, Technique};
use dcbackup::units::Seconds;
use dcbackup::workload::Workload;

fn specjbb() -> Cluster {
    Cluster::rack(Workload::specjbb())
}

#[test]
fn figure5_maxperf_dominates_everywhere() {
    let catalog = Technique::catalog();
    for minutes in [0.5, 5.0, 30.0, 60.0, 120.0] {
        let p = best_technique(
            &specjbb(),
            &BackupConfig::max_perf(),
            Seconds::from_minutes(minutes),
            &catalog,
        );
        assert!(
            p.outcome.seamless(),
            "{minutes} min: {:?}",
            p.outcome.downtime
        );
        assert!(p.outcome.perf_during_outage.value() > 0.99);
    }
}

#[test]
fn figure5_mincost_downtime_grows_with_outage() {
    let catalog = Technique::catalog();
    let mut last = Seconds::ZERO;
    for minutes in [0.5, 5.0, 30.0, 60.0, 120.0] {
        let p = best_technique(
            &specjbb(),
            &BackupConfig::min_cost(),
            Seconds::from_minutes(minutes),
            &catalog,
        );
        assert_eq!(p.outcome.perf_during_outage.value(), 0.0);
        assert!(p.outcome.downtime.expected > last);
        // Downtime exceeds the outage by the fixed recovery overhead.
        assert!(p.outcome.downtime.expected >= Seconds::from_minutes(minutes));
        last = p.outcome.downtime.expected;
    }
}

#[test]
fn figure5_large_e_ups_matches_maxperf_through_30_minutes() {
    // "LargeEUPS with 30 minutes of UPS battery capacity achieves the same
    // performance as MaxPerf upto 30 mins outage duration" (§6.1).
    let catalog = Technique::catalog();
    for minutes in [0.5, 5.0, 30.0] {
        let p = best_technique(
            &specjbb(),
            &BackupConfig::large_e_ups(),
            Seconds::from_minutes(minutes),
            &catalog,
        );
        assert!(
            p.outcome.seamless() && p.outcome.perf_during_outage.value() > 0.99,
            "{minutes} min: perf {:?} downtime {:?} via {}",
            p.outcome.perf_during_outage,
            p.outcome.downtime.expected,
            p.technique
        );
    }
    // And ~60% degraded performance remains available at one hour.
    let hour = best_technique(
        &specjbb(),
        &BackupConfig::large_e_ups(),
        Seconds::from_minutes(60.0),
        &catalog,
    );
    let perf = hour.outcome.perf_during_outage.value();
    assert!((0.5..0.8).contains(&perf), "1 h perf {perf}");
}

#[test]
fn figure5_small_p_large_e_beats_no_dg_for_long_outages() {
    // Same cost (0.38): trading power for runtime wins at 30+ minutes
    // (§6.1: "the latter achieves better performability than NoDG ... for
    // 30 mins or longer outages").
    let catalog = Technique::catalog();
    for minutes in [30.0, 60.0] {
        let duration = Seconds::from_minutes(minutes);
        let trade = best_technique(
            &specjbb(),
            &BackupConfig::small_p_large_e_ups(),
            duration,
            &catalog,
        );
        let no_dg = best_technique(&specjbb(), &BackupConfig::no_dg(), duration, &catalog);
        assert!(
            (trade.cost - no_dg.cost).abs() < 0.01,
            "same cost by construction"
        );
        assert!(
            trade.lost_service() < no_dg.lost_service(),
            "{minutes} min: SmallP-LargeEUPS {:.0}s lost vs NoDG {:.0}s",
            trade.lost_service(),
            no_dg.lost_service()
        );
    }
}

#[test]
fn figure6_hibernation_bad_for_short_outages_good_technique_exists() {
    // For a 30 s outage hibernation forces ~6.5 min of downtime while
    // sleep holds it near the outage length.
    let outage = Seconds::new(30.0);
    let hibernate = evaluate(
        &specjbb(),
        &BackupConfig::no_dg(),
        &Technique::hibernate(),
        outage,
    );
    let sleep = evaluate(
        &specjbb(),
        &BackupConfig::no_dg(),
        &Technique::sleep_l(),
        outage,
    );
    assert!(hibernate.outcome.downtime.expected.value() > 350.0);
    assert!(sleep.outcome.downtime.expected.value() < 45.0);
}

#[test]
fn figure6_throttling_infeasible_for_very_long_outages_on_small_battery() {
    // Pure throttling drains even a large battery over multi-hour outages
    // (§6.2: "infeasible to sustain the application beyond 4 hours").
    let p = evaluate(
        &specjbb(),
        &BackupConfig::large_e_ups(),
        &Technique::throttle_deepest(),
        Seconds::from_hours(4.0),
    );
    assert!(!p.outcome.feasible);
    assert!(p.outcome.state_lost);
}

#[test]
fn figure7_memcached_throttles_better_than_specjbb() {
    let outage = Seconds::from_minutes(5.0);
    let mc = evaluate(
        &Cluster::rack(Workload::memcached()),
        &BackupConfig::no_dg(),
        &Technique::throttle_deepest(),
        outage,
    );
    let jbb = evaluate(
        &specjbb(),
        &BackupConfig::no_dg(),
        &Technique::throttle_deepest(),
        outage,
    );
    assert!(
        mc.outcome.perf_during_outage.value() > jbb.outcome.perf_during_outage.value() + 0.1,
        "memcached {:?} vs specjbb {:?}",
        mc.outcome.perf_during_outage,
        jbb.outcome.perf_during_outage
    );
}

#[test]
fn figure7_memcached_crash_beats_hibernate() {
    let outage = Seconds::new(30.0);
    let crash = evaluate(
        &Cluster::rack(Workload::memcached()),
        &BackupConfig::min_cost(),
        &Technique::crash(),
        outage,
    );
    let hibernate = evaluate(
        &Cluster::rack(Workload::memcached()),
        &BackupConfig::no_dg(),
        &Technique::hibernate(),
        outage,
    );
    // Paper: 480 s crash vs 1140 s hibernation.
    assert!((crash.outcome.downtime.expected.value() - 480.0).abs() < 20.0);
    assert!((hibernate.outcome.downtime.expected.value() - 1140.0).abs() < 60.0);
}

#[test]
fn figure8_web_search_hibernate_beats_crash() {
    let outage = Seconds::new(30.0);
    let crash = evaluate(
        &Cluster::rack(Workload::web_search()),
        &BackupConfig::min_cost(),
        &Technique::crash(),
        outage,
    );
    let hibernate = evaluate(
        &Cluster::rack(Workload::web_search()),
        &BackupConfig::no_dg(),
        &Technique::hibernate(),
        outage,
    );
    // Paper: 600 s crash vs ~400 s hibernation.
    assert!((crash.outcome.downtime.expected.value() - 600.0).abs() < 25.0);
    assert!((hibernate.outcome.downtime.expected.value() - 400.0).abs() < 25.0);
}

#[test]
fn figure9_speccpu_crash_downtime_spans_hours() {
    let p = evaluate(
        &Cluster::rack(Workload::spec_cpu()),
        &BackupConfig::min_cost(),
        &Technique::crash(),
        Seconds::new(30.0),
    );
    let spread = p.outcome.downtime.max - p.outcome.downtime.min;
    assert!(spread >= Seconds::from_hours(1.9), "spread {spread}");
}

#[test]
fn sleep_downtime_tracks_outage_for_every_workload() {
    // Sleep's downtime ≈ outage + resume, independent of state size.
    for workload in Workload::paper_suite() {
        let p = evaluate(
            &Cluster::rack(workload),
            &BackupConfig::no_dg(),
            &Technique::sleep_l(),
            Seconds::from_minutes(5.0),
        );
        let d = p.outcome.downtime.expected.value();
        assert!(
            (d - 308.0).abs() < 15.0,
            "{workload}: sleep downtime {d} not ~outage+resume"
        );
    }
}
