//! Integration tests for the §7 extensions through the public facade:
//! NVDIMM, RDMA-over-sleep, geo-failover, trace simulation with recharge,
//! placement economics, and predictor robustness.

use dcbackup::battery::Chemistry;
use dcbackup::core::cost::{CostModel, CostParams};
use dcbackup::core::geo::{evaluate_with_failover, GeoFailover};
use dcbackup::core::nvdimm::{evaluate_with_nvdimm, NvdimmCost};
use dcbackup::core::online::AdaptiveController;
use dcbackup::core::{BackupConfig, Cluster, OutageSim, Technique};
use dcbackup::outage::{DurationPredictor, OutageSampler, WeibullDuration};
use dcbackup::power::UpsPlacement;
use dcbackup::units::Seconds;
use dcbackup::workload::Workload;

#[test]
fn nvdimm_dominates_on_state_but_not_on_cost() {
    // At rack scale the NVDIMM premium exceeds the whole backup baseline,
    // so NVDIMM wins on state preservation but loses the cost race to a
    // small UPS + sleep for ordinary outages.
    let cluster = Cluster::rack(Workload::specjbb());
    let duration = Seconds::from_minutes(10.0);
    let nvdimm = evaluate_with_nvdimm(
        &cluster,
        &BackupConfig::min_cost(),
        &Technique::nvdimm(),
        duration,
        &NvdimmCost::paper_era(),
    );
    assert!(!nvdimm.outcome.state_lost);
    let sleep = dcbackup::core::evaluate::evaluate(
        &cluster,
        &BackupConfig::small_pups(),
        &Technique::sleep_l(),
        duration,
    );
    assert!(!sleep.outcome.state_lost);
    assert!(
        sleep.cost < nvdimm.cost,
        "sleep {} vs nvdimm {}",
        sleep.cost,
        nvdimm.cost
    );
}

#[test]
fn extended_catalog_round_trips_through_simulation() {
    let cluster = Cluster::rack(Workload::web_search());
    for technique in Technique::extended_catalog() {
        let outcome = OutageSim::new(cluster, BackupConfig::large_e_ups(), technique.clone())
            .run(Seconds::from_minutes(15.0));
        assert!(
            outcome.downtime.max >= outcome.downtime.min,
            "{} downtime range inverted",
            technique.name()
        );
    }
}

#[test]
fn rdma_sleep_beats_plain_sleep_on_lost_service() {
    let cluster = Cluster::rack(Workload::memcached());
    let duration = Seconds::from_minutes(30.0);
    let rdma = dcbackup::core::evaluate::evaluate(
        &cluster,
        &BackupConfig::no_dg(),
        &Technique::rdma_sleep(),
        duration,
    );
    let plain = dcbackup::core::evaluate::evaluate(
        &cluster,
        &BackupConfig::no_dg(),
        &Technique::sleep(),
        duration,
    );
    assert!(rdma.lost_service() < plain.lost_service());
}

#[test]
fn geo_failover_composes_with_every_local_technique() {
    let cluster = Cluster::rack(Workload::web_search());
    let geo = GeoFailover::typical();
    for technique in [
        Technique::crash(),
        Technique::sleep_l(),
        Technique::hibernate(),
    ] {
        let out = evaluate_with_failover(
            &cluster,
            &BackupConfig::no_dg(),
            &technique,
            Seconds::from_hours(3.0),
            &geo,
        );
        assert!(
            out.hard_downtime <= geo.redirect_after + Seconds::new(1.0),
            "{}: hard downtime {}",
            technique.name(),
            out.hard_downtime
        );
        let perf = out.perf_during_outage.value();
        assert!(perf > 0.4, "{}: perf {perf}", technique.name());
    }
}

#[test]
fn yearly_trace_with_recharge_is_no_better_than_isolated_outages() {
    // Partial recharge can only hurt relative to the fully-charged
    // per-outage assumption.
    let sim = OutageSim::new(
        Cluster::rack(Workload::specjbb()),
        BackupConfig::no_dg(),
        Technique::ride_through(),
    );
    let mut sampler = OutageSampler::seeded(31);
    for trace in sampler.sample_years(20) {
        let with_recharge = sim.run_trace(&trace, Seconds::from_hours(365.0 * 24.0));
        for (outcome, outage) in with_recharge.outcomes.iter().zip(trace.outages()) {
            let isolated = sim.run(outage.duration);
            assert!(
                outcome.downtime.expected + Seconds::new(1.0) >= isolated.downtime.expected,
                "recharged trace beat a fresh battery for a {:.1} min outage",
                outage.duration.to_minutes()
            );
        }
    }
}

#[test]
fn placement_and_chemistry_compose_in_the_cost_model() {
    let base = CostModel::paper();
    let exotic = CostModel::with_params(
        CostParams::paper()
            .for_placement(UpsPlacement::ServerLevel)
            .for_chemistry(Chemistry::LithiumIon),
    );
    let config = BackupConfig::large_e_ups();
    // Both adjustments apply: server-level cheap power, Li-ion pricey
    // energy.
    let b = base.annual_cost(&config, dcbackup::units::Watts::new(1e6));
    let e = exotic.annual_cost(&config, dcbackup::units::Watts::new(1e6));
    assert!(e.ups_power < b.ups_power);
    assert!(e.ups_energy > b.ups_energy);
}

#[test]
fn controller_survives_weibull_reality_through_p95() {
    let controller = AdaptiveController::new(DurationPredictor::from_distribution(
        &dcbackup::outage::DurationDistribution::us_business(),
    ));
    let cluster = Cluster::rack(Workload::specjbb());
    let weibull = WeibullDuration::fit_us_business();
    for q in [0.5, 0.8, 0.9, 0.95] {
        let outcome =
            controller.simulate(&cluster, &BackupConfig::large_e_ups(), weibull.quantile(q));
        assert!(!outcome.state_lost, "state lost at Weibull q={q}");
    }
}
