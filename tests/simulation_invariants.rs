//! Property-based integration tests: invariants that must hold for *every*
//! combination of workload, configuration, technique, and outage duration.

use dcbackup::core::evaluate::evaluate;
use dcbackup::core::{BackupConfig, Cluster, Technique};
use dcbackup::units::{Fraction, Seconds};
use dcbackup::workload::Workload;
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::specjbb()),
        Just(Workload::web_search()),
        Just(Workload::memcached()),
        Just(Workload::spec_cpu()),
    ]
}

fn config_strategy() -> impl Strategy<Value = BackupConfig> {
    (0..9usize).prop_map(|i| BackupConfig::table3()[i].clone())
}

fn technique_strategy() -> impl Strategy<Value = Technique> {
    (0..Technique::catalog().len()).prop_map(|i| Technique::catalog()[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn outcome_invariants_hold_everywhere(
        workload in workload_strategy(),
        config in config_strategy(),
        technique in technique_strategy(),
        minutes in 0.25f64..150.0,
    ) {
        let cluster = Cluster::rack(workload);
        let p = evaluate(&cluster, &config, &technique, Seconds::from_minutes(minutes));
        let o = &p.outcome;

        // Normalized quantities stay normalized.
        prop_assert!((0.0..=1.0).contains(&o.perf_during_outage.value()));
        prop_assert!(o.peak_power_fraction >= Fraction::ZERO);
        prop_assert!(
            o.peak_power_fraction.value() <= 1.0 + 1e-9,
            "peak fraction {:?}", o.peak_power_fraction
        );

        // Downtime is ordered and bounded below by zero.
        prop_assert!(o.downtime.min <= o.downtime.expected);
        prop_assert!(o.downtime.expected <= o.downtime.max);
        prop_assert!(o.downtime.min >= Seconds::ZERO);

        // Energy drawn cannot exceed what the configuration could deliver:
        // DG is unbounded, but a UPS-only config is bounded by the pack's
        // best-case (lowest-load) deliverable energy; just check
        // non-negativity plus a loose physical cap for UPS-only setups.
        prop_assert!(o.energy.value() >= 0.0);

        // Performance requires surviving servers: a crash-everything run
        // with no recovery path cannot report perf.
        if config.label() == "MinCost" {
            prop_assert_eq!(o.perf_during_outage, Fraction::ZERO);
            prop_assert!(o.state_lost);
        }

        // Cost normalization is consistent with Table 3.
        prop_assert!((0.0..=1.01).contains(&p.cost));
    }

    #[test]
    fn longer_outages_never_reduce_lost_service(
        workload in workload_strategy(),
        technique in technique_strategy(),
        base in 0.5f64..60.0,
        extra in 0.1f64..60.0,
    ) {
        let cluster = Cluster::rack(workload);
        let config = BackupConfig::large_e_ups();
        let short = evaluate(&cluster, &config, &technique, Seconds::from_minutes(base));
        let long = evaluate(&cluster, &config, &technique, Seconds::from_minutes(base + extra));
        prop_assert!(
            long.lost_service() + 1.0 >= short.lost_service(),
            "lost service shrank: {} -> {} ({}, {} min +{})",
            short.lost_service(), long.lost_service(), technique.name(), base, extra
        );
    }

    #[test]
    fn more_battery_energy_never_hurts(
        workload in workload_strategy(),
        technique in technique_strategy(),
        minutes in 1.0f64..90.0,
        runtime in 2.0f64..60.0,
        extra in 1.0f64..120.0,
    ) {
        let cluster = Cluster::rack(workload);
        let mk = |rt: f64| BackupConfig::custom(
            "x",
            Fraction::ZERO,
            Fraction::ONE,
            Seconds::from_minutes(rt),
        );
        let duration = Seconds::from_minutes(minutes);
        let small = evaluate(&cluster, &mk(runtime), &technique, duration);
        let large = evaluate(&cluster, &mk(runtime + extra), &technique, duration);
        // Feasibility is monotone in energy.
        prop_assert!(
            !small.outcome.feasible || large.outcome.feasible,
            "{}: feasible at {runtime} min but not at {} min",
            technique.name(), runtime + extra
        );
        // And state preservation is, too.
        prop_assert!(
            small.outcome.state_lost || !large.outcome.state_lost,
            "{}: state kept at {runtime} min but lost at {} min",
            technique.name(), runtime + extra
        );
    }

    #[test]
    fn downtime_never_below_nonserving_time(
        workload in workload_strategy(),
        minutes in 0.5f64..60.0,
    ) {
        // Save-state techniques are down for at least the outage.
        let cluster = Cluster::rack(workload);
        let p = evaluate(
            &cluster,
            &BackupConfig::no_dg(),
            &Technique::sleep(),
            Seconds::from_minutes(minutes),
        );
        prop_assert!(p.outcome.downtime.expected >= Seconds::from_minutes(minutes));
    }
}

#[test]
fn full_matrix_smoke() {
    // Every (config, technique) pair at one representative duration.
    let cluster = Cluster::rack(Workload::specjbb());
    for config in BackupConfig::table3() {
        for technique in Technique::catalog() {
            let p = evaluate(&cluster, &config, &technique, Seconds::from_minutes(10.0));
            assert!(
                p.outcome.downtime.max >= p.outcome.downtime.min,
                "{} × {}",
                config.label(),
                technique.name()
            );
        }
    }
}
