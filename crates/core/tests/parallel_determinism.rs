//! End-to-end determinism: real scenario evaluation through the fleet is
//! bit-identical to serial evaluation for every thread count, and the
//! availability analysis is reproducible across repeated (parallel) runs.

use dcb_core::availability::analyze;
use dcb_core::evaluate::{evaluate, paper_durations, sweep_configs};
use dcb_core::{BackupConfig, Cluster, Technique};
use dcb_fleet::{FleetPool, Scenario};
use dcb_workload::Workload;

fn grid(cluster: &Cluster) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for config in [
        BackupConfig::max_perf(),
        BackupConfig::no_dg(),
        BackupConfig::min_cost(),
    ] {
        for technique in Technique::catalog() {
            for &duration in &paper_durations()[..3] {
                scenarios.push(Scenario::new(cluster, &config, &technique, duration));
            }
        }
    }
    scenarios
}

#[test]
fn parallel_evaluation_is_bit_identical_to_serial() {
    let cluster = Cluster::rack(Workload::specjbb());
    let scenarios = grid(&cluster);
    let eval = |s: &Scenario| evaluate(&s.cluster, &s.config, &s.technique, s.duration);
    let reference: Vec<_> = scenarios.iter().map(eval).collect();
    for threads in 1..=8 {
        let got = FleetPool::with_threads(threads).run_all(&scenarios, eval);
        assert_eq!(got, reference, "diverged at {threads} threads");
    }
}

#[test]
fn sweep_configs_matches_handwritten_serial_selection() {
    // The parallel sweep (shared pool + cache) must reproduce the naive
    // per-point loop exactly, including first-wins tie-breaking.
    let cluster = Cluster::rack(Workload::memcached());
    let configs = [BackupConfig::no_dg(), BackupConfig::large_e_ups()];
    let durations = [paper_durations()[0], paper_durations()[2]];
    let catalog = Technique::catalog();
    let swept = sweep_configs(&cluster, &configs, &durations, &catalog);
    let mut serial = Vec::new();
    for config in &configs {
        for &duration in &durations {
            serial.push(dcb_core::evaluate::best_technique(
                &cluster, config, duration, &catalog,
            ));
        }
    }
    assert_eq!(swept, serial);
}

#[test]
fn availability_reports_are_reproducible() {
    let cluster = Cluster::rack(Workload::specjbb());
    let run = || {
        analyze(
            &cluster,
            &BackupConfig::no_dg(),
            &Technique::sleep_l(),
            20,
            2014,
        )
    };
    assert_eq!(run(), run());
}
