//! Technique metadata: the backup-capacity demand of Table 5.

use dcb_migration::MigrationModel;
use dcb_server::{ServerSpec, TransitionTimes};
use dcb_sim::{InitialAction, Technique};
use dcb_units::{Seconds, Watts};
use dcb_workload::Workload;

/// What a technique demands of the backup infrastructure (Table 5): how
/// long it takes to take effect after a power failure, and the per-server
/// power once it is in effect.
///
/// ```
/// use dcb_core::technique::TechniqueDemand;
/// use dcb_core::Technique;
/// use dcb_server::ServerSpec;
/// use dcb_workload::Workload;
///
/// let demand = TechniqueDemand::of(
///     &Technique::sleep(),
///     &Workload::specjbb(),
///     &ServerSpec::paper_testbed(),
/// );
/// // Sleep takes effect in seconds and then draws a few watts per server.
/// assert!(demand.time_to_effect.value() < 10.0);
/// assert!(demand.power_after.value() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TechniqueDemand {
    /// Time from the power failure until the technique's steady state.
    pub time_to_effect: Seconds,
    /// Per-server power draw once in effect.
    pub power_after: Watts,
    /// Peak per-server power drawn while the technique takes effect.
    pub peak_during_transition: Watts,
}

impl TechniqueDemand {
    /// Computes the demand profile of a technique for a workload on a
    /// server.
    #[must_use]
    pub fn of(technique: &Technique, workload: &Workload, spec: &ServerSpec) -> Self {
        let transitions = TransitionTimes::new(*spec);
        let util = workload.utilization();
        let hibernate_state = |proactive: bool| {
            let raw = if proactive {
                workload.dirty_profile().proactive_hibernate_residual
            } else {
                workload.hibernate_image()
            };
            raw / workload.hibernate_io_efficiency().value().max(1e-9)
        };
        match technique.initial() {
            InitialAction::Continue(level) => Self {
                time_to_effect: TransitionTimes::THROTTLE_SWITCH,
                power_after: spec.active_power(level, util),
                peak_during_transition: spec.active_power(level, util),
            },
            InitialAction::Crash => Self {
                time_to_effect: Seconds::ZERO,
                power_after: Watts::ZERO,
                peak_during_transition: Watts::ZERO,
            },
            InitialAction::StartSleep(level) => Self {
                time_to_effect: transitions.sleep_enter(level.effective_speed()),
                power_after: spec.sleep_power(),
                peak_during_transition: spec.active_power(level, util),
            },
            InitialAction::StartHibernate { level, proactive } => Self {
                time_to_effect: transitions
                    .hibernate_save(hibernate_state(proactive), level.effective_speed()),
                power_after: Watts::ZERO,
                peak_during_transition: spec.active_power(level, util),
            },
            InitialAction::PersistNvdimm => Self {
                // The in-DIMM supercap flush is effectively instantaneous
                // from the backup's perspective and draws nothing from it.
                time_to_effect: Seconds::new(1.0),
                power_after: Watts::ZERO,
                peak_during_transition: Watts::ZERO,
            },
            InitialAction::StartRemoteSleep(level) => Self {
                time_to_effect: transitions.sleep_enter(level.effective_speed()),
                // S3 plus live NIC and memory controller.
                power_after: spec.sleep_power() + Watts::new(10.0),
                peak_during_transition: spec.active_power(level, util),
            },
            InitialAction::StartMigration {
                proactive,
                during,
                after,
            } => {
                let state = if proactive {
                    workload.dirty_profile().proactive_migration_residual
                } else {
                    workload.memory_footprint()
                };
                let plan =
                    MigrationModel::xen_default().plan(state, workload.dirty_profile().dirty_rate);
                Self {
                    time_to_effect: plan.duration,
                    // Consolidated 2:1: half the servers at post-throttle.
                    power_after: spec.active_power(after, util) * 0.5,
                    peak_during_transition: (spec.active_power(during, util) * 1.05)
                        .min(spec.peak_power()),
                }
            }
        }
    }
}

/// The Table 5 rows: demand profiles for the six basic techniques, computed
/// for a given workload.
#[must_use]
pub fn table5(workload: &Workload, spec: &ServerSpec) -> Vec<(Technique, TechniqueDemand)> {
    [
        Technique::throttle_deepest(),
        Technique::migration(),
        Technique::proactive_migration(),
        Technique::sleep(),
        Technique::hibernate(),
        Technique::proactive_hibernate(),
    ]
    .into_iter()
    .map(|t| {
        let d = TechniqueDemand::of(&t, workload, spec);
        (t, d)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_units::Fraction;

    fn demand(t: &Technique) -> TechniqueDemand {
        TechniqueDemand::of(t, &Workload::specjbb(), &ServerSpec::paper_testbed())
    }

    #[test]
    fn throttling_is_nearly_instant() {
        // Table 5: "Tens of µsecs".
        let d = demand(&Technique::throttle_deepest());
        assert!(d.time_to_effect.value() < 1e-3);
    }

    #[test]
    fn sleep_effect_seconds_and_watts() {
        // Table 5: Sleep ~10 secs, then 2-4W per DIMM (≈5 W/server here).
        let d = demand(&Technique::sleep());
        assert!(d.time_to_effect.value() <= 10.0);
        assert!((d.power_after.value() - 5.0).abs() < 1.0);
    }

    #[test]
    fn hibernation_takes_minutes_then_zero_watts() {
        // Table 5: "Few mins", then 0 W.
        let d = demand(&Technique::hibernate());
        assert!(d.time_to_effect.to_minutes() > 1.0);
        assert_eq!(d.power_after, Watts::ZERO);
    }

    #[test]
    fn proactive_hibernation_is_faster_than_plain() {
        let plain = demand(&Technique::hibernate());
        let proactive = demand(&Technique::proactive_hibernate());
        assert!(proactive.time_to_effect < plain.time_to_effect);
        // ~22% reduction for Specjbb (Table 8: 230 s → 179 s).
        let reduction = 1.0 - proactive.time_to_effect / plain.time_to_effect;
        assert!((reduction - 0.22).abs() < 0.03, "reduction {reduction}");
    }

    #[test]
    fn migration_takes_minutes_and_halves_power() {
        let d = demand(&Technique::migration());
        assert!((d.time_to_effect.to_minutes() - 10.0).abs() < 1.5);
        let active = ServerSpec::paper_testbed()
            .active_power(dcb_server::ThrottleLevel::NONE, Fraction::new(0.9));
        assert!((d.power_after / active - 0.5).abs() < 0.01);
    }

    #[test]
    fn table5_has_six_rows() {
        let rows = table5(&Workload::specjbb(), &ServerSpec::paper_testbed());
        assert_eq!(rows.len(), 6);
    }
}
