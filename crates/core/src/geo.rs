//! Geo-replication failover for very long outages (§7).
//!
//! "For very long outages (> 4 hours), it is preferred to transfer load
//! (request redirection) to geo-replicated datacenters if no DG is used"
//! (§6.2 insight (v)); §7 discusses leveraging existing multi-datacenter
//! operation to underprovision or remove local backup entirely.
//!
//! This module post-processes a local [`dcb_sim::SimOutcome`]: once the
//! local site has been unavailable for the redirect window, traffic shifts
//! to a power-uncorrelated remote site and is served at reduced capacity
//! (spare headroom × WAN penalty) until the local site recovers. Hard
//! downtime shrinks to the redirect window; the rest becomes degraded
//! service.

use crate::cost::CostModel;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, Technique};
use dcb_units::{Fraction, Seconds};

/// Parameters of the failover path to a geo-replicated site.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GeoFailover {
    /// Time from losing local service until traffic is fully redirected
    /// (health-check detection, DNS/anycast convergence, connection drain).
    pub redirect_after: Seconds,
    /// Spare capacity headroom at the remote site, as a fraction of this
    /// site's normal throughput.
    pub remote_capacity: Fraction,
    /// Performance retained per request served remotely (WAN latency
    /// inflation under a latency SLO).
    pub wan_penalty: Fraction,
}

impl GeoFailover {
    /// A typical production setup: 2 minutes to converge, 70 % headroom,
    /// 90 % per-request performance.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            redirect_after: Seconds::from_minutes(2.0),
            remote_capacity: Fraction::new(0.7),
            wan_penalty: Fraction::new(0.9),
        }
    }

    /// Effective normalized throughput while failed over.
    #[must_use]
    pub fn remote_perf(&self) -> Fraction {
        self.remote_capacity * self.wan_penalty
    }
}

impl Default for GeoFailover {
    fn default() -> Self {
        Self::typical()
    }
}

/// The combined local + failover view of one outage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GeoOutcome {
    /// Configuration label.
    pub config: String,
    /// Technique name.
    pub technique: String,
    /// Normalized backup cost of the local configuration.
    pub cost: f64,
    /// Average normalized performance over the outage, counting remote
    /// service.
    pub perf_during_outage: Fraction,
    /// Time with *no* service anywhere (at most the redirect window per
    /// unavailability episode).
    pub hard_downtime: Seconds,
    /// Time served remotely at degraded capacity (outage window plus the
    /// local recovery tail).
    pub degraded_time: Seconds,
    /// Whether local volatile state was lost (failover does not save it).
    pub state_lost: bool,
}

/// Evaluates an outage with geo-failover backstopping the local backup.
#[must_use]
pub fn evaluate_with_failover(
    cluster: &Cluster,
    config: &BackupConfig,
    technique: &Technique,
    outage: Seconds,
    geo: &GeoFailover,
) -> GeoOutcome {
    let local = OutageSim::new(*cluster, config.clone(), technique.clone()).run(outage);
    let in_outage_down = local.downtime_during_outage;
    let tail = (local.downtime.expected - in_outage_down).max(Seconds::ZERO);

    // Within the outage: the first `redirect_after` of local unavailability
    // is hard downtime; the remainder is served remotely.
    let hard_in_outage = in_outage_down.min(geo.redirect_after);
    let remote_in_outage = (in_outage_down - hard_in_outage).max(Seconds::ZERO);
    // The recovery tail is covered remotely as well (redirect already done),
    // unless the local site never went down in the outage — then the tail
    // (if any) pays its own redirect window.
    let (hard_tail, remote_tail) = if remote_in_outage.value() > 0.0 {
        (Seconds::ZERO, tail)
    } else {
        let h = tail
            .min(geo.redirect_after - hard_in_outage)
            .max(Seconds::ZERO);
        (h, (tail - h).max(Seconds::ZERO))
    };

    let perf = if outage.value() > 0.0 {
        Fraction::new(
            local.perf_during_outage.value()
                + geo.remote_perf().value() * (remote_in_outage / outage),
        )
    } else {
        Fraction::ONE
    };
    GeoOutcome {
        config: config.label().to_owned(),
        technique: technique.name().to_owned(),
        cost: CostModel::paper().normalized_cost(config),
        perf_during_outage: perf,
        hard_downtime: hard_in_outage + hard_tail,
        degraded_time: remote_in_outage + remote_tail,
        state_lost: local.state_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn cluster() -> Cluster {
        Cluster::rack(Workload::web_search())
    }

    #[test]
    fn failover_caps_hard_downtime_for_very_long_outages() {
        // A 6-hour outage with *no* local backup: without geo, the site is
        // dark for 6+ hours; with geo, hard downtime is the redirect window.
        let geo = GeoFailover::typical();
        let out = evaluate_with_failover(
            &cluster(),
            &BackupConfig::min_cost(),
            &Technique::crash(),
            Seconds::from_hours(6.0),
            &geo,
        );
        assert_eq!(out.hard_downtime, geo.redirect_after);
        assert!(out.degraded_time > Seconds::from_hours(5.5));
        assert!(out.state_lost, "failover does not preserve local state");
    }

    #[test]
    fn remote_perf_bounds_combined_perf() {
        let geo = GeoFailover::typical();
        let out = evaluate_with_failover(
            &cluster(),
            &BackupConfig::min_cost(),
            &Technique::crash(),
            Seconds::from_hours(6.0),
            &geo,
        );
        let perf = out.perf_during_outage.value();
        assert!(
            perf > 0.5 && perf <= geo.remote_perf().value() + 1e-9,
            "perf {perf}"
        );
    }

    #[test]
    fn seamless_local_ride_through_needs_no_failover() {
        let out = evaluate_with_failover(
            &cluster(),
            &BackupConfig::max_perf(),
            &Technique::ride_through(),
            Seconds::from_hours(6.0),
            &GeoFailover::typical(),
        );
        assert_eq!(out.hard_downtime, Seconds::ZERO);
        assert_eq!(out.degraded_time, Seconds::ZERO);
        assert!(out.perf_during_outage.value() > 0.99);
    }

    #[test]
    fn ups_plus_geo_handles_bulk_locally_and_tail_remotely() {
        // §7's proposal: a modest UPS rides the (majority) short outages at
        // full performance; geo-failover covers the rare long ones.
        let geo = GeoFailover::typical();
        let short = evaluate_with_failover(
            &cluster(),
            &BackupConfig::large_e_ups(),
            &Technique::ride_through(),
            Seconds::from_minutes(20.0),
            &geo,
        );
        assert!(short.perf_during_outage.value() > 0.99);
        assert_eq!(short.degraded_time, Seconds::ZERO);

        let long = evaluate_with_failover(
            &cluster(),
            &BackupConfig::large_e_ups(),
            &Technique::ride_through(),
            Seconds::from_hours(5.0),
            &geo,
        );
        assert!(long.hard_downtime <= geo.redirect_after + Seconds::new(1.0));
        assert!(long.perf_during_outage.value() > 0.5);
    }

    #[test]
    fn sleep_plus_geo_keeps_state_and_serves_remotely() {
        // Local sleep preserves state; remote site carries traffic — the
        // best of both for long outages without a DG.
        let out = evaluate_with_failover(
            &cluster(),
            &BackupConfig::no_dg(),
            &Technique::sleep_l(),
            Seconds::from_hours(2.0),
            &GeoFailover::typical(),
        );
        assert!(!out.state_lost);
        assert!(out.hard_downtime <= Seconds::from_minutes(2.0) + Seconds::new(1.0));
        assert!(out.perf_during_outage.value() > 0.5);
    }
}
