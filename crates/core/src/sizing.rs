//! Minimum-cost UPS sizing for a technique and outage duration.
//!
//! §6.2: "For each system technique, we use the lowest cost backup
//! configuration (combination of UPS peak and energy capacity) at each of
//! the offered performance and availability operating points." This module
//! implements that search — the engine behind the cost bars of Figures 6–9.
//! The DG is excluded ("the presence of DG ... is not only expensive but is
//! also uninteresting in its performability implications for outages longer
//! than the DG start-up time", §6.2).

use crate::cost::CostModel;
use crate::evaluate::Performability;
use crate::fleet;
use dcb_fleet::Scenario;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, Technique};
use dcb_units::{Fraction, Seconds};

/// Acceptance criteria for a sized configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SizingTargets {
    /// Volatile state must survive the outage (set `false` only for the
    /// crash baseline).
    pub require_state_preserved: bool,
    /// Minimum average normalized performance during the outage, if any.
    pub min_perf: Option<f64>,
    /// Maximum tolerable downtime, if any.
    pub max_downtime: Option<Seconds>,
}

impl SizingTargets {
    /// The Figure 6 criterion: the technique must run to plan and keep
    /// state; performance and downtime are *reported*, not constrained.
    #[must_use]
    pub fn execute_to_plan() -> Self {
        Self {
            require_state_preserved: true,
            min_perf: None,
            max_downtime: None,
        }
    }

    /// Whether a simulated point satisfies the targets.
    #[must_use]
    pub fn satisfied_by(&self, p: &Performability) -> bool {
        let o = &p.outcome;
        if !o.feasible {
            return false;
        }
        if self.require_state_preserved && o.state_lost {
            return false;
        }
        if let Some(min_perf) = self.min_perf {
            if o.perf_during_outage.value() + 1e-12 < min_perf {
                return false;
            }
        }
        if let Some(max_downtime) = self.max_downtime {
            if o.downtime.expected > max_downtime {
                return false;
            }
        }
        true
    }
}

impl Default for SizingTargets {
    fn default() -> Self {
        Self::execute_to_plan()
    }
}

/// A sized operating point: the cheapest UPS-only configuration found and
/// its evaluated performability.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SizedPoint {
    /// The minimum-cost configuration.
    pub config: BackupConfig,
    /// Its evaluation at the sizing duration.
    pub performability: Performability,
}

/// The UPS power fractions the search considers.
const POWER_FRACTIONS: [f64; 8] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

fn ups_only(power: f64, runtime: Seconds) -> BackupConfig {
    BackupConfig::custom(
        format!("UPS {:.0}% × {:.0}min", power * 100.0, runtime.to_minutes()),
        Fraction::ZERO,
        Fraction::new(power),
        runtime,
    )
}

/// Finds the minimum-cost UPS-only configuration under which `technique`
/// satisfies `targets` for an outage of `duration`.
///
/// For each candidate power fraction the minimal battery runtime is found
/// by bisection (feasibility is monotone in energy), and the cheapest
/// satisfying point across fractions wins. The per-fraction bisections are
/// independent and fan out over the shared [`crate::fleet`] pool, with
/// every probed point memoized in its cache; the winner is still chosen in
/// fraction order (first-minimum ties), so the result is identical to the
/// serial search. Returns `None` when no candidate satisfies the targets
/// (the paper's "infeasible" bars).
#[must_use]
pub fn min_cost_ups(
    cluster: &Cluster,
    technique: &Technique,
    duration: Seconds,
    targets: &SizingTargets,
) -> Option<SizedPoint> {
    dcb_telemetry::counter!("core.sizing.searches").incr();
    // Price the baseline once, outside the fraction loop.
    let normalizer = CostModel::paper().normalizer();
    // Generous energy ceiling: ride the whole outage plus save overheads.
    let max_runtime = (duration * 1.5 + Seconds::from_minutes(40.0))
        .min(Seconds::from_minutes(480.0))
        .max(Seconds::from_minutes(4.0));

    let candidates = fleet::pool().run_all(&POWER_FRACTIONS, |&power| {
        let try_runtime = |runtime: Seconds| -> Option<Performability> {
            let config = ups_only(power, runtime);
            let p = fleet::evaluate_scenario(&Scenario::new(cluster, &config, technique, duration));
            targets.satisfied_by(&p).then_some(p)
        };
        // The ceiling must work at this power level at all.
        if try_runtime(max_runtime).is_none() {
            dcb_telemetry::counter!("core.sizing.ceiling_infeasible").incr();
            return None;
        }
        // Bisect the minimal runtime to 1-minute granularity.
        let mut lo = BackupConfig::FREE_RUNTIME;
        let mut hi = max_runtime;
        if try_runtime(lo).is_some() {
            hi = lo;
        } else {
            while (hi - lo) > Seconds::from_minutes(1.0) {
                let mid = (lo + hi) / 2.0;
                if try_runtime(mid).is_some() {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
        let config = ups_only(power, hi);
        let performability =
            fleet::evaluate_scenario(&Scenario::new(cluster, &config, technique, duration));
        debug_assert!(targets.satisfied_by(&performability));
        let cost = normalizer.normalized_cost(&config);
        Some((
            cost,
            SizedPoint {
                config,
                performability,
            },
        ))
    });

    let mut best: Option<(f64, SizedPoint)> = None;
    for candidate in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|(c, _)| candidate.0 < *c) {
            best = Some(candidate);
        }
    }
    best.map(|(_, point)| point)
}

/// Sizes every technique in `catalog` at every duration — the full data
/// behind one Figure 6/7/8/9 panel. Entries are `None` where the technique
/// cannot meet the targets at any candidate UPS size.
///
/// The (technique, duration) grid fans out over the shared
/// [`crate::fleet`] pool; each cell's own sizing search then runs inline
/// on its worker, and every simulated point memoizes in the shared cache.
#[must_use]
pub fn technique_tradeoffs(
    cluster: &Cluster,
    catalog: &[Technique],
    durations: &[Seconds],
    targets: &SizingTargets,
) -> Vec<(Technique, Seconds, Option<SizedPoint>)> {
    let _span = dcb_telemetry::span("technique_tradeoffs");
    let _prof = dcb_prof::frame("technique_tradeoffs");
    let mut cells = Vec::with_capacity(catalog.len() * durations.len());
    for technique in catalog {
        for &duration in durations {
            cells.push((technique.clone(), duration));
        }
    }
    let points = fleet::pool().run_all(&cells, |(technique, duration)| {
        // The crash baseline needs no backup at all: report MinCost.
        if technique.name() == Technique::crash().name() {
            let config = BackupConfig::min_cost();
            Some(SizedPoint {
                performability: fleet::evaluate_scenario(&Scenario::new(
                    cluster, &config, technique, *duration,
                )),
                config,
            })
        } else {
            min_cost_ups(cluster, technique, *duration, targets)
        }
    });
    cells
        .into_iter()
        .zip(points)
        .map(|((technique, duration), point)| (technique, duration, point))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn cluster() -> Cluster {
        Cluster::rack(Workload::specjbb())
    }

    #[test]
    fn sleep_sizes_tiny_for_short_outage() {
        // §6.2: "Sleep-L, which costs only 20% of MaxPerf" for a 30 s
        // outage.
        let point = min_cost_ups(
            &cluster(),
            &Technique::sleep_l(),
            Seconds::new(30.0),
            &SizingTargets::execute_to_plan(),
        )
        .expect("sleep-l must be sizable");
        let cost = point.performability.cost;
        assert!(cost <= 0.25, "cost {cost}");
        assert!(!point.performability.outcome.state_lost);
    }

    #[test]
    fn throttling_cheap_for_medium_outages() {
        // §6.2: throttling matches MaxPerf performance at < 40% of its cost
        // for outages up to 30 minutes (at some throttle depth).
        let point = min_cost_ups(
            &cluster(),
            &Technique::throttle_deepest(),
            Seconds::from_minutes(30.0),
            &SizingTargets::execute_to_plan(),
        )
        .expect("throttling must be sizable for 30 min");
        assert!(
            point.performability.cost < 0.45,
            "cost {}",
            point.performability.cost
        );
    }

    #[test]
    fn ride_through_costs_more_than_throttling() {
        let duration = Seconds::from_minutes(30.0);
        let full = min_cost_ups(
            &cluster(),
            &Technique::ride_through(),
            duration,
            &SizingTargets::execute_to_plan(),
        )
        .expect("ride-through sizable");
        let throttled = min_cost_ups(
            &cluster(),
            &Technique::throttle_deepest(),
            duration,
            &SizingTargets::execute_to_plan(),
        )
        .expect("throttle sizable");
        assert!(full.performability.cost > throttled.performability.cost);
    }

    #[test]
    fn hybrid_sleep_cheapest_for_long_outages() {
        // §6.2: "for long outages ... Throttle+Sleep-L can sustain at as low
        // as 20% cost" while pure throttling needs much more.
        let duration = Seconds::from_minutes(120.0);
        let hybrid = min_cost_ups(
            &cluster(),
            &Technique::throttle_sleep_l(dcb_server::ThrottleLevel {
                p: dcb_server::PState::slowest(),
                t: dcb_server::TState::full(),
            }),
            duration,
            &SizingTargets::execute_to_plan(),
        )
        .expect("hybrid sizable for 2 h");
        assert!(
            hybrid.performability.cost <= 0.30,
            "cost {}",
            hybrid.performability.cost
        );
    }

    #[test]
    fn targets_filter_low_performance() {
        let strict = SizingTargets {
            require_state_preserved: true,
            min_perf: Some(0.99),
            max_downtime: Some(Seconds::ZERO),
        };
        // Sleeping gives zero perf, so it can never satisfy the strict
        // target.
        let point = min_cost_ups(&cluster(), &Technique::sleep(), Seconds::new(30.0), &strict);
        assert!(point.is_none());
    }

    #[test]
    fn tradeoffs_table_covers_catalog() {
        let rows = technique_tradeoffs(
            &cluster(),
            &[Technique::crash(), Technique::sleep_l()],
            &[Seconds::new(30.0)],
            &SizingTargets::execute_to_plan(),
        );
        assert_eq!(rows.len(), 2);
        // Crash maps to the MinCost config.
        let (_, _, crash_point) = &rows[0];
        assert_eq!(crash_point.as_ref().unwrap().config.label(), "MinCost");
    }
}
