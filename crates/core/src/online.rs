//! The §7 adaptive controller for outages of unknown duration.
//!
//! "We may choose to start with the throttling at full performance mode
//! (assuming outage will be short) and gradually transition to lower power
//! modes and then finally (when outage exceeds 5 mins) use the sleep or
//! hibernate techniques which are known to considerably reduce backup
//! energy requirement."
//!
//! The controller re-plans every step. Serving burns charge that could
//! otherwise extend the sleep endurance, so the governing quantity is the
//! *state-loss risk*: the predictor's probability that the outage outlasts
//! the sleep coverage the remaining charge would buy. The controller serves
//! at the shallowest throttle level that keeps this risk within tolerance
//! over a short lookahead window, escalates to deeper levels as charge
//! falls, and finally drops to sleep — reproducing the paper's
//! full-performance-first, gradually-deepening strategy.

use dcb_outage::DurationPredictor;
use dcb_power::BackupConfig;
use dcb_server::{PState, TState, ThrottleLevel, TransitionTimes};
use dcb_sim::Cluster;
use dcb_units::{Fraction, Seconds, Watts};
use dcb_workload::DowntimeRange;

/// One controller decision, for post-hoc inspection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Decision {
    /// When (into the outage) the decision took effect.
    pub at: Seconds,
    /// Human-readable action ("serve@P6/T0", "enter-sleep", ...).
    pub action: String,
}

/// The outcome of an adaptively controlled outage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveOutcome {
    /// The outage length that actually materialized.
    pub outage: Seconds,
    /// Whether volatile state survived.
    pub state_lost: bool,
    /// Average normalized performance over the outage.
    pub perf_during_outage: Fraction,
    /// Total downtime including the recovery tail.
    pub downtime: DowntimeRange,
    /// The decision log.
    pub decisions: Vec<Decision>,
}

/// The adaptive outage controller.
///
/// ```
/// use dcb_core::online::AdaptiveController;
/// use dcb_core::{BackupConfig, Cluster};
/// use dcb_outage::{DurationDistribution, DurationPredictor};
/// use dcb_units::Seconds;
/// use dcb_workload::Workload;
///
/// let controller = AdaptiveController::new(
///     DurationPredictor::from_distribution(&DurationDistribution::us_business()),
/// );
/// let outcome = controller.simulate(
///     &Cluster::rack(Workload::specjbb()),
///     &BackupConfig::large_e_ups(),
///     Seconds::from_minutes(45.0),
/// );
/// // State must survive even though the duration was unknown in advance.
/// assert!(!outcome.state_lost);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    predictor: DurationPredictor,
    risk: f64,
    tare_fraction: f64,
}

/// What the controller does next while the cluster is serving.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Serve(ThrottleLevel),
    Sleep,
    Save,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Serving(ThrottleLevel),
    EnteringSleep { remaining: Seconds },
    Sleeping,
    Saving { remaining: Seconds },
    Hibernated,
    Crashed,
}

impl AdaptiveController {
    /// Default tolerated probability of the outage outlasting the sleep
    /// coverage bought by the remaining charge.
    pub const DEFAULT_RISK: f64 = 0.1;

    /// A controller over the given predictor with the default risk.
    #[must_use]
    pub fn new(predictor: DurationPredictor) -> Self {
        Self {
            predictor,
            risk: Self::DEFAULT_RISK,
            tare_fraction: 0.005,
        }
    }

    /// Overrides the risk tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < risk < 1`.
    #[must_use]
    pub fn with_risk(mut self, risk: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&risk) && risk > 0.0,
            "risk must be in (0,1)"
        );
        self.risk = risk;
        self
    }

    /// The throttle ladder the controller escalates through.
    fn ladder() -> [ThrottleLevel; 3] {
        [
            ThrottleLevel::NONE,
            ThrottleLevel {
                p: PState::new(3),
                t: TState::full(),
            },
            ThrottleLevel {
                p: PState::slowest(),
                t: TState::full(),
            },
        ]
    }

    /// Runs the controller through an outage whose duration it does *not*
    /// know in advance.
    #[must_use]
    pub fn simulate(
        &self,
        cluster: &Cluster,
        config: &BackupConfig,
        outage: Seconds,
    ) -> AdaptiveOutcome {
        let spec = *cluster.spec();
        let w = *cluster.workload();
        let util = w.utilization();
        let n = f64::from(cluster.size());
        let transitions = TransitionTimes::new(spec);
        let mut backup = config.instantiate(cluster.peak_power());
        let tare = backup
            .ups()
            .map_or(Watts::ZERO, |u| u.power_capacity() * self.tare_fraction);
        let serve_load = |level: ThrottleLevel| spec.active_power(level, util) * n + tare;
        let sleep_load = spec.sleep_power() * n + tare;

        let mut mode = Mode::Serving(ThrottleLevel::NONE);
        let mut decisions = vec![Decision {
            at: Seconds::ZERO,
            action: "serve@full".to_owned(),
        }];
        let mut serving_integral = 0.0;
        let mut downtime = Seconds::ZERO;
        let mut state_lost = false;

        let step = Seconds::new((outage.value() / 7200.0).max(0.25));
        let mut t = Seconds::ZERO;
        while t < outage {
            let dt = step.min(outage - t);
            // Re-plan while serving.
            if let Mode::Serving(current) = mode {
                let endurance_now = backup.endurance(serve_load(ThrottleLevel::NONE), t);
                if !endurance_now.value().is_infinite() {
                    let deepest = Self::ladder()[2];
                    let save_time = transitions
                        .hibernate_save(w.effective_hibernate_image(), deepest.effective_speed());
                    let action = self.decide(
                        &backup,
                        &transitions,
                        t,
                        dt,
                        serve_load,
                        sleep_load,
                        save_time,
                    );
                    match action {
                        Action::Serve(level) if level != current => {
                            decisions.push(Decision {
                                at: t,
                                action: format!("serve@{level}"),
                            });
                            mode = Mode::Serving(level);
                        }
                        Action::Serve(_) => {}
                        Action::Sleep => {
                            decisions.push(Decision {
                                at: t,
                                action: "enter-sleep".to_owned(),
                            });
                            mode = Mode::EnteringSleep {
                                remaining: transitions.sleep_enter(deepest.effective_speed()),
                            };
                        }
                        Action::Save => {
                            decisions.push(Decision {
                                at: t,
                                action: "enter-hibernate".to_owned(),
                            });
                            mode = Mode::Saving {
                                remaining: save_time,
                            };
                        }
                    }
                }
            }
            let load = match &mode {
                Mode::Serving(level) => serve_load(*level),
                Mode::EnteringSleep { .. } | Mode::Saving { .. } => serve_load(Self::ladder()[2]),
                Mode::Sleeping => sleep_load,
                Mode::Hibernated | Mode::Crashed => Watts::ZERO,
            };
            let supply = backup.supply(load, t, dt);
            if !supply.fully_covered() {
                if let Mode::Serving(level) = mode {
                    serving_integral += w
                        .throughput_at(level.effective_speed(), Fraction::ONE)
                        .value()
                        * supply.sustained.value();
                }
                downtime += dt - supply.sustained;
                if !matches!(mode, Mode::Crashed) {
                    state_lost = true;
                    mode = Mode::Crashed;
                }
                t += dt;
                continue;
            }
            match &mut mode {
                Mode::Serving(level) => {
                    serving_integral += w
                        .throughput_at(level.effective_speed(), Fraction::ONE)
                        .value()
                        * dt.value();
                }
                Mode::EnteringSleep { remaining } => {
                    downtime += dt;
                    *remaining -= dt;
                    if remaining.value() <= 0.0 {
                        mode = Mode::Sleeping;
                    }
                }
                Mode::Saving { remaining } => {
                    downtime += dt;
                    *remaining -= dt;
                    if remaining.value() <= 0.0 {
                        mode = Mode::Hibernated;
                    }
                }
                Mode::Sleeping | Mode::Hibernated | Mode::Crashed => downtime += dt,
            }
            t += dt;
        }

        // Recovery tail.
        let recovery = w.recovery();
        let boot = spec.boot_time();
        let (tail_expected, spread) = match mode {
            Mode::Serving(_) => (Seconds::ZERO, None),
            Mode::EnteringSleep { remaining } => (
                remaining.max(Seconds::ZERO) + transitions.sleep_resume(),
                None,
            ),
            Mode::Sleeping => (transitions.sleep_resume(), None),
            Mode::Saving { remaining } => (
                remaining.max(Seconds::ZERO)
                    + transitions.hibernate_resume(w.effective_hibernate_image(), true),
                None,
            ),
            Mode::Hibernated => (
                transitions.hibernate_resume(w.effective_hibernate_image(), true),
                None,
            ),
            Mode::Crashed => {
                let r = boot
                    + recovery.app_start
                    + recovery.reload_time()
                    + recovery.warmup
                    + recovery.recompute.expected;
                (r, Some(recovery.recompute))
            }
        };
        let expected = downtime + tail_expected;
        let downtime_range = match spread {
            Some(rec) => DowntimeRange {
                min: (expected + rec.min - rec.expected).max(Seconds::ZERO),
                expected,
                max: expected + rec.max - rec.expected,
            },
            None => DowntimeRange::exact(expected),
        };
        AdaptiveOutcome {
            outage,
            state_lost,
            perf_during_outage: if outage.value() > 0.0 {
                Fraction::new(serving_integral / outage.value())
            } else {
                Fraction::ONE
            },
            downtime: downtime_range,
            decisions,
        }
    }

    /// Decides what to do for one more re-planning step: serve at some
    /// ladder level, drop to sleep, or persist to disk.
    ///
    /// The fallback *kind* is chosen first — sleep when the remaining
    /// charge's sleep coverage plausibly outlasts the predictor's
    /// pessimistic horizon, hibernation when it does not but the battery
    /// can still carry the (expensive) save. With a sleep fallback the
    /// serve rule is risk-based: the probability that the outage outlasts
    /// one more step plus the post-step sleep coverage must stay within the
    /// risk budget. With a hibernate fallback the rule is a hard energy
    /// reserve: serve while the charge stays above what the save needs.
    /// Levels whose load exceeds the UPS electronics rating are never
    /// candidates.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        backup: &dcb_power::BackupSystem,
        transitions: &TransitionTimes,
        elapsed: Seconds,
        step: Seconds,
        serve_load: impl Fn(ThrottleLevel) -> Watts,
        sleep_load: Watts,
        save_time: Seconds,
    ) -> Action {
        let Some(ups) = backup.ups() else {
            return Action::Sleep; // no battery: nothing better exists
        };
        let charge = ups.charge().value();
        let fraction_for = |load: Watts, duration: Seconds| -> f64 {
            if duration.value() <= 0.0 {
                return 0.0;
            }
            let runtime = ups.pack().runtime_at(load);
            if runtime.value().is_finite() && runtime.value() > 0.0 {
                duration.value() / runtime.value()
            } else if load.value() <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        };
        let sleep_runtime = ups.pack().runtime_at(sleep_load);
        let coverage = |c: f64| sleep_runtime * c.max(0.0);
        let deepest = Self::ladder()[2];
        let entry_time = transitions.sleep_enter(deepest.effective_speed());
        let entry_frac = fraction_for(serve_load(deepest), entry_time);
        let cap = ups.power_capacity();

        let horizon = self.predictor.remaining_quantile(elapsed, self.risk);
        let save_frac = fraction_for(serve_load(deepest), save_time);
        let save_reserve = save_frac * 1.15;

        // Risk-based serve check under a sleep fallback. Shallower levels
        // must commit to a larger safety window (a bigger slice of their
        // own endurance), so as charge falls the controller passes through
        // the throttled levels before stopping instead of jumping from
        // full speed to a save-state mode.
        const WINDOW_FRACTIONS: [f64; 3] = [0.25, 0.15, 0.05];
        let risk_serve = || -> Option<ThrottleLevel> {
            for (level, window_fraction) in Self::ladder().into_iter().zip(WINDOW_FRACTIONS) {
                let load = serve_load(level);
                if load > cap {
                    continue;
                }
                let window = (ups.pack().runtime_at(load) * window_fraction).max(step);
                let burn = fraction_for(load, window);
                let left = charge - burn - entry_frac;
                if left <= 0.0 {
                    continue;
                }
                let risk = self
                    .predictor
                    .probability_exceeds(elapsed, window + coverage(left));
                if risk <= self.risk {
                    return Some(level);
                }
            }
            None
        };

        // 1. Serving is safe when the sleep-risk rule allows it AND one
        //    more step still leaves the hibernate reserve intact — either
        //    fallback stays reachable.
        if let Some(level) = risk_serve() {
            if charge - fraction_for(serve_load(level), step) > save_reserve {
                return Action::Serve(level);
            }
        }
        // 2. If the remaining charge sleeps through the pessimistic
        //    horizon, stay in the sleep regime (faster resume than a disk
        //    image). When hibernation is affordable, demand a margin:
        //    without it this regime could keep serving until the hibernate
        //    reserve is gone and then find the sleep coverage no longer
        //    sufficient. A battery that could never carry the save has no
        //    reserve to protect.
        let margin = if save_reserve < 1.0 { 1.25 } else { 1.0 };
        if coverage(charge - entry_frac).value() >= horizon.value() * margin {
            return if let Some(level) = risk_serve() {
                Action::Serve(level)
            } else {
                Action::Sleep
            };
        }
        // 3. Sleep cannot cover the horizon: spend the remaining headroom
        //    above the save reserve on throttled service, then persist.
        if charge >= save_reserve {
            for level in Self::ladder() {
                let load = serve_load(level);
                if load > cap {
                    continue;
                }
                if charge - fraction_for(load, step) > save_reserve {
                    return Action::Serve(level);
                }
            }
            return Action::Save;
        }
        // 4. Too late for the save: sleep as the best remaining effort.
        Action::Sleep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_outage::DurationDistribution;
    use dcb_workload::Workload;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(DurationPredictor::from_distribution(
            &DurationDistribution::us_business(),
        ))
    }

    fn cluster() -> Cluster {
        Cluster::rack(Workload::specjbb())
    }

    #[test]
    fn short_outage_served_at_high_performance() {
        let out = controller().simulate(&cluster(), &BackupConfig::no_dg(), Seconds::new(30.0));
        assert!(!out.state_lost);
        assert!(
            out.perf_during_outage.value() > 0.5,
            "perf {:?}",
            out.perf_during_outage
        );
    }

    #[test]
    fn long_outage_preserves_state_via_sleep() {
        let out = controller().simulate(
            &cluster(),
            &BackupConfig::large_e_ups(),
            Seconds::from_hours(2.0),
        );
        assert!(!out.state_lost, "decisions: {:?}", out.decisions);
        assert!(
            out.decisions.iter().any(|d| d.action == "enter-sleep"),
            "never slept: {:?}",
            out.decisions
        );
    }

    #[test]
    fn dg_configs_never_escalate() {
        let out = controller().simulate(
            &cluster(),
            &BackupConfig::max_perf(),
            Seconds::from_hours(2.0),
        );
        assert!(!out.state_lost);
        assert_eq!(out.decisions.len(), 1, "decisions: {:?}", out.decisions);
        assert!(out.perf_during_outage.value() > 0.99);
    }

    #[test]
    fn decisions_escalate_monotonically_in_time() {
        let out = controller().simulate(
            &cluster(),
            &BackupConfig::large_e_ups(),
            Seconds::from_hours(3.0),
        );
        for pair in out.decisions.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn never_strands_a_save_across_durations() {
        // The controller's core guarantee: across a wide range of outage
        // durations it never loses state when the battery could have
        // covered a timely sleep.
        for minutes in [1.0, 5.0, 20.0, 45.0, 90.0, 180.0] {
            let out = controller().simulate(
                &cluster(),
                &BackupConfig::large_e_ups(),
                Seconds::from_minutes(minutes),
            );
            assert!(!out.state_lost, "{minutes} min: {:?}", out.decisions);
        }
    }

    #[test]
    fn controller_hibernates_when_sleep_cannot_cover_the_horizon() {
        // A half-power UPS with 10 minutes of battery cannot sleep through
        // a predicted multi-hour tail, but it can afford the low-power
        // save: the controller must choose hibernation over a doomed sleep.
        let config = BackupConfig::custom(
            "UPS 50% × 10min",
            dcb_units::Fraction::ZERO,
            dcb_units::Fraction::HALF,
            Seconds::from_minutes(10.0),
        );
        let out = controller().simulate(&cluster(), &config, Seconds::from_hours(8.0));
        assert!(!out.state_lost, "decisions: {:?}", out.decisions);
        assert!(
            out.decisions.iter().any(|d| d.action == "enter-hibernate"),
            "expected hibernation: {:?}",
            out.decisions
        );
    }

    #[test]
    fn higher_risk_tolerance_serves_longer() {
        let bold = controller().with_risk(0.4).simulate(
            &cluster(),
            &BackupConfig::large_e_ups(),
            Seconds::from_minutes(60.0),
        );
        let cautious = controller().with_risk(0.01).simulate(
            &cluster(),
            &BackupConfig::large_e_ups(),
            Seconds::from_minutes(60.0),
        );
        assert!(bold.perf_during_outage >= cautious.perf_during_outage);
    }
}
