//! Yearly availability analysis: Monte-Carlo over sampled outage traces.
//!
//! The paper evaluates individual outages; an operator ultimately cares
//! about the *yearly* picture — expected downtime, availability "nines"
//! (the currency of the Tier classification the paper cites), and how often
//! volatile state is lost — given the Figure 1 outage statistics, partial
//! battery recharge between back-to-back outages, and a chosen
//! configuration + technique. This module samples many synthetic years and
//! aggregates.

use crate::cost::CostModel;
use crate::fleet;
use dcb_outage::OutageSampler;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, Technique};
use dcb_units::{contract, Fraction, Seconds};

/// Aggregated availability statistics for one (configuration, technique)
/// choice.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AvailabilityReport {
    /// Configuration label.
    pub config: String,
    /// Technique name.
    pub technique: String,
    /// Normalized yearly backup cost (MaxPerf = 1).
    pub cost: f64,
    /// Number of sampled years.
    pub years: usize,
    /// Total outages simulated.
    pub outages: usize,
    /// Mean yearly downtime.
    pub mean_yearly_downtime: Seconds,
    /// 95th-percentile yearly downtime.
    pub p95_yearly_downtime: Seconds,
    /// Mean availability over the sampled years.
    pub mean_availability: Fraction,
    /// Availability in "nines" (−log₁₀ of mean unavailability).
    pub nines: f64,
    /// Fraction of outages in which volatile state was lost.
    pub state_loss_rate: f64,
    /// Mean battery wear per year, in equivalent full cycles — §2's
    /// backup-duty-barely-wears-the-pack point, quantified (lead-acid EOL
    /// is ~500 cycles over its 4-year life, i.e. a 125-cycle/yr budget).
    pub mean_yearly_battery_cycles: f64,
}

/// Runs the Monte-Carlo analysis: `years` sampled years of outages (seeded,
/// reproducible) simulated against `config` + `technique`.
///
/// Years fan out over the shared [`crate::fleet`] pool: each sampled year
/// draws its trace from a sampler seeded purely by `(seed, year index)`
/// ([`dcb_fleet::trial_seed`]), so the report is bit-identical for any
/// thread count — including fully serial execution.
///
/// # Panics
///
/// Panics if `years` is zero.
///
/// ```
/// use dcb_core::availability::analyze;
/// use dcb_core::{BackupConfig, Cluster, Technique};
/// use dcb_workload::Workload;
///
/// let report = analyze(
///     &Cluster::rack(Workload::specjbb()),
///     &BackupConfig::max_perf(),
///     &Technique::ride_through(),
///     50,
///     42,
/// );
/// // Today's practice: no downtime from any sampled outage.
/// assert_eq!(report.mean_yearly_downtime.value(), 0.0);
/// ```
#[must_use]
pub fn analyze(
    cluster: &Cluster,
    config: &BackupConfig,
    technique: &Technique,
    years: usize,
    seed: u64,
) -> AvailabilityReport {
    assert!(years > 0, "need at least one sampled year");
    let span = Seconds::from_hours(365.0 * 24.0);
    let sim = OutageSim::new(*cluster, config.clone(), technique.clone());
    let sampled = fleet::pool().monte_carlo(seed, years, 0, |trial| {
        let trace = OutageSampler::seeded(trial.seed).sample_year();
        let outcome = sim.run_trace(&trace, span);
        (
            outcome.outcomes.len(),
            outcome.state_losses(),
            outcome.battery_cycles,
            outcome.availability().value(),
            outcome.total_downtime(),
        )
    });
    // Aggregate in trial order so float sums are scheduling-independent.
    let mut yearly_downtime = Vec::with_capacity(years);
    let mut availability_sum = 0.0;
    let mut outages = 0usize;
    let mut losses = 0usize;
    let mut cycles = 0.0;
    for (n, lost, wear, availability, downtime) in sampled {
        outages += n;
        losses += lost;
        cycles += wear;
        availability_sum += availability;
        yearly_downtime.push(downtime);
    }
    yearly_downtime.sort_by(Seconds::total_cmp);
    let mean_yearly_downtime = yearly_downtime.iter().copied().sum::<Seconds>() / years as f64;
    let p95 = yearly_downtime[((years - 1) as f64 * 0.95) as usize];
    // Probability bounds: a per-year availability is a fraction of the
    // year, so the mean must land in [0, 1] *before* Fraction clamps it.
    let raw_mean = availability_sum / years as f64;
    contract!(
        (-1e-12..=1.0 + 1e-12).contains(&raw_mean),
        "mean availability left [0,1]: {raw_mean}"
    );
    contract!(
        losses <= outages,
        "state losses ({losses}) cannot exceed simulated outages ({outages})"
    );
    contract!(
        mean_yearly_downtime.value() >= 0.0 && p95.value() >= 0.0,
        "downtime must be non-negative: mean {mean_yearly_downtime}, p95 {p95}"
    );
    let mean_availability = Fraction::new(raw_mean);
    let unavailability = 1.0 - mean_availability.value();
    AvailabilityReport {
        config: config.label().to_owned(),
        technique: technique.name().to_owned(),
        cost: CostModel::paper().normalized_cost(config),
        years,
        outages,
        mean_yearly_downtime,
        p95_yearly_downtime: p95,
        mean_availability,
        nines: if unavailability <= 0.0 {
            f64::INFINITY
        } else {
            -unavailability.log10()
        },
        state_loss_rate: if outages == 0 {
            0.0
        } else {
            losses as f64 / outages as f64
        },
        mean_yearly_battery_cycles: cycles / years as f64,
    }
}

/// Builds the cost–availability frontier over a set of candidate
/// (configuration, technique) choices, sorted by cost. Candidates fan out
/// over the shared [`crate::fleet`] pool (each candidate's own year loop
/// then runs inline on its worker).
#[must_use]
pub fn frontier(
    cluster: &Cluster,
    candidates: &[(BackupConfig, Technique)],
    years: usize,
    seed: u64,
) -> Vec<AvailabilityReport> {
    let mut reports = fleet::pool().run_all(candidates, |(config, technique)| {
        analyze(cluster, config, technique, years, seed)
    });
    reports.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn cluster() -> Cluster {
        Cluster::rack(Workload::specjbb())
    }

    #[test]
    fn max_perf_has_effectively_unbounded_nines() {
        let r = analyze(
            &cluster(),
            &BackupConfig::max_perf(),
            &Technique::ride_through(),
            30,
            1,
        );
        assert_eq!(r.state_loss_rate, 0.0);
        assert!(r.nines > 6.0);
    }

    #[test]
    fn min_cost_availability_is_much_worse() {
        let bad = analyze(
            &cluster(),
            &BackupConfig::min_cost(),
            &Technique::crash(),
            30,
            1,
        );
        let good = analyze(
            &cluster(),
            &BackupConfig::max_perf(),
            &Technique::ride_through(),
            30,
            1,
        );
        assert!(bad.nines < good.nines);
        assert!(bad.mean_yearly_downtime.value() > 0.0);
        assert!(bad.state_loss_rate > 0.9);
    }

    #[test]
    fn battery_wear_stays_far_below_cycle_budget() {
        // Backup duty costs single-digit equivalent cycles per year against
        // a ~125 cycle/yr lead-acid budget.
        let r = analyze(
            &cluster(),
            &BackupConfig::no_dg(),
            &Technique::ride_through(),
            40,
            11,
        );
        assert!(
            r.mean_yearly_battery_cycles < 10.0,
            "cycles {}",
            r.mean_yearly_battery_cycles
        );
        assert!(r.mean_yearly_battery_cycles > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = analyze(
            &cluster(),
            &BackupConfig::no_dg(),
            &Technique::sleep_l(),
            10,
            7,
        );
        let b = analyze(
            &cluster(),
            &BackupConfig::no_dg(),
            &Technique::sleep_l(),
            10,
            7,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn p95_at_least_mean_shape() {
        let r = analyze(
            &cluster(),
            &BackupConfig::no_dg(),
            &Technique::throttle_deepest(),
            40,
            3,
        );
        assert!(r.p95_yearly_downtime + Seconds::new(1e-9) >= r.mean_yearly_downtime * 0.5);
    }

    #[test]
    fn frontier_sorted_by_cost_and_monotone_enough() {
        let candidates = vec![
            (BackupConfig::min_cost(), Technique::crash()),
            (BackupConfig::small_pups(), Technique::sleep_l()),
            (BackupConfig::large_e_ups(), Technique::ride_through()),
            (BackupConfig::max_perf(), Technique::ride_through()),
        ];
        let reports = frontier(&cluster(), &candidates, 25, 5);
        for pair in reports.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
        }
        // The expensive end must dominate the cheap end on availability.
        assert!(reports.last().unwrap().nines > reports.first().unwrap().nines);
    }
}
