//! Process-wide fleet execution: the shared [`FleetPool`] and the
//! [`Performability`] memoization cache that every sweep, sizing search,
//! planner run, and availability analysis routes through.
//!
//! The pool is sized once from the environment (`DCB_THREADS`, then
//! [`std::thread::available_parallelism`]); the cache is keyed by
//! [`Scenario::digest`], so a configuration × duration point simulated for
//! Figure 5 is never re-simulated by the sizing search or the planner.
//! Parallel results are bit-identical to serial evaluation — see the
//! determinism contract in [`dcb_fleet`].

use crate::evaluate::{evaluate, Performability};
use dcb_fleet::{CacheStats, EvalCache, FleetPool, Scenario};
use std::sync::OnceLock;

/// The process-wide evaluation pool.
pub fn pool() -> &'static FleetPool {
    static POOL: OnceLock<FleetPool> = OnceLock::new();
    POOL.get_or_init(FleetPool::new)
}

/// The process-wide [`Performability`] memoization cache.
pub fn cache() -> &'static EvalCache<Performability> {
    static CACHE: OnceLock<EvalCache<Performability>> = OnceLock::new();
    CACHE.get_or_init(EvalCache::new)
}

/// Evaluates one scenario through the shared cache: a hit returns the
/// memoized [`Performability`]; a miss simulates and caches it.
#[must_use]
pub fn evaluate_scenario(scenario: &Scenario) -> Performability {
    cache().get_or_compute(scenario.digest(), || {
        evaluate(
            &scenario.cluster,
            &scenario.config,
            &scenario.technique,
            scenario.duration,
        )
    })
}

/// Evaluates a batch of scenarios on the shared pool, preserving input
/// ordering. Each scenario goes through the shared cache, so repeated
/// points cost one simulation process-wide.
///
/// ```
/// use dcb_core::fleet;
/// use dcb_core::{BackupConfig, Cluster, Technique};
/// use dcb_fleet::Scenario;
/// use dcb_units::Seconds;
/// use dcb_workload::Workload;
///
/// let cluster = Cluster::rack(Workload::specjbb());
/// let scenarios: Vec<Scenario> = Technique::catalog()
///     .iter()
///     .map(|t| Scenario::new(&cluster, &BackupConfig::max_perf(), t, Seconds::new(30.0)))
///     .collect();
/// let results = fleet::run_all(&scenarios);
/// assert_eq!(results.len(), scenarios.len());
/// ```
#[must_use]
pub fn run_all(scenarios: &[Scenario]) -> Vec<Performability> {
    pool().run_all(scenarios, evaluate_scenario)
}

/// Hit/miss counters of the shared cache.
#[must_use]
pub fn cache_stats() -> CacheStats {
    cache().stats()
}

/// Drops every memoized evaluation and resets the counters. Benchmarks use
/// this to measure cold-cache behaviour.
pub fn clear_cache() {
    cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_power::BackupConfig;
    use dcb_sim::{Cluster, Technique};
    use dcb_units::Seconds;
    use dcb_workload::Workload;

    #[test]
    fn cached_evaluation_matches_direct() {
        let cluster = Cluster::rack(Workload::specjbb());
        let scenario = Scenario::new(
            &cluster,
            &BackupConfig::no_dg(),
            &Technique::sleep(),
            Seconds::from_minutes(7.0),
        );
        let direct = evaluate(
            &scenario.cluster,
            &scenario.config,
            &scenario.technique,
            scenario.duration,
        );
        assert_eq!(evaluate_scenario(&scenario), direct);
        // Second lookup is answered from the cache and stays identical.
        assert_eq!(evaluate_scenario(&scenario), direct);
    }

    #[test]
    fn run_all_preserves_order() {
        let cluster = Cluster::rack(Workload::specjbb());
        let scenarios: Vec<Scenario> = Technique::catalog()
            .iter()
            .map(|t| Scenario::new(&cluster, &BackupConfig::no_dg(), t, Seconds::new(30.0)))
            .collect();
        let batch = run_all(&scenarios);
        let serial: Vec<Performability> = scenarios.iter().map(evaluate_scenario).collect();
        assert_eq!(batch, serial);
    }
}
