//! The backup infrastructure cost model (§3, Equations 1–2, Table 1).

use dcb_battery::Chemistry;
use dcb_power::BackupConfig;
use dcb_units::{
    contract, DollarsPerKwYear, DollarsPerKwhYear, DollarsPerYear, KilowattHours, Kilowatts,
    Seconds, Watts,
};

/// The per-unit cost parameters of Table 1.
///
/// All rates are already depreciated: 12 years for the DG and the UPS power
/// electronics, 4 years for lead-acid batteries.
///
/// ```
/// use dcb_core::cost::CostParams;
/// let p = CostParams::paper();
/// assert_eq!(p.dg_power.value(), 83.3);
/// assert_eq!(p.ups_energy.value(), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostParams {
    /// Amortized DG cost per kW of rated power (`DGPowerCost`).
    pub dg_power: DollarsPerKwYear,
    /// Amortized UPS power-electronics cost per kW (`UPSPowerCost`).
    pub ups_power: DollarsPerKwYear,
    /// Amortized battery cost per kWh beyond the base capacity
    /// (`UPSEnergyCost`).
    pub ups_energy: DollarsPerKwhYear,
    /// Battery runtime that comes free with the power capacity
    /// (`FreeRunTime`).
    pub free_runtime: Seconds,
}

impl CostParams {
    /// Lead-acid battery lifetime baked into the paper's `$50/kWh/yr`.
    const LEAD_ACID_LIFETIME_YEARS: f64 = 4.0;

    /// Table 1 of the paper.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            dg_power: DollarsPerKwYear::new(83.3),
            ups_power: DollarsPerKwYear::new(50.0),
            ups_energy: DollarsPerKwhYear::new(50.0),
            free_runtime: Seconds::from_minutes(2.0),
        }
    }

    /// Adjusts the battery-energy rate for a chemistry: capital cost scales
    /// by the chemistry's relative $/kWh, depreciation by its lifetime
    /// (the §7 "newer battery technologies" discussion).
    #[must_use]
    pub fn for_chemistry(mut self, chemistry: Chemistry) -> Self {
        let capital_per_kwh = self.ups_energy.value() * Self::LEAD_ACID_LIFETIME_YEARS;
        let adjusted =
            capital_per_kwh * chemistry.relative_energy_cost() / chemistry.lifetime().value();
        self.ups_energy = DollarsPerKwhYear::new(adjusted);
        self.ups_power =
            DollarsPerKwYear::new(self.ups_power.value() * chemistry.relative_power_cost());
        self
    }

    /// Adjusts the UPS rates and free runtime for a placement (§3's
    /// rack-level vs centralized comparison; the tech report's server-level
    /// batteries).
    #[must_use]
    pub fn for_placement(mut self, placement: dcb_power::UpsPlacement) -> Self {
        self.ups_power =
            DollarsPerKwYear::new(self.ups_power.value() * placement.power_cost_factor());
        self.ups_energy =
            DollarsPerKwhYear::new(self.ups_energy.value() * placement.energy_cost_factor());
        self.free_runtime = placement.free_runtime();
        self
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// An itemized yearly backup cost.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostBreakdown {
    /// DG cap-ex (Equation 1).
    pub dg: DollarsPerYear,
    /// UPS power-electronics cap-ex.
    pub ups_power: DollarsPerYear,
    /// Battery energy cap-ex beyond the free base capacity.
    pub ups_energy: DollarsPerYear,
}

impl CostBreakdown {
    /// Total yearly cost.
    #[must_use]
    pub fn total(&self) -> DollarsPerYear {
        self.dg + self.ups_power + self.ups_energy
    }
}

/// The cost model: prices a [`BackupConfig`] for a datacenter of a given
/// peak power.
///
/// ```
/// use dcb_core::cost::CostModel;
/// use dcb_core::BackupConfig;
/// use dcb_units::Kilowatts;
///
/// let model = CostModel::paper();
/// // Table 2 row 1: a 1 MW datacenter with today's backup costs ~$0.13M/yr.
/// let cost = model.annual_cost(&BackupConfig::max_perf(), Kilowatts::from_megawatts(1.0).to_watts());
/// assert!((cost.total().value() - 133_300.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    params: CostParams,
}

impl CostModel {
    /// The paper's Table 1 parameterization.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            params: CostParams::paper(),
        }
    }

    /// A model with custom parameters.
    #[must_use]
    pub fn with_params(params: CostParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Prices `config` for a datacenter with `dc_peak` nameplate power,
    /// applying the configuration's battery chemistry.
    #[must_use]
    pub fn annual_cost(&self, config: &BackupConfig, dc_peak: Watts) -> CostBreakdown {
        let params = self.params.for_chemistry(config.chemistry());
        let peak_kw = dc_peak.to_kilowatts();

        // Equation 1: DGCost = DGPowerCost × DGPowerCapacity.
        let dg_capacity = Kilowatts::new(peak_kw.value() * config.dg_power().value());
        let dg = params.dg_power * dg_capacity;

        // Equation 2: UPSCost = UPSPowerCost × UPSPowerCapacity
        //   + UPSEnergyCost × (UPSEnergyCapacity − UPSPowerCapacity × FreeRunTime).
        let ups_capacity = Kilowatts::new(peak_kw.value() * config.ups_power().value());
        let ups_power = params.ups_power * ups_capacity;
        let energy_capacity =
            KilowattHours::new(ups_capacity.value() * config.ups_runtime().to_hours());
        let free_energy = KilowattHours::new(ups_capacity.value() * params.free_runtime.to_hours());
        let billable = (energy_capacity - free_energy).max(KilowattHours::ZERO);
        let ups_energy = params.ups_energy * billable;

        // A backup-capacity price is a depreciated cap-ex: each component
        // must be a finite, non-negative $/yr.
        contract!(
            dg.value() >= 0.0 && dg.value().is_finite(),
            "DG cost component invalid: {dg}"
        );
        contract!(
            ups_power.value() >= 0.0 && ups_power.value().is_finite(),
            "UPS power cost component invalid: {ups_power}"
        );
        contract!(
            ups_energy.value() >= 0.0 && ups_energy.value().is_finite(),
            "UPS energy cost component invalid: {ups_energy}"
        );
        CostBreakdown {
            dg,
            ups_power,
            ups_energy,
        }
    }

    /// Cost of `config` relative to today's practice (`MaxPerf`) at the
    /// same peak power — the normalization of Table 3 and all the cost
    /// plots.
    ///
    /// Re-prices the baseline on every call; sweeps that normalize many
    /// configurations should hoist a [`Normalizer`] out of the loop
    /// instead (see [`Self::normalizer`]).
    #[must_use]
    pub fn normalized_cost(&self, config: &BackupConfig) -> f64 {
        self.normalizer().normalized_cost(config)
    }

    /// A [`Normalizer`] with this model's `MaxPerf` baseline priced once.
    #[must_use]
    pub fn normalizer(&self) -> Normalizer {
        Normalizer::new(*self)
    }
}

/// A cost normalizer with the `MaxPerf` baseline priced once up front, for
/// sweeps that normalize many configurations against the same model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    model: CostModel,
    reference_peak: Watts,
    baseline: f64,
}

impl Normalizer {
    /// Prices the `MaxPerf` baseline for `model` at the scale-free 1 MW
    /// reference peak.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        let reference_peak = Kilowatts::from_megawatts(1.0).to_watts();
        let baseline = model
            .annual_cost(&BackupConfig::max_perf(), reference_peak)
            .total()
            .value();
        // The MaxPerf baseline divides every normalized cost: it must be a
        // strictly positive, finite dollar figure.
        contract!(
            baseline > 0.0 && baseline.is_finite(),
            "MaxPerf baseline must be positive and finite, got {baseline}"
        );
        Self {
            model,
            reference_peak,
            baseline,
        }
    }

    /// The model this normalizer prices against.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Cost of `config` relative to the precomputed `MaxPerf` baseline.
    #[must_use]
    pub fn normalized_cost(&self, config: &BackupConfig) -> f64 {
        let normalized = self
            .model
            .annual_cost(config, self.reference_peak)
            .total()
            .value()
            / self.baseline;
        contract!(
            normalized >= 0.0 && normalized.is_finite(),
            "normalized cost must be finite and >= 0, got {normalized} for {}",
            config.label()
        );
        normalized
    }

    /// Normalizer idempotence check: the baseline configuration normalizes
    /// to exactly 1 under its own normalizer. `audit sweep` exercises this
    /// for every cost model it touches.
    #[must_use]
    pub fn is_idempotent(&self) -> bool {
        let unit = self.normalized_cost(&BackupConfig::max_perf());
        (unit - 1.0).abs() < 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CostModel {
        CostModel::paper()
    }

    #[test]
    fn table2_row1_one_megawatt_two_minutes() {
        let cost = model().annual_cost(
            &BackupConfig::max_perf(),
            Kilowatts::from_megawatts(1.0).to_watts(),
        );
        assert!((cost.dg.value() - 83_300.0).abs() < 1.0);
        assert!((cost.ups_power.value() - 50_000.0).abs() < 1.0);
        assert!(cost.ups_energy.value().abs() < 1.0, "base energy is free");
        assert!((cost.total().value() - 133_300.0).abs() < 2.0);
    }

    #[test]
    fn table2_row2_ten_megawatts_two_minutes() {
        let cost = model().annual_cost(
            &BackupConfig::max_perf(),
            Kilowatts::from_megawatts(10.0).to_watts(),
        );
        assert!((cost.dg.value() - 833_000.0).abs() < 10.0);
        assert!((cost.total().value() - 1_333_000.0).abs() < 20.0);
    }

    #[test]
    fn table2_row3_ten_megawatts_42_minutes() {
        let config = BackupConfig::custom(
            "42min",
            dcb_units::Fraction::ONE,
            dcb_units::Fraction::ONE,
            Seconds::from_minutes(42.0),
        );
        let cost = model().annual_cost(&config, Kilowatts::from_megawatts(10.0).to_watts());
        // UPS cost ≈ $0.83M/yr; total ≈ $1.66M/yr.
        let ups = cost.ups_power + cost.ups_energy;
        assert!((ups.value() - 833_333.0).abs() < 1_000.0, "ups {}", ups);
        assert!((cost.total().value() - 1_666_333.0).abs() < 1_500.0);
    }

    #[test]
    fn table3_normalized_costs() {
        let m = model();
        let expect = [
            (BackupConfig::max_perf(), 1.00),
            (BackupConfig::min_cost(), 0.00),
            (BackupConfig::no_dg(), 0.38),
            (BackupConfig::no_ups(), 0.63),
            (BackupConfig::dg_small_pups(), 0.81),
            (BackupConfig::small_dg_small_pups(), 0.50),
            (BackupConfig::small_pups(), 0.19),
            (BackupConfig::large_e_ups(), 0.55),
            (BackupConfig::small_p_large_e_ups(), 0.38),
        ];
        for (config, paper_value) in expect {
            let got = m.normalized_cost(&config);
            assert!(
                (got - paper_value).abs() < 0.006,
                "{}: paper {paper_value}, model {got:.4}",
                config.label()
            );
        }
    }

    #[test]
    fn twenty_fold_energy_increase_is_only_24_percent_cost() {
        // §3 observation (ii): 2 min → 42 min (~20×) of UPS energy raises
        // the total cost by just ~24%.
        let m = model();
        let base = m.normalized_cost(&BackupConfig::max_perf());
        let big = m.normalized_cost(&BackupConfig::custom(
            "42min",
            dcb_units::Fraction::ONE,
            dcb_units::Fraction::ONE,
            Seconds::from_minutes(42.0),
        ));
        let increase = big / base - 1.0;
        assert!((increase - 0.25).abs() < 0.02, "increase {increase}");
    }

    #[test]
    fn ups_cheaper_than_dg_below_40_minutes() {
        // §3 observation (iii): for < ~40 min of runtime, UPS battery
        // capacity costs less than the DG it replaces.
        let m = model();
        let dg_cost = m
            .annual_cost(&BackupConfig::no_ups(), Watts::new(1e6))
            .dg
            .value();
        for minutes in [5.0, 20.0, 40.0] {
            let ups_only = BackupConfig::custom(
                "ups",
                dcb_units::Fraction::ZERO,
                dcb_units::Fraction::ONE,
                Seconds::from_minutes(minutes),
            );
            let ups_cost = m.annual_cost(&ups_only, Watts::new(1e6)).total().value();
            assert!(
                ups_cost <= dg_cost * 1.01,
                "{minutes} min UPS (${ups_cost}) should cost <= DG (${dg_cost})"
            );
        }
        // And well above 40 minutes it is no longer cheaper.
        let long = BackupConfig::custom(
            "ups",
            dcb_units::Fraction::ZERO,
            dcb_units::Fraction::ONE,
            Seconds::from_minutes(80.0),
        );
        assert!(m.annual_cost(&long, Watts::new(1e6)).total().value() > dg_cost);
    }

    #[test]
    fn placement_adjusts_rates_and_free_runtime() {
        use dcb_power::UpsPlacement;
        let central = CostParams::paper().for_placement(UpsPlacement::Centralized);
        assert!(central.ups_power.value() > CostParams::paper().ups_power.value());
        assert_eq!(central.free_runtime, Seconds::from_minutes(4.0));
        let server = CostParams::paper().for_placement(UpsPlacement::ServerLevel);
        assert!(server.ups_power.value() < CostParams::paper().ups_power.value());
        assert_eq!(server.free_runtime, Seconds::from_minutes(1.0));
        // Rack level is identity.
        assert_eq!(
            CostParams::paper().for_placement(UpsPlacement::RackLevel),
            CostParams::paper()
        );
    }

    #[test]
    fn rack_level_beats_centralized_for_the_paper_configs() {
        // §3's stated reason rack-level placement won: cost (and efficiency).
        use dcb_power::UpsPlacement;
        let rack = CostModel::paper();
        let central =
            CostModel::with_params(CostParams::paper().for_placement(UpsPlacement::Centralized));
        let peak = Kilowatts::from_megawatts(1.0).to_watts();
        for config in [BackupConfig::no_dg(), BackupConfig::large_e_ups()] {
            assert!(
                central.annual_cost(&config, peak).total()
                    > rack.annual_cost(&config, peak).total(),
                "{}",
                config.label()
            );
        }
    }

    #[test]
    fn lithium_energy_costs_more_per_year() {
        let lead = CostParams::paper();
        let li = CostParams::paper().for_chemistry(Chemistry::LithiumIon);
        assert!(li.ups_energy.value() > lead.ups_energy.value());
        assert!(li.ups_power.value() < lead.ups_power.value());
    }

    proptest! {
        #[test]
        fn cost_linear_in_peak_power(mw in 0.1f64..100.0) {
            let m = model();
            let config = BackupConfig::max_perf();
            let one = m.annual_cost(&config, Kilowatts::from_megawatts(mw).to_watts()).total();
            let two = m.annual_cost(&config, Kilowatts::from_megawatts(2.0 * mw).to_watts()).total();
            prop_assert!((two.value() - 2.0 * one.value()).abs() < 1e-6 * two.value().abs().max(1.0));
        }

        #[test]
        fn cost_monotone_in_runtime(m1 in 2.0f64..500.0, extra in 0.0f64..500.0) {
            let m = model();
            let mk = |mins: f64| BackupConfig::custom(
                "x",
                dcb_units::Fraction::ZERO,
                dcb_units::Fraction::ONE,
                Seconds::from_minutes(mins),
            );
            let a = m.normalized_cost(&mk(m1));
            let b = m.normalized_cost(&mk(m1 + extra));
            prop_assert!(b + 1e-12 >= a);
        }

        #[test]
        fn normalized_cost_nonnegative(dg in 0.0f64..=1.0, ups in 0.0f64..=1.0, mins in 0.0f64..240.0) {
            let config = BackupConfig::custom(
                "x",
                dcb_units::Fraction::new(dg),
                dcb_units::Fraction::new(ups),
                Seconds::from_minutes(mins),
            );
            prop_assert!(model().normalized_cost(&config) >= 0.0);
        }
    }
}
