//! Performability evaluation: cost + performance + availability per
//! (configuration, technique, outage) point.

use crate::cost::{CostModel, Normalizer};
use dcb_fleet::Scenario;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, SimOutcome, Technique};
use dcb_units::Seconds;
use std::sync::OnceLock;

/// The paper cost model's normalizer, priced once per process: every
/// evaluation shares the same `MaxPerf` baseline instead of re-pricing it
/// per point.
fn paper_normalizer() -> &'static Normalizer {
    static NORMALIZER: OnceLock<Normalizer> = OnceLock::new();
    NORMALIZER.get_or_init(|| CostModel::paper().normalizer())
}

/// One point in the cost-performability space: a configuration and
/// technique evaluated against one outage duration.
///
/// `cost` is normalized to today's practice (MaxPerf = 1.0), matching every
/// cost axis in the paper.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Performability {
    /// Label of the evaluated configuration.
    pub config: String,
    /// Name of the technique used during the outage.
    pub technique: String,
    /// Normalized yearly backup cost (MaxPerf = 1).
    pub cost: f64,
    /// The simulated outcome (performance, downtime, feasibility...).
    pub outcome: SimOutcome,
}

impl Performability {
    /// Total lost service time: post-outage downtime plus performance
    /// degradation integrated over the outage — the scalar used to rank
    /// techniques ("the system technique that offers the highest
    /// performance and lowest down time", §6.1). Idle in-outage seconds
    /// count through both terms, weighting hard unavailability above mere
    /// degradation.
    #[must_use]
    pub fn lost_service(&self) -> f64 {
        let o = &self.outcome;
        o.downtime.expected.value() + (1.0 - o.perf_during_outage.value()) * o.outage.value()
    }

    /// Ranking key: state-preserving feasible runs first, then least lost
    /// service.
    fn rank(&self) -> (u8, f64) {
        let class = u8::from(!self.outcome.feasible) + u8::from(self.outcome.state_lost);
        (class, self.lost_service())
    }
}

/// Evaluates the cost-performability of running `technique` on `cluster`
/// backed by `config` through an outage of `duration`.
///
/// ```
/// use dcb_core::evaluate::evaluate;
/// use dcb_core::{BackupConfig, Cluster, Technique};
/// use dcb_units::Seconds;
/// use dcb_workload::Workload;
///
/// let p = evaluate(
///     &Cluster::rack(Workload::specjbb()),
///     &BackupConfig::max_perf(),
///     &Technique::ride_through(),
///     Seconds::from_minutes(5.0),
/// );
/// assert_eq!(p.cost, 1.0);
/// assert!(p.outcome.seamless());
/// ```
#[must_use]
pub fn evaluate(
    cluster: &Cluster,
    config: &BackupConfig,
    technique: &Technique,
    duration: Seconds,
) -> Performability {
    let _prof = dcb_prof::frame("evaluate");
    let outcome = OutageSim::new(*cluster, config.clone(), technique.clone()).run(duration);
    dcb_telemetry::counter!("core.evaluate.scenarios").incr();
    if !outcome.feasible {
        dcb_telemetry::counter!("core.evaluate.infeasible").incr();
    }
    if dcb_trace::enabled() {
        dcb_trace::instant(Some(dcb_trace::micros(duration)), None, || {
            dcb_trace::EventKind::Evaluate {
                config: config.label().to_owned(),
                technique: technique.name().to_owned(),
                feasible: outcome.feasible,
            }
        });
    }
    Performability {
        config: config.label().to_owned(),
        technique: technique.name().to_owned(),
        cost: paper_normalizer().normalized_cost(config),
        outcome,
    }
}

/// The best-ranked point of a non-empty, order-significant slice: ties go
/// to the earliest point, matching the serial `min_by` reference.
fn pick_best(points: &[Performability]) -> &Performability {
    let better = |a: &Performability, b: &Performability| {
        let (ca, la) = a.rank();
        let (cb, lb) = b.rank();
        ca.cmp(&cb).then_with(|| la.total_cmp(&lb)).is_le()
    };
    let mut best = points
        .first()
        // dcb-audit: allow(panic-site, callers assert non-empty catalogs; documented `# Panics`)
        .expect("technique catalog must not be empty");
    for point in &points[1..] {
        if !better(best, point) {
            best = point;
        }
    }
    best
}

/// Evaluates every technique in `catalog` and returns the best one for the
/// configuration — the per-point selection behind Figure 5 ("For each
/// backup configuration, we choose the system technique that offers the
/// highest performance and lowest down time").
///
/// Candidates fan out over the shared [`crate::fleet`] pool and memoize in
/// its cache; ties resolve to the earliest catalog entry, exactly as the
/// serial reference would.
///
/// # Panics
///
/// Panics if `catalog` is empty.
#[must_use]
pub fn best_technique(
    cluster: &Cluster,
    config: &BackupConfig,
    duration: Seconds,
    catalog: &[Technique],
) -> Performability {
    assert!(!catalog.is_empty(), "technique catalog must not be empty");
    let scenarios: Vec<Scenario> = catalog
        .iter()
        .map(|t| Scenario::new(cluster, config, t, duration))
        .collect();
    pick_best(&crate::fleet::run_all(&scenarios)).clone()
}

/// A full configuration × duration sweep with best-technique selection:
/// the data behind Figure 5 (and its per-workload variants).
///
/// The whole configuration × duration × technique grid is flattened into
/// one batch for the shared [`crate::fleet`] pool — parallelism spans the
/// full sweep, not one point at a time — then each point's best technique
/// is selected from its contiguous chunk. Cost normalization is priced
/// once per process (see [`Normalizer`]), not once per grid point.
///
/// # Panics
///
/// Panics if `catalog` is empty.
#[must_use]
pub fn sweep_configs(
    cluster: &Cluster,
    configs: &[BackupConfig],
    durations: &[Seconds],
    catalog: &[Technique],
) -> Vec<Performability> {
    assert!(!catalog.is_empty(), "technique catalog must not be empty");
    let _span = dcb_telemetry::span("sweep_configs");
    let _prof = dcb_prof::frame("sweep_configs");
    let mut scenarios = Vec::with_capacity(configs.len() * durations.len() * catalog.len());
    for config in configs {
        for &duration in durations {
            for technique in catalog {
                scenarios.push(Scenario::new(cluster, config, technique, duration));
            }
        }
    }
    let evaluated = crate::fleet::run_all(&scenarios);
    let mut rows = Vec::with_capacity(configs.len() * durations.len());
    for point in evaluated.chunks(catalog.len()) {
        rows.push(pick_best(point).clone());
    }
    rows
}

/// Evaluates every technique in `catalog` against one configuration — the
/// per-technique comparison of Figures 6–9 at a fixed backup. Runs as one
/// batch on the shared [`crate::fleet`] pool, rows in technique-major
/// order.
#[must_use]
pub fn sweep_techniques(
    cluster: &Cluster,
    config: &BackupConfig,
    durations: &[Seconds],
    catalog: &[Technique],
) -> Vec<Performability> {
    let _span = dcb_telemetry::span("sweep_techniques");
    let _prof = dcb_prof::frame("sweep_techniques");
    let mut scenarios = Vec::with_capacity(catalog.len() * durations.len());
    for technique in catalog {
        for &duration in durations {
            scenarios.push(Scenario::new(cluster, config, technique, duration));
        }
    }
    crate::fleet::run_all(&scenarios)
}

/// The outage durations the paper's Figure 5/6 panels use.
#[must_use]
pub fn paper_durations() -> Vec<Seconds> {
    [0.5, 5.0, 30.0, 60.0, 120.0]
        .into_iter()
        .map(Seconds::from_minutes)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn cluster() -> Cluster {
        Cluster::rack(Workload::specjbb())
    }

    #[test]
    fn max_perf_best_technique_is_seamless() {
        let p = best_technique(
            &cluster(),
            &BackupConfig::max_perf(),
            Seconds::from_minutes(30.0),
            &Technique::catalog(),
        );
        assert!(p.outcome.seamless(), "chose {}", p.technique);
        assert!(p.outcome.perf_during_outage.value() > 0.99);
    }

    #[test]
    fn best_technique_prefers_state_preservation() {
        // On a tiny battery and a long outage, the chosen technique must
        // preserve state (sleep/hibernate family), not crash.
        let p = best_technique(
            &cluster(),
            &BackupConfig::small_pups(),
            Seconds::from_minutes(30.0),
            &Technique::catalog(),
        );
        assert!(!p.outcome.state_lost, "chose {}", p.technique);
    }

    #[test]
    fn no_dg_short_outage_prefers_sustain_execution() {
        // 2-minute battery, 30 s outage: throttling (or riding through)
        // beats sleeping.
        let p = best_technique(
            &cluster(),
            &BackupConfig::no_dg(),
            Seconds::new(30.0),
            &Technique::catalog(),
        );
        assert!(
            p.outcome.perf_during_outage.value() > 0.4,
            "chose {} with perf {:?}",
            p.technique,
            p.outcome.perf_during_outage
        );
        assert!(p.outcome.seamless());
    }

    #[test]
    fn sweep_shapes() {
        let rows = sweep_configs(
            &cluster(),
            &[BackupConfig::max_perf(), BackupConfig::min_cost()],
            &[Seconds::new(30.0), Seconds::from_minutes(5.0)],
            &Technique::catalog(),
        );
        assert_eq!(rows.len(), 4);
        let rows = sweep_techniques(
            &cluster(),
            &BackupConfig::no_dg(),
            &[Seconds::new(30.0)],
            &Technique::catalog(),
        );
        assert_eq!(rows.len(), Technique::catalog().len());
    }

    #[test]
    fn lost_service_orders_sensibly() {
        let seamless = evaluate(
            &cluster(),
            &BackupConfig::max_perf(),
            &Technique::ride_through(),
            Seconds::from_minutes(5.0),
        );
        let crashed = evaluate(
            &cluster(),
            &BackupConfig::min_cost(),
            &Technique::crash(),
            Seconds::from_minutes(5.0),
        );
        assert!(seamless.lost_service() < crashed.lost_service());
    }
}
