//! NVDIMM cost accounting for the §7 enhancement.
//!
//! NVDIMMs (supercapacitor-backed DRAM + NAND flash in the DIMM socket)
//! persist volatile state on power failure with no external backup power —
//! but they carry a capital premium over plain DRAM. This module prices
//! that premium so NVDIMM-based outage handling can be compared on the same
//! normalized-cost axis as the UPS/DG configurations: the cost of a
//! provisioning choice becomes *backup infrastructure + NVDIMM premium*.

use crate::cost::CostModel;
use crate::evaluate::Performability;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, Technique};
use dcb_units::{DollarsPerYear, Seconds};

/// Pricing for the NVDIMM premium.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NvdimmCost {
    /// Amortized premium over plain DRAM, `$ / GB / year`.
    pub premium_per_gb_year: f64,
}

impl NvdimmCost {
    /// Default pricing: an ~$8/GB capital premium over DRAM at the paper's
    /// timeframe, depreciated over a 4-year server lifetime → $2/GB/yr.
    #[must_use]
    pub fn paper_era() -> Self {
        Self {
            premium_per_gb_year: 2.0,
        }
    }

    /// Yearly premium for equipping a cluster with enough NVDIMM capacity
    /// to hold its workload's volatile state.
    #[must_use]
    pub fn cluster_premium(&self, cluster: &Cluster) -> DollarsPerYear {
        let per_server = cluster.workload().memory_footprint().value() * self.premium_per_gb_year;
        DollarsPerYear::new(per_server * f64::from(cluster.size()))
    }

    /// Premium normalized against the MaxPerf backup cost of the same
    /// cluster (so it composes with [`CostModel::normalized_cost`]).
    #[must_use]
    pub fn normalized_premium(&self, cluster: &Cluster) -> f64 {
        let baseline = CostModel::paper()
            .annual_cost(&BackupConfig::max_perf(), cluster.peak_power())
            .total();
        if baseline.value() <= 0.0 {
            return 0.0;
        }
        self.cluster_premium(cluster).value() / baseline.value()
    }
}

impl Default for NvdimmCost {
    fn default() -> Self {
        Self::paper_era()
    }
}

/// Evaluates an NVDIMM-equipped cluster: like
/// [`crate::evaluate::evaluate`], but the reported normalized cost includes
/// the NVDIMM premium on top of the backup infrastructure.
#[must_use]
pub fn evaluate_with_nvdimm(
    cluster: &Cluster,
    config: &BackupConfig,
    technique: &Technique,
    duration: Seconds,
    pricing: &NvdimmCost,
) -> Performability {
    let outcome = OutageSim::new(*cluster, config.clone(), technique.clone()).run(duration);
    Performability {
        config: format!("{} + NVDIMM", config.label()),
        technique: technique.name().to_owned(),
        cost: CostModel::paper().normalized_cost(config) + pricing.normalized_premium(cluster),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn cluster() -> Cluster {
        Cluster::rack(Workload::specjbb())
    }

    #[test]
    fn premium_scales_with_state_and_cluster() {
        let pricing = NvdimmCost::paper_era();
        // 16 servers × 18 GB × $2/GB/yr = $576/yr.
        assert!((pricing.cluster_premium(&cluster()).value() - 576.0).abs() < 1e-9);
        let bigger = Cluster::rack(Workload::web_search());
        assert!(pricing.cluster_premium(&bigger) > pricing.cluster_premium(&cluster()));
    }

    #[test]
    fn normalized_premium_is_substantial_at_rack_scale() {
        // Rack baseline backup (MaxPerf for 4 kW) is only ~$533/yr, so the
        // NVDIMM premium actually *exceeds* it — the §7 trade-off is real.
        let p = NvdimmCost::paper_era().normalized_premium(&cluster());
        assert!(p > 0.5, "premium {p}");
    }

    #[test]
    fn nvdimm_with_no_backup_beats_mincost_on_state() {
        let p = evaluate_with_nvdimm(
            &cluster(),
            &BackupConfig::min_cost(),
            &Technique::nvdimm(),
            Seconds::from_minutes(30.0),
            &NvdimmCost::paper_era(),
        );
        assert!(!p.outcome.state_lost);
        assert!(p.cost > 0.0, "premium must show up in the cost");
        assert!(p.config.contains("NVDIMM"));
    }

    #[test]
    fn premium_normalization_scale_free_check() {
        // Premium normalized against a 10 MW datacenter baseline is tiny.
        let dc = Cluster::new(40_000, *cluster().spec(), *cluster().workload());
        let p = NvdimmCost::paper_era().normalized_premium(&dc);
        // Same ratio as the rack: premium is proportional to servers, and
        // so is the baseline.
        let rack = NvdimmCost::paper_era().normalized_premium(&cluster());
        assert!((p - rack).abs() < 1e-9);
    }
}
