//! Capacity planning for heterogeneous applications (§7).
//!
//! "Multiple datacenters or sections in a datacenter could have different
//! backup configurations, in the spectrum of cost-performability choices we
//! outlined. Capacity planning could depend on historic data about multiple
//! application requirements and cost preferences." This module sizes a
//! separate backup configuration per application section, each against its
//! own performability SLO, and reports the blended savings versus
//! provisioning today's full backup everywhere.

use crate::cost::CostModel;
use crate::fleet;
use crate::sizing::{min_cost_ups, SizedPoint, SizingTargets};
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, Technique};
use dcb_units::{DollarsPerYear, Seconds, Watts};

/// A per-application service-level objective for outage handling.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Slo {
    /// The outage duration the section must survive.
    pub cover_outage: Seconds,
    /// Acceptance criteria within that outage.
    pub targets: SizingTargets,
}

impl Slo {
    /// Survive the given outage with state preserved; performance and
    /// downtime unconstrained.
    #[must_use]
    pub fn survive(cover_outage: Seconds) -> Self {
        Self {
            cover_outage,
            targets: SizingTargets::execute_to_plan(),
        }
    }

    /// Survive with a minimum performance level during the outage.
    #[must_use]
    pub fn with_min_perf(mut self, min_perf: f64) -> Self {
        self.targets.min_perf = Some(min_perf);
        self
    }

    /// Survive with a maximum downtime.
    #[must_use]
    pub fn with_max_downtime(mut self, max_downtime: Seconds) -> Self {
        self.targets.max_downtime = Some(max_downtime);
        self
    }
}

/// The chosen provisioning for one application section.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanEntry {
    /// The section's workload name.
    pub workload: String,
    /// The technique the section will execute during outages.
    pub technique: String,
    /// The chosen technique itself (absent for unsatisfiable sections).
    pub chosen_technique: Option<Technique>,
    /// The sized configuration and its evaluation, or `None` if no
    /// candidate met the SLO.
    pub point: Option<SizedPoint>,
    /// Absolute yearly cost of the chosen configuration for this section.
    pub yearly_cost: DollarsPerYear,
    /// Yearly cost had the section used today's full backup (MaxPerf).
    pub max_perf_cost: DollarsPerYear,
}

/// The full heterogeneous plan.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Plan {
    /// Per-section choices.
    pub entries: Vec<PlanEntry>,
}

impl Plan {
    /// Whether every section found a satisfying configuration.
    #[must_use]
    pub fn fully_satisfied(&self) -> bool {
        self.entries.iter().all(|e| e.point.is_some())
    }

    /// Total yearly cost across satisfied sections.
    #[must_use]
    pub fn total_cost(&self) -> DollarsPerYear {
        self.entries.iter().map(|e| e.yearly_cost).sum()
    }

    /// Total cost had every section provisioned MaxPerf.
    #[must_use]
    pub fn max_perf_cost(&self) -> DollarsPerYear {
        self.entries.iter().map(|e| e.max_perf_cost).sum()
    }

    /// Blended savings fraction versus provisioning MaxPerf everywhere.
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        let baseline = self.max_perf_cost();
        if !baseline.is_positive() {
            return 0.0;
        }
        1.0 - self.total_cost() / baseline
    }
}

/// Plans one section: tries every technique in `catalog`, sizes each, and
/// keeps the cheapest satisfying choice. Candidate techniques fan out over
/// the shared [`crate::fleet`] pool (the nested per-technique sizing
/// searches run inline on their workers); ties resolve to the earliest
/// catalog entry, as in the serial reference.
#[must_use]
pub fn plan_section(cluster: &Cluster, slo: &Slo, catalog: &[Technique]) -> PlanEntry {
    let model = CostModel::paper();
    let peak: Watts = cluster.peak_power();
    let max_perf_cost = model.annual_cost(&BackupConfig::max_perf(), peak).total();
    let sized = fleet::pool().run_all(catalog, |technique| {
        min_cost_ups(cluster, technique, slo.cover_outage, &slo.targets).map(|point| {
            let cost = model.annual_cost(&point.config, peak).total();
            (cost, point)
        })
    });
    let mut best: Option<(DollarsPerYear, Technique, SizedPoint)> = None;
    for (technique, candidate) in catalog.iter().zip(sized) {
        if let Some((cost, point)) = candidate {
            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best = Some((cost, technique.clone(), point));
            }
        }
    }
    match best {
        Some((cost, technique, point)) => PlanEntry {
            workload: cluster.workload().kind().to_string(),
            technique: technique.name().to_owned(),
            chosen_technique: Some(technique),
            point: Some(point),
            yearly_cost: cost,
            max_perf_cost,
        },
        None => PlanEntry {
            workload: cluster.workload().kind().to_string(),
            technique: "unsatisfiable".to_owned(),
            chosen_technique: None,
            point: None,
            // Fall back to full provisioning for unsatisfiable sections.
            yearly_cost: max_perf_cost,
            max_perf_cost,
        },
    }
}

/// Plans every section, fanning sections out over the shared
/// [`crate::fleet`] pool. Entries stay in section order.
#[must_use]
pub fn plan(sections: &[(Cluster, Slo)], catalog: &[Technique]) -> Plan {
    Plan {
        entries: fleet::pool().run_all(sections, |(cluster, slo)| {
            plan_section(cluster, slo, catalog)
        }),
    }
}

/// Materializes a plan into a simulatable [`dcb_sim::Datacenter`]:
/// satisfied sections carry their sized configuration and chosen technique;
/// unsatisfiable sections fall back to today's MaxPerf + ride-through.
///
/// # Panics
///
/// Panics if `sections` and `plan` have different lengths (the plan must
/// come from these sections).
#[must_use]
pub fn to_datacenter(sections: &[(Cluster, Slo)], plan: &Plan) -> dcb_sim::Datacenter {
    assert_eq!(
        sections.len(),
        plan.entries.len(),
        "plan does not match the section list"
    );
    let mut dc = dcb_sim::Datacenter::new();
    for ((cluster, _), entry) in sections.iter().zip(&plan.entries) {
        let (config, technique) = match (&entry.point, &entry.chosen_technique) {
            (Some(point), Some(technique)) => (point.config.clone(), technique.clone()),
            _ => (BackupConfig::max_perf(), Technique::ride_through()),
        };
        dc = dc.with_section(entry.workload.clone(), *cluster, config, technique);
    }
    dc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn small_catalog() -> Vec<Technique> {
        vec![
            Technique::ride_through(),
            Technique::throttle_deepest(),
            Technique::sleep_l(),
        ]
    }

    #[test]
    fn single_section_plan_is_cheaper_than_max_perf() {
        let sections = vec![(
            Cluster::rack(Workload::memcached()),
            Slo::survive(Seconds::from_minutes(10.0)),
        )];
        let plan = plan(&sections, &small_catalog());
        assert!(plan.fully_satisfied());
        assert!(
            plan.savings_fraction() > 0.3,
            "savings {}",
            plan.savings_fraction()
        );
    }

    #[test]
    fn stricter_slo_costs_at_least_as_much() {
        let cluster = Cluster::rack(Workload::specjbb());
        let lax = plan_section(
            &cluster,
            &Slo::survive(Seconds::from_minutes(10.0)),
            &small_catalog(),
        );
        let strict = plan_section(
            &cluster,
            &Slo::survive(Seconds::from_minutes(10.0)).with_min_perf(0.9),
            &small_catalog(),
        );
        assert!(strict.yearly_cost >= lax.yearly_cost);
    }

    #[test]
    fn impossible_slo_falls_back_to_max_perf() {
        let cluster = Cluster::rack(Workload::specjbb());
        // Zero downtime and full performance for a 2 h outage cannot be met
        // by a UPS-only configuration from this catalog at full load...
        let slo = Slo::survive(Seconds::from_hours(12.0))
            .with_min_perf(1.0)
            .with_max_downtime(Seconds::ZERO);
        let entry = plan_section(&cluster, &slo, &small_catalog());
        assert!(entry.point.is_none());
        assert_eq!(entry.yearly_cost, entry.max_perf_cost);
    }

    #[test]
    fn plan_materializes_into_a_working_datacenter() {
        let sections = vec![
            (
                Cluster::rack(Workload::web_search()),
                Slo::survive(Seconds::from_minutes(20.0)).with_min_perf(0.4),
            ),
            (
                Cluster::rack(Workload::memcached()),
                Slo::survive(Seconds::from_minutes(20.0)),
            ),
        ];
        let the_plan = plan(&sections, &small_catalog());
        let dc = to_datacenter(&sections, &the_plan);
        // The planned datacenter must honor every SLO under the planned
        // outage.
        let outcome = dc.run(Seconds::from_minutes(20.0));
        assert!(outcome.all_feasible);
        assert_eq!(outcome.sections_losing_state, 0);
        // The web-search section keeps serving at >= its SLO floor.
        assert!(outcome.sections[0].1.perf_during_outage.value() >= 0.4);
    }

    #[test]
    fn heterogeneous_sections_pick_different_techniques() {
        let sections = vec![
            (
                Cluster::rack(Workload::memcached()),
                Slo::survive(Seconds::from_minutes(30.0)).with_min_perf(0.4),
            ),
            (
                Cluster::rack(Workload::spec_cpu()),
                Slo::survive(Seconds::from_minutes(30.0)),
            ),
        ];
        let plan = plan(&sections, &small_catalog());
        assert!(plan.fully_satisfied());
        assert_eq!(plan.entries.len(), 2);
    }
}
