//! `dcb-core` — the backup-power underprovisioning framework of
//! *Underprovisioning Backup Power Infrastructure for Datacenters*
//! (Wang et al., ASPLOS 2014).
//!
//! The paper's contribution is a **framework to quantify the cost of backup
//! capacity and evaluate the cost / performance / availability
//! ("performability") trade-offs of underprovisioning it**, together with
//! outage-handling techniques that operate within a reduced capacity. This
//! crate implements that framework on top of the substrate crates:
//!
//! * [`cost`] — the cap-ex model of §3 (Equations 1–2, Table 1) pricing any
//!   [`dcb_power::BackupConfig`], including the Li-ion variant of §7;
//! * [`evaluate`] — runs the outage simulator and reduces its outcomes to
//!   [`evaluate::Performability`] points; sweeps configurations ×
//!   techniques × outage durations (Figures 5–9); selects the best
//!   technique per configuration as §6.1 does;
//! * [`sizing`] — finds the **minimum-cost UPS** (power × energy) that
//!   makes a given technique feasible for a given outage (the cost bars of
//!   Figure 6);
//! * [`tco`] — the revenue-loss versus DG-savings analysis of §7
//!   (Figure 10), with the Google-2011 parameterization;
//! * [`online`] — the §7 adaptive controller for outages of *unknown*
//!   duration, driven by the Markov duration predictor of `dcb-outage`;
//! * [`availability`] — Monte-Carlo yearly availability analysis (downtime
//!   distribution, "nines", state-loss rate) over sampled outage traces
//!   with battery recharge between back-to-back outages;
//! * [`planner`] — capacity planning for heterogeneous applications with
//!   per-application performability targets (§7);
//! * [`fleet`] — the process-wide parallel execution layer: every sweep,
//!   sizing search, plan, and availability analysis routes through a shared
//!   deterministic [`dcb_fleet::FleetPool`] and a [`dcb_fleet::EvalCache`]
//!   memoizing evaluated scenarios, with results bit-identical to serial;
//! * [`nvdimm`] and [`geo`] — the remaining §7 enhancements: NVDIMM
//!   persistence priced against its DRAM premium, and geo-replication
//!   failover backstopping long outages.
//!
//! Re-exported for convenience: the Table 3 configuration catalogue
//! ([`BackupConfig`]), the technique catalogue ([`Technique`]), and the
//! simulator types.
//!
//! # Examples
//!
//! ```
//! use dcb_core::cost::CostModel;
//! use dcb_core::BackupConfig;
//!
//! let model = CostModel::paper();
//! // Eliminating the DG keeps only 38% of today's backup cost (Table 3).
//! let ratio = model.normalized_cost(&BackupConfig::no_dg());
//! assert!((ratio - 0.38).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod capping;
pub mod cost;
pub mod evaluate;
pub mod fleet;
pub mod geo;
pub mod nvdimm;
pub mod online;
pub mod planner;
pub mod sizing;
pub mod tco;
pub mod technique;
pub mod tier;

pub use dcb_power::BackupConfig;
pub use dcb_sim::{Cluster, OutageSim, SimOutcome, Technique};
