//! Dual-use batteries: peak shaving versus backup readiness.
//!
//! The related work the paper builds on (§2) underprovisions the *normal*
//! power infrastructure and shaves peaks from stored energy
//! \[9, 27, 29, 34, 63\]; the paper underprovisions the *backup*. An
//! operator who does both from the same rack batteries faces a conflict the
//! paper's conclusion points at as future work: every joule spent shaving
//! the evening peak is a joule the backup does not have if the outage
//! arrives right then. This module simulates a diurnal day of peak shaving
//! over a [`dcb_battery::Battery`] and reports the battery's
//! *backup-readiness profile* — state of charge by hour — plus the fraction
//! of the day the charge would be too low to ride a target outage.

use dcb_battery::Battery;
use dcb_power::BackupConfig;
use dcb_sim::Cluster;
use dcb_units::{Fraction, Seconds, WattHours, Watts};

/// A peak-shaving policy: the utility feed is provisioned below the
/// cluster's peak draw and the battery supplies the excess.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeakShaving {
    /// Provisioned utility power as a fraction of the cluster's *peak
    /// load* (not nameplate): 1.0 disables shaving.
    pub utility_cap: Fraction,
}

/// The outcome of one simulated day of dual-use operation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DualUseDay {
    /// Energy the battery supplied for shaving over the day.
    pub shaved_energy: WattHours,
    /// Lowest state of charge reached.
    pub min_charge: Fraction,
    /// State of charge sampled hourly (24 samples, hour 0 first).
    pub hourly_charge: Vec<Fraction>,
    /// Fraction of the day during which the charge was below
    /// `readiness_threshold`.
    pub unready_fraction: Fraction,
    /// The charge threshold used for readiness.
    pub readiness_threshold: Fraction,
    /// Battery wear over the day, in equivalent full cycles.
    pub cycles: f64,
}

impl PeakShaving {
    /// Creates a policy.
    #[must_use]
    pub fn new(utility_cap: Fraction) -> Self {
        Self { utility_cap }
    }

    /// Simulates one day (1-minute steps) of a diurnal cluster shaving
    /// peaks from the backup battery of `config`, and evaluates readiness
    /// against riding an outage of `target_outage` at the instantaneous
    /// load (the charge fraction that ride-through would need).
    ///
    /// The cluster's workload must carry a [`dcb_workload::LoadProfile`]
    /// for the day to have any shape; a constant profile either never or
    /// always shaves.
    ///
    /// # Panics
    ///
    /// Panics if `config` provisions no UPS.
    #[must_use]
    pub fn simulate_day(
        &self,
        cluster: &Cluster,
        config: &BackupConfig,
        target_outage: Seconds,
    ) -> DualUseDay {
        let system = config.instantiate(cluster.peak_power());
        // dcb-audit: allow(panic-site, precondition documented under `# Panics`)
        let ups = system.ups().expect("dual-use analysis needs a UPS");
        let pack = ups.pack();
        let mut battery = Battery::full(pack);

        let spec = cluster.spec();
        let n = f64::from(cluster.size());
        let load_at = |t: Seconds| -> Watts {
            spec.active_power(
                dcb_server::ThrottleLevel::NONE,
                cluster.workload().utilization_at(t),
            ) * n
        };
        // Peak load over the day defines the utility cap in watts.
        let peak_load = (0..24 * 60)
            .map(|m| load_at(Seconds::from_minutes(f64::from(m))))
            .fold(Watts::ZERO, Watts::max);
        let cap = peak_load * self.utility_cap.value();

        // Readiness: the charge needed to carry the peak load for the
        // target outage, per the pack's Peukert runtime.
        let full_runtime = pack.runtime_at(peak_load);
        let readiness_threshold = if full_runtime.value().is_finite() && full_runtime.value() > 0.0
        {
            Fraction::new(target_outage.value() / full_runtime.value())
        } else {
            Fraction::ONE
        };

        let step = Seconds::from_minutes(1.0);
        let mut shaved = WattHours::ZERO;
        let mut min_charge = Fraction::ONE;
        let mut hourly = Vec::with_capacity(24);
        let mut unready_minutes = 0u32;
        for minute in 0..(24 * 60) {
            let t = Seconds::from_minutes(f64::from(minute));
            if minute % 60 == 0 {
                hourly.push(battery.charge());
            }
            let load = load_at(t);
            if load > cap {
                let outcome = battery.draw(load - cap, step);
                shaved += outcome.energy_delivered;
            } else {
                battery.recharge_for(step);
            }
            min_charge = min_charge.min(battery.charge());
            if battery.charge() < readiness_threshold {
                unready_minutes += 1;
            }
        }
        DualUseDay {
            shaved_energy: shaved,
            min_charge,
            hourly_charge: hourly,
            unready_fraction: Fraction::new(f64::from(unready_minutes) / (24.0 * 60.0)),
            readiness_threshold,
            cycles: battery.equivalent_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::{LoadProfile, Workload};

    fn diurnal_cluster() -> Cluster {
        let workload = Workload::web_search()
            .with_load_profile(LoadProfile::typical_diurnal(Fraction::new(0.9)));
        Cluster::rack(workload)
    }

    #[test]
    fn no_cap_means_always_ready() {
        let day = PeakShaving::new(Fraction::ONE).simulate_day(
            &diurnal_cluster(),
            &BackupConfig::large_e_ups(),
            Seconds::from_minutes(5.0),
        );
        assert_eq!(day.shaved_energy, WattHours::ZERO);
        assert_eq!(day.min_charge, Fraction::ONE);
        assert_eq!(day.unready_fraction, Fraction::ZERO);
        assert_eq!(day.hourly_charge.len(), 24);
        assert_eq!(day.cycles, 0.0);
    }

    #[test]
    fn deeper_caps_shave_more_and_drain_deeper() {
        let cluster = diurnal_cluster();
        let config = BackupConfig::large_e_ups();
        let outage = Seconds::from_minutes(5.0);
        let mild = PeakShaving::new(Fraction::new(0.95)).simulate_day(&cluster, &config, outage);
        let deep = PeakShaving::new(Fraction::new(0.85)).simulate_day(&cluster, &config, outage);
        assert!(deep.shaved_energy > mild.shaved_energy);
        assert!(deep.min_charge <= mild.min_charge);
        assert!(deep.cycles > mild.cycles);
    }

    #[test]
    fn aggressive_shaving_on_a_small_battery_breaks_readiness() {
        // A 2-minute pack asked to shave 15% of peak spends part of the day
        // below the charge needed to ride even a 5-minute outage — the
        // dual-use conflict, quantified.
        let day = PeakShaving::new(Fraction::new(0.85)).simulate_day(
            &diurnal_cluster(),
            &BackupConfig::no_dg(),
            Seconds::from_minutes(5.0),
        );
        assert!(
            day.unready_fraction.value() > 0.05,
            "unready {:?}",
            day.unready_fraction
        );
        // While a 30-minute pack shrugs it off.
        let big = PeakShaving::new(Fraction::new(0.85)).simulate_day(
            &diurnal_cluster(),
            &BackupConfig::large_e_ups(),
            Seconds::from_minutes(5.0),
        );
        assert!(big.unready_fraction < day.unready_fraction);
    }

    #[test]
    fn daily_shaving_wear_dwarfs_backup_wear() {
        // The paper's §2 wear asymmetry, quantified from the other side:
        // daily shaving cycles the battery every single day, while backup
        // duty costs a few cycles a year.
        let day = PeakShaving::new(Fraction::new(0.9)).simulate_day(
            &diurnal_cluster(),
            &BackupConfig::no_dg(),
            Seconds::from_minutes(5.0),
        );
        let yearly_shaving_cycles = day.cycles * 365.0;
        assert!(
            yearly_shaving_cycles > 50.0,
            "shaving only {yearly_shaving_cycles:.1} cycles/yr"
        );
    }

    #[test]
    #[should_panic(expected = "needs a UPS")]
    fn no_ups_rejected() {
        let _ = PeakShaving::new(Fraction::new(0.9)).simulate_day(
            &diurnal_cluster(),
            &BackupConfig::min_cost(),
            Seconds::from_minutes(5.0),
        );
    }
}
