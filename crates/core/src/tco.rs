//! Total-cost-of-ownership analysis: revenue loss versus DG savings (§7,
//! Figure 10).

use crate::cost::CostParams;

/// The TCO model of §7: during an outage the operator loses revenue and
/// wastes server depreciation; not provisioning DGs saves their amortized
/// cost. The break-even yearly outage duration tells an organization
/// whether skipping the DG is profitable.
///
/// ```
/// use dcb_core::tco::TcoModel;
///
/// let google = TcoModel::google_2011();
/// // The paper: "the cross-over point ... turns out to be around 5 hours
/// // per year".
/// let breakeven_hours = google.breakeven_minutes_per_year() / 60.0;
/// assert!((breakeven_hours - 5.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TcoModel {
    /// Revenue lost per kW of datacenter capacity per minute of outage.
    pub revenue_per_kw_min: f64,
    /// Server capital depreciation wasted per kW per minute of outage.
    pub depreciation_per_kw_min: f64,
    /// Amortized DG cost saved per kW per year by not provisioning it.
    pub dg_cost_per_kw_year: f64,
}

impl TcoModel {
    /// Minutes in a year.
    const MINUTES_PER_YEAR: f64 = 365.0 * 24.0 * 60.0;

    /// The paper's Google-2011 parameterization: 260 MW of datacenter
    /// capacity \[31\], $38 B revenue \[25\] (conservatively all attributed to
    /// datacenters), $2000 servers depreciated over 4 years at ~250 W each,
    /// and the Table 1 DG cost.
    #[must_use]
    pub fn google_2011() -> Self {
        Self::from_organization(38e9, 260_000.0, 2_000.0, 4.0, 250.0)
    }

    /// Builds the model from raw organizational figures.
    ///
    /// # Panics
    ///
    /// Panics if any figure is non-positive.
    #[must_use]
    pub fn from_organization(
        yearly_revenue_dollars: f64,
        capacity_kw: f64,
        server_cost_dollars: f64,
        server_lifetime_years: f64,
        server_power_watts: f64,
    ) -> Self {
        assert!(
            yearly_revenue_dollars > 0.0
                && capacity_kw > 0.0
                && server_cost_dollars > 0.0
                && server_lifetime_years > 0.0
                && server_power_watts > 0.0,
            "all organizational figures must be positive"
        );
        let revenue_per_kw_min = yearly_revenue_dollars / capacity_kw / Self::MINUTES_PER_YEAR;
        let servers_per_kw = 1000.0 / server_power_watts;
        let depreciation_per_kw_min =
            server_cost_dollars * servers_per_kw / server_lifetime_years / Self::MINUTES_PER_YEAR;
        Self {
            revenue_per_kw_min,
            depreciation_per_kw_min,
            dg_cost_per_kw_year: CostParams::paper().dg_power.value(),
        }
    }

    /// Combined loss rate per kW-minute of unavailability.
    #[must_use]
    pub fn loss_per_kw_min(&self) -> f64 {
        self.revenue_per_kw_min + self.depreciation_per_kw_min
    }

    /// Yearly outage cost (`$/kW/year`) for a given yearly outage duration
    /// — the rising line of Figure 10.
    #[must_use]
    pub fn outage_cost_per_kw_year(&self, outage_minutes_per_year: f64) -> f64 {
        self.loss_per_kw_min() * outage_minutes_per_year.max(0.0)
    }

    /// The horizontal "Cost of DG" line of Figure 10.
    #[must_use]
    pub fn dg_savings_per_kw_year(&self) -> f64 {
        self.dg_cost_per_kw_year
    }

    /// Yearly outage minutes at which the outage cost equals the DG
    /// savings — left of this, underprovisioning is profitable.
    #[must_use]
    pub fn breakeven_minutes_per_year(&self) -> f64 {
        self.dg_cost_per_kw_year / self.loss_per_kw_min()
    }

    /// Whether skipping the DG is profitable at a given yearly outage
    /// duration.
    #[must_use]
    pub fn profitable_without_dg(&self, outage_minutes_per_year: f64) -> bool {
        self.outage_cost_per_kw_year(outage_minutes_per_year) < self.dg_savings_per_kw_year()
    }

    /// The Figure 10 curve: `(minutes/year, loss $/kW/year)` samples from 0
    /// to `max_minutes`.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    #[must_use]
    pub fn curve(&self, max_minutes: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a curve needs at least two points");
        (0..points)
            .map(|i| {
                let minutes = max_minutes * i as f64 / (points - 1) as f64;
                (minutes, self.outage_cost_per_kw_year(minutes))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn google_revenue_rate_matches_paper() {
        // §7: "$0.28/KW/min".
        let m = TcoModel::google_2011();
        assert!(
            (m.revenue_per_kw_min - 0.28).abs() < 0.005,
            "{}",
            m.revenue_per_kw_min
        );
    }

    #[test]
    fn google_depreciation_rate_matches_paper() {
        // §7: "$0.003/KW/min".
        let m = TcoModel::google_2011();
        assert!(
            (m.depreciation_per_kw_min - 0.003).abs() < 0.001,
            "{}",
            m.depreciation_per_kw_min
        );
    }

    #[test]
    fn breakeven_near_five_hours() {
        let m = TcoModel::google_2011();
        let b = m.breakeven_minutes_per_year();
        assert!((250.0..350.0).contains(&b), "breakeven {b} min");
        assert!(m.profitable_without_dg(b - 1.0));
        assert!(!m.profitable_without_dg(b + 1.0));
    }

    #[test]
    fn curve_endpoints() {
        let m = TcoModel::google_2011();
        let curve = m.curve(500.0, 11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0], (0.0, 0.0));
        assert!((curve[10].0 - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        let _ = TcoModel::from_organization(1e9, 0.0, 2000.0, 4.0, 250.0);
    }

    proptest! {
        #[test]
        fn loss_monotone_in_outage_minutes(a in 0.0f64..1e5, extra in 0.0f64..1e5) {
            let m = TcoModel::google_2011();
            prop_assert!(
                m.outage_cost_per_kw_year(a + extra) >= m.outage_cost_per_kw_year(a)
            );
        }

        #[test]
        fn breakeven_scales_inversely_with_revenue(factor in 0.5f64..4.0) {
            let base = TcoModel::google_2011();
            let richer = TcoModel::from_organization(
                38e9 * factor, 260_000.0, 2_000.0, 4.0, 250.0,
            );
            if factor > 1.0 {
                prop_assert!(
                    richer.breakeven_minutes_per_year() < base.breakeven_minutes_per_year()
                );
            }
        }
    }
}
