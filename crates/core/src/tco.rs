//! Total-cost-of-ownership analysis: revenue loss versus DG savings (§7,
//! Figure 10).

use crate::cost::CostParams;
use dcb_units::{contract, Dollars, DollarsPerKwMin, DollarsPerKwYear, Kilowatts, Watts, Years};

/// The TCO model of §7: during an outage the operator loses revenue and
/// wastes server depreciation; not provisioning DGs saves their amortized
/// cost. The break-even yearly outage duration tells an organization
/// whether skipping the DG is profitable.
///
/// ```
/// use dcb_core::tco::TcoModel;
///
/// let google = TcoModel::google_2011();
/// // The paper: "the cross-over point ... turns out to be around 5 hours
/// // per year".
/// let breakeven_hours = google.breakeven_minutes_per_year() / 60.0;
/// assert!((breakeven_hours - 5.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TcoModel {
    /// Revenue lost per kW of datacenter capacity per minute of outage.
    pub revenue_per_kw_min: DollarsPerKwMin,
    /// Server capital depreciation wasted per kW per minute of outage.
    pub depreciation_per_kw_min: DollarsPerKwMin,
    /// Amortized DG cost saved per kW per year by not provisioning it.
    pub dg_cost_per_kw_year: DollarsPerKwYear,
}

impl TcoModel {
    /// Minutes in a year.
    const MINUTES_PER_YEAR: f64 = 365.0 * 24.0 * 60.0;

    /// The paper's Google-2011 parameterization: 260 MW of datacenter
    /// capacity \[31\], $38 B revenue \[25\] (conservatively all attributed to
    /// datacenters), $2000 servers depreciated over 4 years at ~250 W each,
    /// and the Table 1 DG cost.
    #[must_use]
    pub fn google_2011() -> Self {
        Self::from_organization(
            Dollars::new(38e9),
            Kilowatts::new(260_000.0),
            Dollars::new(2_000.0),
            Years::new(4.0),
            Watts::new(250.0),
        )
    }

    /// Builds the model from raw organizational figures.
    ///
    /// # Panics
    ///
    /// Panics if any figure is non-positive.
    #[must_use]
    pub fn from_organization(
        yearly_revenue: Dollars,
        capacity: Kilowatts,
        server_cost: Dollars,
        server_lifetime: Years,
        server_power: Watts,
    ) -> Self {
        assert!(
            yearly_revenue.is_positive()
                && capacity.is_positive()
                && server_cost.is_positive()
                && server_lifetime.is_positive()
                && server_power.is_positive(),
            "all organizational figures must be positive"
        );
        let revenue_per_kw_min = DollarsPerKwMin::new(
            yearly_revenue.value() / capacity.value() / Self::MINUTES_PER_YEAR,
        );
        let servers_per_kw = 1000.0 / server_power.value();
        let depreciation_per_kw_min = DollarsPerKwMin::new(
            server_cost.amortize(server_lifetime).value() * servers_per_kw / Self::MINUTES_PER_YEAR,
        );
        Self {
            revenue_per_kw_min,
            depreciation_per_kw_min,
            dg_cost_per_kw_year: CostParams::paper().dg_power,
        }
    }

    /// Combined loss rate per kW-minute of unavailability.
    #[must_use]
    pub fn loss_per_kw_min(&self) -> DollarsPerKwMin {
        self.revenue_per_kw_min + self.depreciation_per_kw_min
    }

    /// Yearly outage cost for a given yearly outage duration — the rising
    /// line of Figure 10.
    #[must_use]
    pub fn outage_cost_per_kw_year(&self, outage_minutes_per_year: f64) -> DollarsPerKwYear {
        self.loss_per_kw_min()
            .over_minutes_per_year(outage_minutes_per_year.max(0.0))
    }

    /// The horizontal "Cost of DG" line of Figure 10.
    #[must_use]
    pub fn dg_savings_per_kw_year(&self) -> DollarsPerKwYear {
        self.dg_cost_per_kw_year
    }

    /// Yearly outage minutes at which the outage cost equals the DG
    /// savings — left of this, underprovisioning is profitable.
    #[must_use]
    pub fn breakeven_minutes_per_year(&self) -> f64 {
        let breakeven = self.dg_cost_per_kw_year.value() / self.loss_per_kw_min().value();
        contract!(
            breakeven >= 0.0,
            "break-even minutes cannot be negative: {breakeven}"
        );
        breakeven
    }

    /// Whether skipping the DG is profitable at a given yearly outage
    /// duration.
    #[must_use]
    pub fn profitable_without_dg(&self, outage_minutes_per_year: f64) -> bool {
        self.outage_cost_per_kw_year(outage_minutes_per_year) < self.dg_savings_per_kw_year()
    }

    /// The Figure 10 curve: `(minutes/year, loss $/kW/year)` samples from 0
    /// to `max_minutes`.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    #[must_use]
    pub fn curve(&self, max_minutes: f64, points: usize) -> Vec<(f64, DollarsPerKwYear)> {
        assert!(points >= 2, "a curve needs at least two points");
        (0..points)
            .map(|i| {
                let minutes = max_minutes * i as f64 / (points - 1) as f64;
                (minutes, self.outage_cost_per_kw_year(minutes))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn google_revenue_rate_matches_paper() {
        // §7: "$0.28/KW/min".
        let m = TcoModel::google_2011();
        assert!(
            (m.revenue_per_kw_min.value() - 0.28).abs() < 0.005,
            "{}",
            m.revenue_per_kw_min
        );
    }

    #[test]
    fn google_depreciation_rate_matches_paper() {
        // §7: "$0.003/KW/min".
        let m = TcoModel::google_2011();
        assert!(
            (m.depreciation_per_kw_min.value() - 0.003).abs() < 0.001,
            "{}",
            m.depreciation_per_kw_min
        );
    }

    #[test]
    fn breakeven_near_five_hours() {
        let m = TcoModel::google_2011();
        let b = m.breakeven_minutes_per_year();
        assert!((250.0..350.0).contains(&b), "breakeven {b} min");
        assert!(m.profitable_without_dg(b - 1.0));
        assert!(!m.profitable_without_dg(b + 1.0));
    }

    #[test]
    fn curve_endpoints() {
        let m = TcoModel::google_2011();
        let curve = m.curve(500.0, 11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0], (0.0, DollarsPerKwYear::ZERO));
        assert!((curve[10].0 - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        let _ = TcoModel::from_organization(
            Dollars::new(1e9),
            Kilowatts::ZERO,
            Dollars::new(2000.0),
            Years::new(4.0),
            Watts::new(250.0),
        );
    }

    proptest! {
        #[test]
        fn loss_monotone_in_outage_minutes(a in 0.0f64..1e5, extra in 0.0f64..1e5) {
            let m = TcoModel::google_2011();
            prop_assert!(
                m.outage_cost_per_kw_year(a + extra) >= m.outage_cost_per_kw_year(a)
            );
        }

        #[test]
        fn breakeven_scales_inversely_with_revenue(factor in 0.5f64..4.0) {
            let base = TcoModel::google_2011();
            let richer = TcoModel::from_organization(
                Dollars::new(38e9 * factor),
                Kilowatts::new(260_000.0),
                Dollars::new(2_000.0),
                Years::new(4.0),
                Watts::new(250.0),
            );
            if factor > 1.0 {
                prop_assert!(
                    richer.breakeven_minutes_per_year() < base.breakeven_minutes_per_year()
                );
            }
        }
    }
}
