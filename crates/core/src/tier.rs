//! Datacenter Tier classification (§2's availability-cost framing).
//!
//! The paper situates backup provisioning inside "the famous Tier
//! classification of datacenters" \[61\]. This module encodes the Tier
//! ladder's structural requirements and availability expectations, so a
//! (power-hierarchy redundancy, backup configuration) choice can be
//! classified and a simulated [`crate::availability::AvailabilityReport`]
//! can be checked against a target Tier's yearly downtime budget.

use crate::availability::AvailabilityReport;
use core::fmt;
use dcb_power::{BackupConfig, Redundancy};
use dcb_units::Seconds;

/// The Uptime-Institute Tier ladder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Tier {
    /// Basic capacity: dedicated UPS, no redundancy.
    I,
    /// Redundant components (N+1) on a single path.
    II,
    /// Concurrently maintainable: redundant paths, N+1 everywhere, on-site
    /// engine generation.
    III,
    /// Fault tolerant: 2N paths, everything survives a single fault.
    IV,
}

impl Tier {
    /// All tiers, ascending.
    pub const ALL: [Tier; 4] = [Tier::I, Tier::II, Tier::III, Tier::IV];

    /// The classification's expected availability.
    #[must_use]
    pub fn expected_availability(self) -> f64 {
        match self {
            Tier::I => 0.99671,
            Tier::II => 0.99741,
            Tier::III => 0.99982,
            Tier::IV => 0.99995,
        }
    }

    /// The corresponding yearly downtime budget.
    #[must_use]
    pub fn yearly_downtime_budget(self) -> Seconds {
        let year = 365.0 * 24.0 * 3600.0;
        Seconds::new((1.0 - self.expected_availability()) * year)
    }

    /// Classifies a site from its delivery redundancy and backup
    /// configuration. Returns `None` for sites below Tier I (no UPS at
    /// all — MinCost/NoUPS territory).
    #[must_use]
    pub fn classify(delivery: Redundancy, backup: &BackupConfig) -> Option<Tier> {
        if backup.ups_power().is_zero() {
            return None;
        }
        let has_engine = !backup.dg_power().is_zero();
        Some(match delivery {
            Redundancy::N => Tier::I,
            Redundancy::NPlus1 => {
                if has_engine {
                    Tier::III
                } else {
                    Tier::II
                }
            }
            Redundancy::TwoN => {
                if has_engine {
                    Tier::IV
                } else {
                    // Fault-tolerant delivery without engine generation
                    // still caps out at concurrent maintainability.
                    Tier::III
                }
            }
        })
    }

    /// Whether a simulated availability report meets this Tier's budget.
    #[must_use]
    pub fn met_by(self, report: &AvailabilityReport) -> bool {
        report.mean_yearly_downtime <= self.yearly_downtime_budget()
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::I => f.write_str("Tier I"),
            Tier::II => f.write_str("Tier II"),
            Tier::III => f.write_str("Tier III"),
            Tier::IV => f.write_str("Tier IV"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::analyze;
    use dcb_sim::{Cluster, Technique};
    use dcb_workload::Workload;

    #[test]
    fn ladder_is_monotone() {
        for pair in Tier::ALL.windows(2) {
            assert!(pair[1].expected_availability() > pair[0].expected_availability());
            assert!(pair[1].yearly_downtime_budget() < pair[0].yearly_downtime_budget());
        }
        // Tier I allows ~28.8 h of downtime a year; Tier IV ~26 min.
        assert!((Tier::I.yearly_downtime_budget().to_hours() - 28.8).abs() < 0.1);
        assert!((Tier::IV.yearly_downtime_budget().to_minutes() - 26.3).abs() < 1.0);
    }

    #[test]
    fn classification_matches_structure() {
        assert_eq!(
            Tier::classify(Redundancy::N, &BackupConfig::no_dg()),
            Some(Tier::I)
        );
        assert_eq!(
            Tier::classify(Redundancy::NPlus1, &BackupConfig::no_dg()),
            Some(Tier::II)
        );
        assert_eq!(
            Tier::classify(Redundancy::NPlus1, &BackupConfig::max_perf()),
            Some(Tier::III)
        );
        assert_eq!(
            Tier::classify(Redundancy::TwoN, &BackupConfig::max_perf()),
            Some(Tier::IV)
        );
        assert_eq!(
            Tier::classify(Redundancy::TwoN, &BackupConfig::large_e_ups()),
            Some(Tier::III),
            "no engine caps at Tier III"
        );
        assert_eq!(
            Tier::classify(Redundancy::TwoN, &BackupConfig::min_cost()),
            None
        );
        assert_eq!(Tier::classify(Redundancy::N, &BackupConfig::no_ups()), None);
    }

    #[test]
    fn underprovisioned_ups_only_site_still_makes_tier_budgets_on_power_outages() {
        // The paper's pitch, in Tier terms: a DG-less LargeEUPS site keeps
        // *power-outage-driven* downtime within even Tier III/IV budgets
        // (other failure sources are out of scope here).
        let report = analyze(
            &Cluster::rack(Workload::specjbb()),
            &BackupConfig::large_e_ups(),
            &Technique::ride_through(),
            50,
            21,
        );
        assert!(Tier::I.met_by(&report));
        assert!(Tier::II.met_by(&report));
        // MinCost, by contrast, blows through Tier III.
        let bare = analyze(
            &Cluster::rack(Workload::specjbb()),
            &BackupConfig::min_cost(),
            &Technique::crash(),
            50,
            21,
        );
        assert!(!Tier::III.met_by(&bare));
    }
}
