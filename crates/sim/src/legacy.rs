//! The original hand-rolled kernel loop, kept verbatim as a bit-identity
//! oracle for the engine-hosted components.
//!
//! This is the event loop that `crates/sim/kernel.rs` contained before
//! the `dcb-engine` extraction: one function owning the calendar (a
//! candidate `Vec` re-built each iteration), the tie-breaking scan, the
//! hard-event window, the located-event searches, the segment commit, and
//! the transition dispatch. The componentized kernel in
//! [`components`](crate::components) must reproduce it exactly — every
//! floating-point operation in the same order — and the differential
//! suite (`tests/componentized.rs`) asserts bit-identical trajectories
//! over the full Table-3 × technique × duration grid. Production callers
//! use [`OutageSim::run`](crate::OutageSim::run); once the oracle has
//! outlived its usefulness this module is the one to delete.

use crate::engine::{Mode, OutageSim, RunState};
use crate::kernel::{Pending, MAX_EVENTS};
use crate::segment::{Segment, SegmentEnd, Trajectory};
use dcb_engine::locate::first_true;
use dcb_power::BackupSystem;
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{contract, Fraction, Seconds};

impl OutageSim {
    /// Runs the legacy hand-rolled event loop against a fresh backup
    /// system. Oracle counterpart of
    /// [`OutageSim::run_trajectory`](crate::OutageSim::run_trajectory).
    #[must_use]
    pub fn run_trajectory_legacy(&self, outage: Seconds) -> Trajectory {
        let mut backup = self.config().instantiate(self.cluster().peak_power());
        self.run_with_backup_trajectory_legacy(outage, &mut backup)
    }

    /// Runs the legacy hand-rolled event loop against an existing backup
    /// system. Oracle counterpart of
    /// [`OutageSim::run_with_backup_trajectory`](crate::OutageSim::run_with_backup_trajectory).
    ///
    /// # Panics
    ///
    /// Panics if `outage` is negative or non-finite.
    #[must_use]
    pub fn run_with_backup_trajectory_legacy(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
    ) -> Trajectory {
        assert!(
            outage.value() >= 0.0 && outage.is_finite(),
            "outage must be finite and non-negative"
        );
        // Root trace event for this scenario plus the DG ramp milestones,
        // which are a pure function of time and can be emitted up front.
        let t_root = if dcb_trace::enabled() {
            let root = dcb_trace::instant(Some(0), None, || dcb_trace::EventKind::OutageStart {
                config: self.config().label().to_owned(),
                technique: self.technique().name().to_owned(),
                outage_us: dcb_trace::micros(outage),
            });
            if let Some(dg) = backup.dg() {
                let mut milestones = vec![
                    ("engine_start", dg.start_delay()),
                    ("full_power", dg.transfer_complete()),
                ];
                if let Some(fuel) = dg.fuel_runtime() {
                    milestones.push(("fuel_exhausted", fuel));
                }
                for (phase, at) in milestones {
                    if at <= outage {
                        dcb_trace::instant(Some(dcb_trace::micros(at)), root, || {
                            dcb_trace::EventKind::DgRampPhase {
                                phase: phase.to_owned(),
                            }
                        });
                    }
                }
            }
            root
        } else {
            None
        };

        let transitions = TransitionTimes::new(*self.cluster().spec());
        let (mode, state_lost) = self.initial_mode(&transitions);
        let mut st = RunState {
            mode,
            state_lost,
            unplanned_crash: false,
            crash_recovery_engaged: false,
            serving_integral: 0.0,
            downtime: Seconds::ZERO,
        };
        let mut segments: Vec<Segment> = Vec::new();
        let mut t = Seconds::ZERO;
        let mut events = 0u32;
        while t < outage {
            events += 1;
            contract!(
                events <= MAX_EVENTS,
                "event budget exceeded at t={t} in mode {:?}",
                st.mode
            );
            if events > MAX_EVENTS {
                break; // modeling-bug backstop; the contract above reports it
            }

            // Instantaneous transitions, in the stepper's per-step order.
            let before = dcb_trace::enabled().then(|| st.mode.name());
            self.apply_instantaneous(&mut st, backup, &transitions, t, outage);
            if let Some(from) = before {
                let to = st.mode.name();
                if to != from {
                    dcb_trace::instant(Some(dcb_trace::micros(t)), t_root, || {
                        dcb_trace::EventKind::TechniqueTransition {
                            from: from.to_owned(),
                            to: to.to_owned(),
                        }
                    });
                }
            }

            // The segment's constant load, and the hard boundary: the next
            // mode-internal timer, or outage end.
            let load = self.supply_load(&st.mode, backup);
            let timer: Option<(Seconds, Pending)> = match &st.mode {
                Mode::Migrating {
                    remaining, pause, ..
                } => Some(if *remaining > *pause {
                    (t + (*remaining - *pause), Pending::Pause)
                } else {
                    (t + *remaining, Pending::TimerDone)
                }),
                Mode::EnteringSleep { remaining, .. }
                | Mode::Saving { remaining, .. }
                | Mode::Recovering { remaining } => Some((t + *remaining, Pending::TimerDone)),
                _ => None,
            };
            // A timer landing exactly on outage end still fires (the
            // stepper progresses the mode within its final step).
            let boundary = match timer {
                Some((at, ev)) if at <= outage => (at, 3u8, ev),
                _ => (outage, 4u8, Pending::End),
            };
            let hi = boundary.0;

            // Candidate events inside (t, hi], tagged with a tie-breaking
            // priority mirroring the stepper's within-step check order.
            let mut cands: Vec<(Seconds, u8, Pending)> = vec![boundary];
            if let Some(ts) = backup.first_shortfall(load, t, hi) {
                cands.push((ts.max(t), 2, Pending::Shortfall));
            }
            if let Mode::Serving { level, share } = &st.mode {
                if *level != ThrottleLevel::NONE {
                    let full = Mode::Serving {
                        level: ThrottleLevel::NONE,
                        share: *share,
                    };
                    let full_load = self.supply_load(&full, backup);
                    if let Some(tu) = first_true(t, hi, |tau| {
                        self.project(backup, load, t, tau)
                            .endurance(full_load, tau)
                            .value()
                            .is_infinite()
                    }) {
                        cands.push((tu, 0, Pending::Unthrottle));
                    }
                }
            }
            if let (Mode::Serving { .. }, Some(fb)) = (&st.mode, self.technique().fallback()) {
                if let Some(tf) = first_true(t, hi, |tau| {
                    let probe = self.project(backup, load, t, tau);
                    self.must_fall_back(
                        fb,
                        &probe,
                        &transitions,
                        &st.mode,
                        tau,
                        outage,
                        Seconds::ZERO,
                    )
                }) {
                    cands.push((tf, 1, Pending::Fallback));
                }
            }
            if matches!(st.mode, Mode::Crashed) {
                let reboot_load = self.supply_load(
                    &Mode::Recovering {
                        remaining: Seconds::ZERO,
                    },
                    backup,
                );
                if let Some(tr) =
                    first_true(t, hi, |tau| backup.available_power(tau) >= reboot_load)
                {
                    cands.push((tr, 2, Pending::RecoveryReady));
                }
            }

            // Earliest event wins; on a dead-even tie the lower priority
            // number (the check the stepper runs first) does.
            let mut best = cands[0];
            for &c in &cands[1..] {
                if c.0 < best.0 || (c.0 <= best.0 && c.1 < best.1) {
                    best = c;
                }
            }
            let (when, _, what) = best;
            let end = when.min(outage).max(t);

            // Commit the segment: one exact Peukert ramp draw, no steps.
            if end > t {
                let sustained = backup.supply_segment(load, t, end);
                contract!(
                    ((end - t) - sustained).value().abs() < 1e-3,
                    "segment [{t}, {end}] not fully sustained: {sustained}"
                );
                let (rate, down) = self.mode_rates(&st.mode);
                st.serving_integral += rate * (end - t).value();
                if down {
                    st.downtime += end - t;
                }
                let ended_by = match what {
                    Pending::Unthrottle => SegmentEnd::DgCrossover,
                    Pending::Fallback => SegmentEnd::HybridFallback,
                    Pending::Shortfall => match backup.ups() {
                        Some(u) if u.is_depleted() => SegmentEnd::BatteryDepleted,
                        _ => SegmentEnd::SupplyOverload,
                    },
                    Pending::Pause => SegmentEnd::MigrationPause,
                    Pending::TimerDone => SegmentEnd::TimerExpired,
                    Pending::RecoveryReady => SegmentEnd::RecoveryPower,
                    Pending::End => SegmentEnd::OutageEnd,
                };
                segments.push(Segment {
                    start: t,
                    end,
                    load,
                    throughput: rate,
                    in_downtime: down,
                    ended_by,
                });
                if dcb_trace::enabled() {
                    let start_us = dcb_trace::micros(t);
                    let end_us = dcb_trace::micros(end);
                    dcb_trace::complete(start_us, end_us.saturating_sub(start_us), t_root, || {
                        dcb_trace::EventKind::SegmentCommit {
                            end_cause: ended_by.as_str().to_owned(),
                            load_mw: (load.value() * 1e3).round() as u64,
                            throughput_pm: (rate * 1e3).round() as u64,
                            in_downtime: down,
                        }
                    });
                    if ended_by == SegmentEnd::BatteryDepleted {
                        dcb_trace::instant(Some(end_us), t_root, || {
                            dcb_trace::EventKind::BatteryDeplete
                        });
                    }
                }
                // Timers tick down by the committed span.
                let elapsed = end - t;
                match &mut st.mode {
                    Mode::Migrating { remaining, .. }
                    | Mode::EnteringSleep { remaining, .. }
                    | Mode::Saving { remaining, .. }
                    | Mode::Recovering { remaining } => *remaining -= elapsed,
                    _ => {}
                }
            }
            t = end;

            // Fire the event's transition.
            let before = dcb_trace::enabled().then(|| st.mode.name());
            match what {
                Pending::End => {}
                Pending::Pause => {
                    // Pin the timer to the pause length exactly so the
                    // copy→pause flip is not re-found a rounding error away.
                    if let Mode::Migrating {
                        remaining, pause, ..
                    } = &mut st.mode
                    {
                        *remaining = *pause;
                    }
                }
                Pending::TimerDone => {
                    st.mode = match st.mode {
                        Mode::Migrating { after, .. } => Mode::Serving {
                            level: after,
                            share: self.consolidated_share(),
                        },
                        Mode::EnteringSleep { .. } => self.sleep_target(),
                        Mode::Saving { level, .. } => Mode::Hibernated {
                            saved_throttled: level != ThrottleLevel::NONE,
                        },
                        Mode::Recovering { .. } => Mode::Serving {
                            level: ThrottleLevel::NONE,
                            share: Fraction::ONE,
                        },
                        other => other,
                    };
                }
                Pending::Shortfall => self.apply_shortfall(&mut st),
                Pending::Unthrottle => {
                    if let Mode::Serving { share, .. } = st.mode {
                        st.mode = Mode::Serving {
                            level: ThrottleLevel::NONE,
                            share,
                        };
                    }
                }
                Pending::Fallback => {
                    if let Some(fb) = self.technique().fallback() {
                        st.mode = self.fallback_mode(fb, &transitions);
                    }
                }
                Pending::RecoveryReady => {
                    st.crash_recovery_engaged = true;
                    st.mode = Mode::Recovering {
                        remaining: self.expected_recovery(),
                    };
                }
            }
            if let Some(from) = before {
                let to = st.mode.name();
                if to != from {
                    dcb_trace::instant(Some(dcb_trace::micros(t)), t_root, || {
                        dcb_trace::EventKind::TechniqueTransition {
                            from: from.to_owned(),
                            to: to.to_owned(),
                        }
                    });
                }
            }
        }

        self.finish_trajectory(outage, st, backup, &transitions, segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, Technique};
    use dcb_power::BackupConfig;
    use dcb_workload::Workload;

    #[test]
    fn oracle_still_resolves_the_basic_scenarios() {
        let sim = OutageSim::new(
            Cluster::rack(Workload::specjbb()),
            BackupConfig::max_perf(),
            Technique::ride_through(),
        );
        let traj = sim.run_trajectory_legacy(Seconds::from_minutes(120.0));
        assert!(traj.segments.len() <= 4);
        assert!(matches!(
            traj.segments.last().map(|s| s.ended_by),
            Some(SegmentEnd::OutageEnd)
        ));
        assert!(traj.outcome.feasible);
    }
}
