//! The outage simulation core: shared mode machinery and the public
//! [`OutageSim`] entry points.
//!
//! Two interchangeable solvers share everything in this module: the
//! event-driven piecewise-analytic kernel (`kernel.rs`, the default behind
//! [`OutageSim::run`]) and the legacy fixed-step loop (`stepper.rs`, kept
//! as a differential oracle). Mode semantics, fallback planning, and
//! outcome assembly live here so the two cannot drift apart.

use crate::{Cluster, Fallback, FinalState, InitialAction, SimOutcome, Technique};
use dcb_migration::{ConsolidationPlan, MigrationModel};
use dcb_power::{BackupConfig, BackupSystem, Ups};
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{Fraction, Gigabytes, Seconds, Watts};
use dcb_workload::DowntimeRange;

/// Simulates one cluster through one utility outage under one
/// outage-handling technique and one backup configuration.
///
/// The default solver is event-driven: between events the cluster's load
/// is constant (a mode only changes at a timer expiry, a battery-depletion
/// instant, a DG-ramp crossover, a hybrid-fallback latest-safe instant, or
/// outage end), so each next event time is computed in closed form and the
/// outage resolves in O(#events) exact segments. Hybrid techniques switch
/// from their sustain phase to their save-state fallback at the latest
/// instant the remaining battery charge still covers the save — the
/// planning rule behind the paper's *Throttle+Sleep-L* results. The
/// fixed-step solver survives as [`OutageSim::run_stepped`] for
/// differential testing.
#[derive(Debug, Clone)]
pub struct OutageSim {
    cluster: Cluster,
    config: BackupConfig,
    technique: Technique,
    migration: MigrationModel,
    consolidation: ConsolidationPlan,
    tare_fraction: f64,
}

/// What the cluster is doing at an instant of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Mode {
    Serving {
        level: ThrottleLevel,
        share: Fraction,
    },
    Migrating {
        during: ThrottleLevel,
        after: ThrottleLevel,
        remaining: Seconds,
        pause: Seconds,
    },
    EnteringSleep {
        level: ThrottleLevel,
        remaining: Seconds,
    },
    Sleeping,
    /// S3 with NIC + memory controller alive: peers serve reads over RDMA.
    SleepingRemote,
    Saving {
        level: ThrottleLevel,
        remaining: Seconds,
    },
    /// State safe in NVDIMM flash, servers powered off.
    NvdimmPersisted,
    Hibernated {
        saved_throttled: bool,
    },
    Crashed,
    Recovering {
        remaining: Seconds,
    },
}

impl Mode {
    /// Stable wire name of the mode, used by trace `technique_transition`
    /// events. Throttled serving is distinguished because the unthrottle
    /// crossover is one of the kernel's located events.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Mode::Serving { level, .. } => {
                if *level == ThrottleLevel::NONE {
                    "serving"
                } else {
                    "serving_throttled"
                }
            }
            Mode::Migrating { .. } => "migrating",
            Mode::EnteringSleep { .. } => "entering_sleep",
            Mode::Sleeping => "sleeping",
            Mode::SleepingRemote => "sleeping_remote",
            Mode::Saving { .. } => "saving",
            Mode::NvdimmPersisted => "nvdimm_persisted",
            Mode::Hibernated { .. } => "hibernated",
            Mode::Crashed => "crashed",
            Mode::Recovering { .. } => "recovering",
        }
    }
}

/// Mutable run state threaded through either solver and handed to
/// [`OutageSim::assemble`] once utility power returns.
#[derive(Debug, Clone)]
pub(crate) struct RunState {
    pub(crate) mode: Mode,
    pub(crate) state_lost: bool,
    pub(crate) unplanned_crash: bool,
    pub(crate) crash_recovery_engaged: bool,
    /// Normalized-throughput seconds served so far.
    pub(crate) serving_integral: f64,
    /// In-outage downtime so far.
    pub(crate) downtime: Seconds,
}

impl OutageSim {
    /// Safety factor on the charge reserved for a fallback save.
    pub(crate) const FALLBACK_SAFETY: f64 = 1.1;
    /// UPS electronics tare draw while discharging, as a fraction of the
    /// unit's power rating.
    const DEFAULT_TARE: f64 = 0.005;

    /// Creates a simulation with the default migration model (Xen over
    /// 1 Gbps) and the paper's 2-to-1 consolidation.
    #[must_use]
    pub fn new(cluster: Cluster, config: BackupConfig, technique: Technique) -> Self {
        Self {
            cluster,
            config,
            technique,
            migration: MigrationModel::xen_default(),
            consolidation: ConsolidationPlan::halve(),
            tare_fraction: Self::DEFAULT_TARE,
        }
    }

    /// Overrides the migration model.
    #[must_use]
    pub fn with_migration(mut self, migration: MigrationModel) -> Self {
        self.migration = migration;
        self
    }

    /// Overrides the consolidation plan.
    #[must_use]
    pub fn with_consolidation(mut self, consolidation: ConsolidationPlan) -> Self {
        self.consolidation = consolidation;
        self
    }

    /// Overrides the UPS tare fraction ([`Fraction::ZERO`] disables the
    /// tare). Taking a [`Fraction`] makes out-of-range and NaN inputs
    /// unrepresentable instead of policed by this builder.
    ///
    /// # Panics
    ///
    /// Panics if `tare` is exactly 1: the tare must leave headroom for the
    /// IT load itself.
    #[must_use]
    pub fn with_tare_fraction(mut self, tare: Fraction) -> Self {
        assert!(tare.value() < 1.0, "tare must be in [0, 1)");
        self.tare_fraction = tare.value();
        self
    }

    /// The cluster under test.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The backup configuration under test.
    #[must_use]
    pub fn config(&self) -> &BackupConfig {
        &self.config
    }

    /// The technique under test.
    #[must_use]
    pub fn technique(&self) -> &Technique {
        &self.technique
    }

    /// The consolidated serving share after a completed migration.
    pub(crate) fn consolidated_share(&self) -> Fraction {
        self.consolidation.share()
    }

    /// Number of servers still powered in a mode.
    fn active_servers(&self, share: Fraction) -> f64 {
        (f64::from(self.cluster.size()) * share.value()).ceil()
    }

    /// Cluster IT load (before UPS tare) for a mode.
    pub(crate) fn cluster_load(&self, mode: &Mode) -> Watts {
        let spec = self.cluster.spec();
        let util = self.cluster.workload().utilization();
        let n = f64::from(self.cluster.size());
        match mode {
            Mode::Serving { level, share } => {
                spec.active_power(*level, util) * self.active_servers(*share)
            }
            Mode::Migrating { during, .. } => {
                // Source and destination both busy plus copy overhead — the
                // "momentary spike" of §5, capped at nameplate peak.
                (spec.active_power(*during, util) * 1.05 * n).min(self.cluster.peak_power())
            }
            Mode::EnteringSleep { level, .. } | Mode::Saving { level, .. } => {
                spec.active_power(*level, util) * n
            }
            Mode::Sleeping => spec.sleep_power() * n,
            // Barely-alive: S3 plus an active NIC and memory controller.
            Mode::SleepingRemote => (spec.sleep_power() + Watts::new(10.0)) * n,
            Mode::Hibernated { .. } | Mode::Crashed | Mode::NvdimmPersisted => Watts::ZERO,
            Mode::Recovering { .. } => {
                spec.active_power(ThrottleLevel::NONE, Fraction::new(0.7)) * n
            }
        }
    }

    /// IT load plus UPS electronics tare (drawn whenever the backup is
    /// carrying a nonzero load).
    ///
    /// The tare is conversion overhead internal to the UPS: it drains the
    /// battery but is bounded by the unit's rating, so the combined draw is
    /// capped at the cluster's nameplate peak (the quantity the electronics
    /// are sized against).
    pub(crate) fn supply_load(&self, mode: &Mode, backup: &BackupSystem) -> Watts {
        let it = self.cluster_load(mode);
        if it.is_zero() {
            return it;
        }
        let tare = backup
            .ups()
            .map_or(Watts::ZERO, |u| u.power_capacity() * self.tare_fraction);
        (it + tare).min(self.cluster.peak_power().max(it))
    }

    /// The normalized throughput rate and downtime flag of a mode — the
    /// per-segment accounting rule shared by both solvers.
    pub(crate) fn mode_rates(&self, mode: &Mode) -> (f64, bool) {
        let w = self.cluster.workload();
        match mode {
            Mode::Serving { level, share } => (
                w.throughput_at(level.effective_speed(), *share).value(),
                false,
            ),
            Mode::Migrating {
                during,
                remaining,
                pause,
                ..
            } => {
                if *remaining > *pause {
                    (
                        w.throughput_at(during.effective_speed(), Fraction::ONE)
                            .value(),
                        false,
                    )
                } else {
                    (0.0, true) // stop-and-copy pause
                }
            }
            Mode::SleepingRemote => (w.remote_serve_fraction().value(), false),
            Mode::EnteringSleep { .. }
            | Mode::Sleeping
            | Mode::Saving { .. }
            | Mode::NvdimmPersisted
            | Mode::Hibernated { .. }
            | Mode::Crashed
            | Mode::Recovering { .. } => (0.0, true),
        }
    }

    /// The state volume a hibernation-style save must write. Delegates to
    /// the workload model, which owns the image/dirty-set accounting.
    fn hibernate_state(&self, proactive: bool) -> Gigabytes {
        self.cluster.workload().hibernate_write_volume(proactive)
    }

    /// Initial mode implied by the technique.
    pub(crate) fn initial_mode(&self, transitions: &TransitionTimes) -> (Mode, bool) {
        match self.technique.initial() {
            InitialAction::Continue(level) => (
                Mode::Serving {
                    level,
                    share: Fraction::ONE,
                },
                false,
            ),
            InitialAction::Crash => (Mode::Crashed, true),
            InitialAction::StartSleep(level) => (
                Mode::EnteringSleep {
                    level,
                    remaining: transitions.sleep_enter(level.effective_speed()),
                },
                false,
            ),
            InitialAction::StartHibernate { level, proactive } => (
                Mode::Saving {
                    level,
                    remaining: transitions
                        .hibernate_save(self.hibernate_state(proactive), level.effective_speed()),
                },
                false,
            ),
            InitialAction::PersistNvdimm => (Mode::NvdimmPersisted, false),
            InitialAction::StartRemoteSleep(level) => (
                Mode::EnteringSleep {
                    level,
                    remaining: transitions.sleep_enter(level.effective_speed()),
                },
                false,
            ),
            InitialAction::StartMigration {
                proactive,
                during,
                after,
            } => {
                let w = self.cluster.workload();
                let state = w.migration_state(proactive);
                let plan = self.migration.plan(state, w.dirty_profile().dirty_rate);
                (
                    Mode::Migrating {
                        during,
                        after,
                        remaining: plan.duration,
                        pause: plan.pause,
                    },
                    false,
                )
            }
        }
    }

    /// Charge fraction a UPS needs to carry the listed `(load, duration)`
    /// phases back to back (rate-dependent Peukert accounting).
    fn charge_needed(ups: &Ups, phases: &[(Watts, Seconds)]) -> f64 {
        phases
            .iter()
            .map(|(load, duration)| {
                if duration.value() <= 0.0 {
                    return 0.0;
                }
                let runtime = ups.pack().runtime_at(*load);
                if runtime.value().is_finite() && runtime.value() > 0.0 {
                    duration.value() / runtime.value()
                } else if load.value() <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            })
            .sum()
    }

    /// Whether a serving cluster must switch to its fallback *now* to keep
    /// the save (plus, for sleep, the rest of the outage) within the
    /// remaining battery charge. `step` is the cost lookahead of the
    /// stepped solver (one step of serving); the event kernel passes zero
    /// and locates the crossing instant instead.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn must_fall_back(
        &self,
        fallback: Fallback,
        backup: &BackupSystem,
        transitions: &TransitionTimes,
        mode: &Mode,
        t: Seconds,
        outage: Seconds,
        step: Seconds,
    ) -> bool {
        // A DG that can carry the serving load indefinitely means the
        // sustain phase never has to end.
        let serving_load = self.supply_load(mode, backup);
        if backup.endurance(serving_load, t).value().is_infinite() {
            return false;
        }
        let Some(ups) = backup.ups() else {
            return true; // no battery at all: save immediately (will fail anyway)
        };
        let share = match mode {
            Mode::Serving { share, .. } => *share,
            _ => Fraction::ONE,
        };
        let n = self.active_servers(share);
        let spec = self.cluster.spec();
        let util = self.cluster.workload().utilization();
        let tare = ups.power_capacity() * self.tare_fraction;
        let phases: Vec<(Watts, Seconds)> = match fallback {
            Fallback::Sleep(level) => {
                let entry_time = transitions.sleep_enter(level.effective_speed());
                let entry_load = spec.active_power(level, util) * n + tare;
                let sleep_load = spec.sleep_power() * n + tare;
                let rest = (outage - t - entry_time).max(Seconds::ZERO);
                vec![(entry_load, entry_time), (sleep_load, rest)]
            }
            Fallback::Hibernate { level, proactive } => {
                let save_time = transitions
                    .hibernate_save(self.hibernate_state(proactive), level.effective_speed());
                let save_load = spec.active_power(level, util) * n + tare;
                vec![(save_load, save_time)]
            }
            // NVDIMM persistence is supercap-powered: no reserve needed;
            // serve until the battery cannot cover even the next step.
            Fallback::Nvdimm => Vec::new(),
        };
        let needed = Self::charge_needed(ups, &phases);
        // Serving one more step costs this much charge; fall back when we
        // can no longer afford both.
        let step_cost = Self::charge_needed(ups, &[(serving_load, step)]);
        ups.charge().value() <= (needed * Self::FALLBACK_SAFETY + step_cost).min(1.0)
    }

    /// Enters the fallback mode.
    pub(crate) fn fallback_mode(&self, fallback: Fallback, transitions: &TransitionTimes) -> Mode {
        match fallback {
            Fallback::Sleep(level) => Mode::EnteringSleep {
                level,
                remaining: transitions.sleep_enter(level.effective_speed()),
            },
            Fallback::Hibernate { level, proactive } => Mode::Saving {
                level,
                remaining: transitions
                    .hibernate_save(self.hibernate_state(proactive), level.effective_speed()),
            },
            Fallback::Nvdimm => Mode::NvdimmPersisted,
        }
    }

    /// The mode a completed sleep entry lands in: remote-serve sleep only
    /// when the technique *started* as remote sleep.
    pub(crate) fn sleep_target(&self) -> Mode {
        if matches!(self.technique.initial(), InitialAction::StartRemoteSleep(_)) {
            Mode::SleepingRemote
        } else {
            Mode::Sleeping
        }
    }

    /// Expected crash-recovery span: boot, application start, state reload,
    /// warmup, and expected recompute.
    pub(crate) fn expected_recovery(&self) -> Seconds {
        let recovery = self.cluster.workload().recovery();
        self.cluster.spec().boot_time()
            + recovery.app_start
            + recovery.reload_time()
            + recovery.warmup
            + recovery.recompute.expected
    }

    /// Runs the simulation for an outage of the given length against a
    /// freshly provisioned (fully charged) backup system.
    #[must_use]
    pub fn run(&self, outage: Seconds) -> SimOutcome {
        let mut backup = self.config.instantiate(self.cluster.peak_power());
        self.run_with_backup(outage, &mut backup)
    }

    /// Runs an outage that begins at absolute time `start`.
    ///
    /// For workloads carrying a diurnal [`dcb_workload::LoadProfile`] the
    /// utilization is resolved at the outage's start and held for its
    /// duration (load variation *within* an outage is second-order next to
    /// when it strikes); without a profile this is identical to [`run`].
    ///
    /// [`run`]: Self::run
    #[must_use]
    pub fn run_at(&self, start: Seconds, outage: Seconds) -> SimOutcome {
        let sim = self.resolved_at(start);
        let mut backup = sim.config.instantiate(sim.cluster.peak_power());
        sim.run_with_backup(outage, &mut backup)
    }

    /// A copy of this simulation with any load profile resolved at `start`.
    pub(crate) fn resolved_at(&self, start: Seconds) -> OutageSim {
        if self.cluster.workload().load_profile().is_none() {
            return self.clone();
        }
        let util = self.cluster.workload().utilization_at(start);
        let workload = self.cluster.workload().with_constant_load(util);
        let cluster = Cluster::new(self.cluster.size(), *self.cluster.spec(), workload);
        OutageSim {
            cluster,
            ..self.clone()
        }
    }

    /// Runs one outage against an existing backup system, preserving its
    /// battery state of charge — the building block for simulating yearly
    /// traces where back-to-back outages find a partially recharged
    /// battery.
    #[must_use]
    pub fn run_with_backup(&self, outage: Seconds, backup: &mut BackupSystem) -> SimOutcome {
        self.run_with_backup_trajectory(outage, backup).outcome
    }

    /// Utility restored: computes the recovery tail, the final state, and
    /// the full [`SimOutcome`] from a solver's end-of-outage [`RunState`].
    pub(crate) fn assemble(
        &self,
        outage: Seconds,
        state: RunState,
        backup: &BackupSystem,
        transitions: &TransitionTimes,
    ) -> SimOutcome {
        let w = self.cluster.workload();
        let recovery = w.recovery();
        let mut crash_recovery_engaged = state.crash_recovery_engaged;
        let (tail, final_state) = match state.mode {
            Mode::Serving { .. } => (Seconds::ZERO, FinalState::Serving),
            Mode::Migrating {
                remaining, pause, ..
            } => {
                // Service continues; only an in-flight stop-and-copy pause
                // still blocks requests.
                (
                    remaining.min(pause).max(Seconds::ZERO),
                    FinalState::Migrating,
                )
            }
            Mode::EnteringSleep { remaining, .. } => (
                remaining.max(Seconds::ZERO) + transitions.sleep_resume(),
                FinalState::EnteringSleep,
            ),
            Mode::Sleeping => (transitions.sleep_resume(), FinalState::Sleeping),
            Mode::SleepingRemote => (transitions.sleep_resume(), FinalState::Sleeping),
            Mode::NvdimmPersisted => (
                transitions.nvdimm_restore(w.memory_footprint()),
                FinalState::Hibernated,
            ),
            Mode::Saving { remaining, level } => (
                // The suspend image must complete (on utility power) before
                // the machine can come back.
                remaining.max(Seconds::ZERO)
                    + transitions.hibernate_resume(
                        self.hibernate_state(false),
                        level != ThrottleLevel::NONE,
                    ),
                FinalState::Saving,
            ),
            Mode::Hibernated { saved_throttled } => (
                transitions.hibernate_resume(self.hibernate_state(false), saved_throttled),
                FinalState::Hibernated,
            ),
            Mode::Crashed => {
                crash_recovery_engaged = true;
                (self.expected_recovery(), FinalState::Crashed)
            }
            Mode::Recovering { remaining } => {
                (remaining.max(Seconds::ZERO), FinalState::Recovering)
            }
        };

        let expected_downtime = state.downtime + tail;
        let downtime_range = if crash_recovery_engaged {
            let rec = recovery.recompute;
            DowntimeRange {
                min: (expected_downtime + rec.min - rec.expected).max(Seconds::ZERO),
                expected: expected_downtime,
                max: expected_downtime + rec.max - rec.expected,
            }
        } else {
            DowntimeRange::exact(expected_downtime)
        };

        let perf = if outage.value() > 0.0 {
            Fraction::new(state.serving_integral / outage.value())
        } else {
            Fraction::ONE
        };
        let peak = backup.peak_drawn();
        SimOutcome {
            outage,
            feasible: !state.unplanned_crash,
            state_lost: state.state_lost,
            peak_power: peak,
            peak_power_fraction: Fraction::new(peak / self.cluster.peak_power()),
            energy: backup.energy_drawn(),
            perf_during_outage: perf,
            downtime: downtime_range,
            downtime_during_outage: state.downtime,
            final_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn sim(config: BackupConfig, technique: Technique) -> OutageSim {
        OutageSim::new(Cluster::rack(Workload::specjbb()), config, technique)
    }

    fn minutes(m: f64) -> Seconds {
        Seconds::from_minutes(m)
    }

    #[test]
    fn max_perf_is_seamless_for_all_durations() {
        for m in [0.5, 5.0, 30.0, 60.0, 120.0] {
            let out = sim(BackupConfig::max_perf(), Technique::ride_through()).run(minutes(m));
            assert!(out.feasible, "{m} min");
            assert!(out.seamless(), "{m} min: downtime {:?}", out.downtime);
            assert!(out.perf_during_outage.value() > 0.999);
            assert!(!out.state_lost);
        }
    }

    #[test]
    fn min_cost_crashes_with_long_downtime() {
        let out = sim(BackupConfig::min_cost(), Technique::crash()).run(minutes(0.5));
        assert!(out.feasible); // the crash is intentional
        assert!(out.state_lost);
        assert_eq!(out.final_state, FinalState::Crashed);
        // §6.1: ~400 s downtime for a 30 s outage.
        assert!(
            (out.downtime.expected.value() - 400.0).abs() < 15.0,
            "downtime {}",
            out.downtime.expected
        );
        assert_eq!(out.perf_during_outage, Fraction::ZERO);
    }

    #[test]
    fn no_dg_full_speed_dies_after_two_minutes() {
        let out = sim(BackupConfig::no_dg(), Technique::ride_through()).run(minutes(10.0));
        assert!(!out.feasible);
        assert!(out.state_lost);
        // Served roughly the first 2 battery minutes of the 10.
        let served = out.perf_during_outage.value() * 10.0;
        assert!((1.0..3.5).contains(&served), "served {served} min");
    }

    #[test]
    fn no_dg_survives_short_outage_at_full_speed() {
        let out = sim(BackupConfig::no_dg(), Technique::ride_through()).run(minutes(1.0));
        assert!(out.feasible);
        assert!(out.seamless());
    }

    #[test]
    fn large_e_ups_rides_30_minutes_at_full_performance() {
        let out = sim(BackupConfig::large_e_ups(), Technique::ride_through()).run(minutes(30.0));
        assert!(out.feasible);
        assert!(out.perf_during_outage.value() > 0.99);
        assert!(out.seamless());
    }

    #[test]
    fn sleep_keeps_downtime_near_outage_plus_resume() {
        let out = sim(BackupConfig::no_dg(), Technique::sleep_l()).run(minutes(0.5));
        assert!(out.feasible);
        assert!(!out.state_lost);
        // ~38 s for a 30 s outage (§6.2).
        assert!(
            (out.downtime.expected.value() - 38.0).abs() < 4.0,
            "downtime {}",
            out.downtime.expected
        );
    }

    #[test]
    fn hibernate_is_a_bad_idea_for_short_outages() {
        let out = sim(BackupConfig::no_dg(), Technique::hibernate()).run(minutes(0.5));
        assert!(out.feasible);
        // Save (230 s) must finish, then resume (157 s): ~390 s.
        assert!(
            (out.downtime.expected.value() - 387.0).abs() < 10.0,
            "downtime {}",
            out.downtime.expected
        );
        assert_eq!(out.final_state, FinalState::Saving);
    }

    #[test]
    fn throttle_sleep_hybrid_survives_two_hours_on_half_power_ups() {
        let technique = Technique::throttle_sleep_l(crate::technique::low_power_level());
        let out = sim(BackupConfig::small_p_large_e_ups(), technique).run(minutes(120.0));
        assert!(out.feasible, "hybrid died: {:?}", out.final_state);
        assert!(!out.state_lost);
        // It served part of the outage before sleeping.
        assert!(out.perf_during_outage.value() > 0.05);
    }

    #[test]
    fn dg_recovers_crashed_cluster_mid_outage() {
        // NoUPS: crash at t=0, DG carries a reboot ~2 min in; for a 2 h
        // outage the service is back long before utility power.
        let out = sim(BackupConfig::no_ups(), Technique::ride_through()).run(minutes(120.0));
        assert!(!out.feasible); // the crash was unplanned
        assert!(out.state_lost);
        // Recovered mid-outage: performance is well above zero.
        assert!(
            out.perf_during_outage.value() > 0.8,
            "perf {:?}",
            out.perf_during_outage
        );
        // Downtime is minutes, not the whole two hours.
        assert!(out.downtime.expected < minutes(20.0));
    }

    #[test]
    fn migration_halves_load_for_long_outages() {
        let out = sim(BackupConfig::large_e_ups(), Technique::migration()).run(minutes(60.0));
        assert!(out.feasible, "migration infeasible");
        assert!(!out.state_lost);
        // Consolidated performance is about half for most of the hour.
        let perf = out.perf_during_outage.value();
        assert!((0.4..0.75).contains(&perf), "perf {perf}");
    }

    #[test]
    fn peak_power_fraction_reflects_throttling() {
        let out = sim(BackupConfig::no_dg(), Technique::throttle_deepest()).run(minutes(2.0));
        assert!(out.feasible);
        assert!(
            out.peak_power_fraction.value() < 0.55,
            "peak fraction {:?}",
            out.peak_power_fraction
        );
    }

    #[test]
    fn zero_duration_outage_is_free() {
        let out = sim(BackupConfig::max_perf(), Technique::ride_through()).run(Seconds::ZERO);
        assert!(out.feasible && out.seamless());
        assert_eq!(out.perf_during_outage, Fraction::ONE);
    }

    #[test]
    fn no_ups_short_outage_matches_min_cost_downtime() {
        // §6.1: "In NoUPS ... the down-time is same as that for MinCost" —
        // for outages shorter than the DG transfer, state is lost and the
        // recovery dominates either way.
        let outage = Seconds::new(30.0);
        let no_ups = sim(BackupConfig::no_ups(), Technique::ride_through()).run(outage);
        let min_cost = sim(BackupConfig::min_cost(), Technique::crash()).run(outage);
        assert!(no_ups.state_lost && min_cost.state_lost);
        // Within ~the DG transfer window of each other.
        let diff = (no_ups.downtime.expected - min_cost.downtime.expected)
            .abs()
            .value();
        assert!(
            diff < 150.0,
            "NoUPS {} vs MinCost {}",
            no_ups.downtime.expected,
            min_cost.downtime.expected
        );
    }

    #[test]
    fn throttle_hibernate_hybrid_persists_before_battery_dies() {
        // Serve throttled, then hibernate with the charge reserved for the
        // save: state must be on disk when the battery gives out. The
        // battery must at least cover the ~385 s low-power save, so use a
        // half-power UPS with 8 minutes of runtime.
        let config = BackupConfig::custom(
            "UPS 50% × 8min",
            Fraction::ZERO,
            Fraction::HALF,
            Seconds::from_minutes(8.0),
        );
        let technique = Technique::throttle_hibernate(crate::technique::low_power_level());
        let out = sim(config, technique).run(minutes(60.0));
        assert!(
            out.feasible,
            "save must have completed: {:?}",
            out.final_state
        );
        assert!(!out.state_lost);
        assert!(matches!(
            out.final_state,
            FinalState::Hibernated | FinalState::Saving
        ));
        // It served a little before falling back.
        assert!(out.perf_during_outage.value() > 0.0);
    }

    #[test]
    fn throttle_hibernate_on_a_two_minute_battery_is_infeasible() {
        // The same hybrid on the base 2-minute battery cannot finish the
        // 385 s low-power save: the engine must report the failure rather
        // than pretend.
        let technique = Technique::throttle_hibernate(crate::technique::low_power_level());
        let out = sim(BackupConfig::no_dg(), technique).run(minutes(60.0));
        assert!(!out.feasible);
        assert!(out.state_lost);
    }

    #[test]
    fn proactive_hibernate_beats_plain_for_short_outages() {
        let outage = minutes(0.5);
        let plain = sim(BackupConfig::no_dg(), Technique::hibernate()).run(outage);
        let proactive = sim(BackupConfig::no_dg(), Technique::proactive_hibernate()).run(outage);
        assert!(proactive.downtime.expected < plain.downtime.expected);
    }

    #[test]
    fn consolidated_cluster_draws_about_half_power() {
        let out = sim(BackupConfig::large_e_ups(), Technique::migration()).run(minutes(40.0));
        assert!(out.feasible);
        // After the ~10-minute migration the surviving half dominates the
        // energy draw; the peak still reflects the migration spike.
        assert!(out.peak_power_fraction.value() > 0.85);
        let avg_power_fraction = out.energy.value()
            / (Cluster::rack(Workload::specjbb()).peak_power().value()
                * Seconds::from_minutes(40.0).to_hours());
        assert!(
            (0.4..0.8).contains(&avg_power_fraction),
            "avg {avg_power_fraction}"
        );
    }

    #[test]
    fn diurnal_load_changes_outcome_by_time_of_day() {
        use dcb_workload::LoadProfile;
        let workload =
            Workload::specjbb().with_load_profile(LoadProfile::typical_diurnal(Fraction::new(0.9)));
        let sim = OutageSim::new(
            Cluster::rack(workload),
            BackupConfig::no_dg(),
            Technique::ride_through(),
        );
        // A 3-minute outage at the 8 am trough fits the 2-minute-rated
        // battery (Peukert stretch at the lower load); the same outage at
        // the 8 pm peak does not.
        let trough = sim.run_at(Seconds::from_hours(8.0), minutes(3.0));
        let peak = sim.run_at(Seconds::from_hours(20.0), minutes(3.0));
        assert!(trough.feasible, "trough outage should ride through");
        assert!(!peak.feasible, "peak outage should exhaust the battery");
    }

    #[test]
    fn run_at_is_run_for_constant_load() {
        let s = sim(BackupConfig::no_dg(), Technique::ride_through());
        let a = s.run(minutes(1.5));
        let b = s.run_at(Seconds::from_hours(13.0), minutes(1.5));
        assert_eq!(a, b);
    }

    #[test]
    fn nvdimm_survives_with_no_backup_at_all() {
        // §7: NVDIMMs persist state "without the need for any external
        // backup power source" — even the MinCost (no UPS, no DG)
        // configuration keeps state.
        let out = sim(BackupConfig::min_cost(), Technique::nvdimm()).run(minutes(30.0));
        assert!(out.feasible);
        assert!(!out.state_lost);
        // Down for the outage plus the flash→DRAM restore (~22 s for 18 GB).
        let expected_restore = 18.0 * 1000.0 / 1500.0 + 10.0;
        assert!(
            (out.downtime.expected.value() - (1800.0 + expected_restore)).abs() < 5.0,
            "downtime {}",
            out.downtime.expected
        );
        assert_eq!(out.energy.value(), 0.0);
    }

    #[test]
    fn throttle_nvdimm_serves_longer_than_throttle_sleep() {
        // No sleep reserve to keep: the NVDIMM hybrid spends every joule on
        // service.
        let level = crate::technique::low_power_level();
        let config = BackupConfig::small_pups();
        let outage = minutes(30.0);
        let nvdimm = sim(config.clone(), Technique::throttle_nvdimm(level)).run(outage);
        let sleep = sim(config, Technique::throttle_sleep_l(level)).run(outage);
        assert!(nvdimm.feasible && !nvdimm.state_lost);
        assert!(
            nvdimm.perf_during_outage > sleep.perf_during_outage,
            "nvdimm {:?} vs sleep {:?}",
            nvdimm.perf_during_outage,
            sleep.perf_during_outage
        );
    }

    #[test]
    fn rdma_sleep_serves_reads_while_asleep() {
        let cluster = Cluster::rack(Workload::memcached());
        let rdma = OutageSim::new(cluster, BackupConfig::no_dg(), Technique::rdma_sleep())
            .run(minutes(30.0));
        assert!(rdma.feasible, "barely-alive load must fit the battery");
        assert!(!rdma.state_lost);
        // Perf approaches the workload's remote-serve fraction (0.35),
        // minus the brief sleep-entry window.
        let perf = rdma.perf_during_outage.value();
        assert!((0.30..=0.36).contains(&perf), "perf {perf}");
        // Plain sleep serves nothing.
        let plain = OutageSim::new(
            Cluster::rack(Workload::memcached()),
            BackupConfig::no_dg(),
            Technique::sleep_l(),
        )
        .run(minutes(30.0));
        assert_eq!(plain.perf_during_outage.value(), 0.0);
    }

    #[test]
    fn tare_fraction_takes_a_validated_fraction() {
        let base = sim(BackupConfig::no_dg(), Technique::ride_through());
        // Zero tare stretches the battery slightly further than the default.
        let no_tare = base
            .clone()
            .with_tare_fraction(Fraction::ZERO)
            .run(minutes(10.0));
        let default_tare = base.run(minutes(10.0));
        assert!(no_tare.perf_during_outage >= default_tare.perf_during_outage);
    }

    #[test]
    #[should_panic(expected = "tare must be in [0, 1)")]
    fn full_tare_fraction_rejected() {
        let _ =
            sim(BackupConfig::no_dg(), Technique::ride_through()).with_tare_fraction(Fraction::ONE);
    }
}
