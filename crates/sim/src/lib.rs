//! Outage simulation: clusters riding through power failures with the
//! paper's outage-handling techniques.
//!
//! This crate is the experimental testbed of the reproduction. Where the
//! paper subjects real servers to power-outage scenarios and records power
//! (Yokogawa meter), application performance and down time (§6), we run a
//! calibrated event-driven simulation of a [`Cluster`] backed by a
//! [`dcb_power::BackupSystem`], executing one of the [`Technique`]s of
//! Tables 4–6:
//!
//! * **sustain-execution** — [`Technique::ride_through`],
//!   [`Technique::throttle`], [`Technique::migration`] /
//!   [`Technique::proactive_migration`] (consolidate and shut down);
//! * **save-state** — [`Technique::sleep`] / [`Technique::sleep_l`],
//!   [`Technique::hibernate`] / [`Technique::hibernate_l`] /
//!   [`Technique::proactive_hibernate`];
//! * **hybrids** (Table 6) — serve throttled, then drop to sleep or
//!   hibernate when the battery runs low; or migrate first and sleep later.
//!
//! The simulation yields a [`SimOutcome`] with exactly the quantities the
//! paper's evaluation plots: peak backup power, backup energy, normalized
//! performance during the outage, down time (including the post-restoration
//! tail), and whether volatile state survived.
//!
//! # Examples
//!
//! ```
//! use dcb_power::BackupConfig;
//! use dcb_sim::{Cluster, OutageSim, Technique};
//! use dcb_units::Seconds;
//! use dcb_workload::Workload;
//!
//! let cluster = Cluster::rack(Workload::specjbb());
//! let sim = OutageSim::new(cluster, BackupConfig::large_e_ups(), Technique::ride_through());
//! let outcome = sim.run(Seconds::from_minutes(30.0));
//! // A 30-minute battery carries the full load through a 30-minute outage.
//! assert!(outcome.feasible);
//! assert!(outcome.perf_during_outage.value() > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod components;
mod datacenter;
mod engine;
mod kernel;
mod legacy;
mod outcome;
mod segment;
mod stepper;
mod technique;
mod trace;

pub use cluster::Cluster;
pub use datacenter::{Datacenter, DatacenterOutcome, Section};
pub use engine::OutageSim;
pub use outcome::{FinalState, SimOutcome};
pub use segment::{Segment, SegmentEnd, Trajectory};
pub use technique::{low_power_level, Fallback, InitialAction, Technique};
pub use trace::TraceOutcome;
