//! The engine-hosted kernel: the solver of [`kernel`](crate::kernel)
//! split into `dcb-engine` components.
//!
//! One [`Engine`] run replaces the legacy hand-rolled event loop. The
//! world is [`KernelWorld`] — the run state, the backup system, and the
//! per-cycle caches — and the components are, in registration order:
//!
//! 1. [`TechniqueController`] — owns the mode machine: instantaneous
//!    transitions in the prologue, the mode-internal timer as the hard
//!    event, the unthrottle/fallback located searches in the plan phase,
//!    and every mode transition fired by its own tokens. Publishes
//!    [`ModeChanged`] notifications on an output port.
//! 2. [`WorkloadCoupler`] — drains the mode-change port and re-derives
//!    the segment's constant load and (throughput, downtime) rates from
//!    the workload model each cycle.
//! 3. [`MigrationPlanner`] — publishes the consolidation share the
//!    migration model settled on, so the controller never calls back
//!    into the migration crate mid-run.
//! 4. [`BatteryPack`] — plans the closed-form battery-depletion /
//!    supply-overload instant and fires the shortfall crash rule.
//! 5. [`DgRamp`] — announces the DG ramp milestones up front and plans
//!    the located instant a crashed cluster finds enough ramped power to
//!    reboot.
//! 6. [`SupplySegmenter`] — observes every fired event and commits the
//!    segment `[now, fired.time]`: one exact Peukert ramp draw, the
//!    serving/downtime integrals, the committed-segment trace events,
//!    and the timer tick-down.
//!
//! Bit-identity with the legacy loop (`tests/componentized.rs`) pins the
//! mapping: the engine's `(time, class, seq)` calendar reproduces the
//! legacy candidate scan exactly — classes 0/1/2/3/4 are the legacy
//! priorities, and registration order reproduces the legacy push order
//! for the one same-class collision (shortfall before recovery). The
//! horizon clock is the legacy outage-end boundary, and the engine's
//! window pinning (hard events before located searches) is the legacy
//! `hi = boundary.0` rule that keeps `first_true` sample grids — and so
//! every root's low-order bits — unchanged.

use crate::engine::{Mode, OutageSim, RunState};
use crate::kernel::{Pending, MAX_EVENTS};
use crate::segment::{Segment, SegmentEnd};
use dcb_engine::locate::first_true;
use dcb_engine::{port, ClockSpec, Component, Ctx, Engine, EventTime, Fired, InPort, OutPort};
use dcb_power::BackupSystem;
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{contract, Fraction, Seconds, Watts};

/// Event class of the DG-crossover unthrottle (legacy priority 0).
const CLASS_UNTHROTTLE: u8 = 0;
/// Event class of the hybrid-fallback deadline (legacy priority 1).
const CLASS_FALLBACK: u8 = 1;
/// Event class of shortfall and recovery-power events (legacy priority 2).
const CLASS_SHORTFALL: u8 = 2;
/// Event class of mode-internal timers (legacy priority 3).
const CLASS_TIMER: u8 = 3;
/// Event class of the outage-end horizon (legacy priority 4).
const CLASS_END: u8 = 4;

/// Notification that the cluster's mode changed this cycle.
pub(crate) struct ModeChanged;

/// The engine world: one outage run's state and per-cycle caches.
pub(crate) struct KernelWorld<'a> {
    sim: &'a OutageSim,
    backup: &'a mut BackupSystem,
    transitions: &'a TransitionTimes,
    outage: Seconds,
    st: RunState,
    segments: Vec<Segment>,
    /// Root trace event for the scenario, parent of everything emitted.
    t_root: Option<u32>,
    /// The segment's constant supply load, refreshed by the coupler.
    load: Watts,
    /// The segment's (throughput rate, counts-as-downtime) pair.
    rates: (f64, bool),
    /// Consolidation share published by the migration planner.
    consolidated_share: Fraction,
    /// Mode transitions observed on the notification port.
    mode_changes: u64,
}

/// What a componentized run produced (the facade assembles the outcome).
pub(crate) struct KernelRun {
    /// Committed segments, tiling `[0, outage]`.
    pub(crate) segments: Vec<Segment>,
    /// Final run state.
    pub(crate) st: RunState,
}

/// Runs one outage on the engine-hosted components. `st` is the initial
/// run state (the facade resolves the technique's initial action first).
pub(crate) fn run_componentized(
    sim: &OutageSim,
    outage: Seconds,
    backup: &mut BackupSystem,
    transitions: &TransitionTimes,
    st: RunState,
) -> KernelRun {
    let (changed_tx, changed_rx) = port::<ModeChanged>();
    let mut engine: Engine<KernelWorld> = Engine::new(outage);
    let controller = engine.add_component(TechniqueController {
        changed: changed_tx,
        before: None,
    });
    engine.add_component(WorkloadCoupler {
        changes: changed_rx,
    });
    engine.add_component(MigrationPlanner);
    engine.add_component(BatteryPack);
    engine.add_component(DgRamp);
    engine.add_component(SupplySegmenter);
    engine.add_clock(
        controller,
        CLASS_END,
        Pending::End.token(),
        ClockSpec::Horizon,
    );
    engine.set_max_events(MAX_EVENTS);

    let mut world = KernelWorld {
        sim,
        backup,
        transitions,
        outage,
        st,
        segments: Vec::new(),
        t_root: None,
        load: Watts::ZERO,
        rates: (0.0, false),
        consolidated_share: Fraction::ONE,
        mode_changes: 0,
    };
    engine.run(&mut world);
    dcb_telemetry::counter!("sim.kernel.mode_transitions").add(world.mode_changes);
    KernelRun {
        segments: world.segments,
        st: world.st,
    }
}

/// Emits a technique-transition trace instant at `t` if the mode name
/// changed, and reports whether it did.
fn transition_changed(from: &'static str, to: &'static str, t: Seconds, root: Option<u32>) -> bool {
    if to == from {
        return false;
    }
    if dcb_trace::enabled() {
        dcb_trace::instant(Some(dcb_trace::micros(t)), root, || {
            dcb_trace::EventKind::TechniqueTransition {
                from: from.to_owned(),
                to: to.to_owned(),
            }
        });
    }
    true
}

/// Owns the mode machine: instantaneous transitions, mode-internal
/// timers, the unthrottle/fallback searches, and transition dispatch.
struct TechniqueController {
    changed: OutPort<ModeChanged>,
    /// Mode name captured in `observe`, compared after the fire.
    before: Option<&'static str>,
}

impl<'a> Component<KernelWorld<'a>> for TechniqueController {
    fn name(&self) -> &'static str {
        "technique-controller"
    }

    fn init(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx) {
        // Root trace event for this scenario; a pure function of the
        // configuration, emitted before anything else.
        if dcb_trace::enabled() {
            world.t_root =
                dcb_trace::instant(Some(0), None, || dcb_trace::EventKind::OutageStart {
                    config: world.sim.config().label().to_owned(),
                    technique: world.sim.technique().name().to_owned(),
                    outage_us: dcb_trace::micros(world.outage),
                });
        }
    }

    fn prologue(&mut self, world: &mut KernelWorld<'a>, ctx: &mut Ctx) {
        // Instantaneous transitions, in the stepper's per-step order.
        let t = ctx.now().seconds();
        let from = world.st.mode.name();
        world.sim.apply_instantaneous(
            &mut world.st,
            world.backup,
            world.transitions,
            t,
            world.outage,
        );
        if transition_changed(from, world.st.mode.name(), t, world.t_root) {
            self.changed.send(ModeChanged);
        }
    }

    fn hard_event(&mut self, world: &mut KernelWorld<'a>, ctx: &mut Ctx) {
        // The next mode-internal timer: known exactly, so it pins the
        // planning window. A timer landing exactly on outage end still
        // fires (class 3 beats the class-4 horizon); one beyond outage
        // end is unreachable and cedes to the horizon clock.
        let t = ctx.now().seconds();
        let timer: Option<(Seconds, Pending)> = match &world.st.mode {
            Mode::Migrating {
                remaining, pause, ..
            } => Some(if *remaining > *pause {
                (t + (*remaining - *pause), Pending::Pause)
            } else {
                (t + *remaining, Pending::TimerDone)
            }),
            Mode::EnteringSleep { remaining, .. }
            | Mode::Saving { remaining, .. }
            | Mode::Recovering { remaining } => Some((t + *remaining, Pending::TimerDone)),
            _ => None,
        };
        if let Some((at, ev)) = timer {
            if at <= world.outage {
                ctx.post(EventTime::new(at), CLASS_TIMER, ev.token());
            }
        }
    }

    fn plan(&mut self, world: &mut KernelWorld<'a>, ctx: &mut Ctx) {
        let t = ctx.now().seconds();
        let hi = ctx.window_hi().seconds();
        let sim = world.sim;
        let backup = &*world.backup;
        let load = world.load;
        if let Mode::Serving { level, share } = &world.st.mode {
            if *level != ThrottleLevel::NONE {
                let full = Mode::Serving {
                    level: ThrottleLevel::NONE,
                    share: *share,
                };
                let full_load = sim.supply_load(&full, backup);
                if let Some(tu) = first_true(t, hi, |tau| {
                    sim.project(backup, load, t, tau)
                        .endurance(full_load, tau)
                        .value()
                        .is_infinite()
                }) {
                    ctx.post(
                        EventTime::new(tu),
                        CLASS_UNTHROTTLE,
                        Pending::Unthrottle.token(),
                    );
                }
            }
        }
        if let (Mode::Serving { .. }, Some(fb)) = (&world.st.mode, sim.technique().fallback()) {
            if let Some(tf) = first_true(t, hi, |tau| {
                let probe = sim.project(backup, load, t, tau);
                sim.must_fall_back(
                    fb,
                    &probe,
                    world.transitions,
                    &world.st.mode,
                    tau,
                    world.outage,
                    Seconds::ZERO,
                )
            }) {
                ctx.post(
                    EventTime::new(tf),
                    CLASS_FALLBACK,
                    Pending::Fallback.token(),
                );
            }
        }
    }

    fn observe(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx, _fired: &Fired) {
        self.before = Some(world.st.mode.name());
    }

    fn fire(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx, fired: &Fired) {
        match Pending::from_token(fired.token) {
            Pending::End => {}
            Pending::Pause => {
                // Pin the timer to the pause length exactly so the
                // copy→pause flip is not re-found a rounding error away.
                if let Mode::Migrating {
                    remaining, pause, ..
                } = &mut world.st.mode
                {
                    *remaining = *pause;
                }
            }
            Pending::TimerDone => {
                world.st.mode = match world.st.mode {
                    Mode::Migrating { after, .. } => Mode::Serving {
                        level: after,
                        share: world.consolidated_share,
                    },
                    Mode::EnteringSleep { .. } => world.sim.sleep_target(),
                    Mode::Saving { level, .. } => Mode::Hibernated {
                        saved_throttled: level != ThrottleLevel::NONE,
                    },
                    Mode::Recovering { .. } => Mode::Serving {
                        level: ThrottleLevel::NONE,
                        share: Fraction::ONE,
                    },
                    other => other,
                };
            }
            Pending::Unthrottle => {
                if let Mode::Serving { share, .. } = world.st.mode {
                    world.st.mode = Mode::Serving {
                        level: ThrottleLevel::NONE,
                        share,
                    };
                }
            }
            Pending::Fallback => {
                if let Some(fb) = world.sim.technique().fallback() {
                    world.st.mode = world.sim.fallback_mode(fb, world.transitions);
                }
            }
            Pending::Shortfall | Pending::RecoveryReady => {
                contract!(false, "token {} is not a controller event", fired.token);
            }
        }
    }

    fn epilogue(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx, fired: &Fired) {
        let Some(from) = self.before.take() else {
            return;
        };
        if transition_changed(
            from,
            world.st.mode.name(),
            fired.time.seconds(),
            world.t_root,
        ) {
            self.changed.send(ModeChanged);
        }
    }
}

/// Re-derives the workload-facing caches each cycle and tallies the
/// mode-change notifications from the controller's port.
struct WorkloadCoupler {
    changes: InPort<ModeChanged>,
}

impl<'a> Component<KernelWorld<'a>> for WorkloadCoupler {
    fn name(&self) -> &'static str {
        "workload-coupler"
    }

    fn sync(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx) {
        world.mode_changes += self.changes.drain().len() as u64;
        world.load = world.sim.supply_load(&world.st.mode, world.backup);
        world.rates = world.sim.mode_rates(&world.st.mode);
    }

    fn fire(&mut self, _world: &mut KernelWorld<'a>, _ctx: &mut Ctx, fired: &Fired) {
        contract!(
            false,
            "workload coupler posts no events (token {})",
            fired.token
        );
    }

    fn epilogue(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx, _fired: &Fired) {
        // Post-fire transitions land here (the controller's epilogue runs
        // first), so the tally is complete every cycle.
        world.mode_changes += self.changes.drain().len() as u64;
    }
}

/// Publishes the consolidation share the migration model settled on.
struct MigrationPlanner;

impl<'a> Component<KernelWorld<'a>> for MigrationPlanner {
    fn name(&self) -> &'static str {
        "migration-planner"
    }

    fn init(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx) {
        world.consolidated_share = world.sim.consolidated_share();
    }

    fn fire(&mut self, _world: &mut KernelWorld<'a>, _ctx: &mut Ctx, fired: &Fired) {
        contract!(
            false,
            "migration planner posts no events (token {})",
            fired.token
        );
    }
}

/// Plans the closed-form shortfall instant and fires the crash rule.
struct BatteryPack;

impl<'a> Component<KernelWorld<'a>> for BatteryPack {
    fn name(&self) -> &'static str {
        "battery-pack"
    }

    fn plan(&mut self, world: &mut KernelWorld<'a>, ctx: &mut Ctx) {
        let t = ctx.now().seconds();
        let hi = ctx.window_hi().seconds();
        if let Some(ts) = world.backup.first_shortfall(world.load, t, hi) {
            ctx.post(
                EventTime::new(ts.max(t)),
                CLASS_SHORTFALL,
                Pending::Shortfall.token(),
            );
        }
    }

    fn fire(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx, _fired: &Fired) {
        world.sim.apply_shortfall(&mut world.st);
    }
}

/// Announces the DG ramp milestones and plans crash-recovery power.
struct DgRamp;

impl<'a> Component<KernelWorld<'a>> for DgRamp {
    fn name(&self) -> &'static str {
        "dg-ramp"
    }

    fn init(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx) {
        // DG ramp milestones are a pure function of time: emitted up
        // front, parented to the controller's root (already claimed —
        // the controller registers first).
        if !dcb_trace::enabled() {
            return;
        }
        if let Some(dg) = world.backup.dg() {
            let mut milestones = vec![
                ("engine_start", dg.start_delay()),
                ("full_power", dg.transfer_complete()),
            ];
            if let Some(fuel) = dg.fuel_runtime() {
                milestones.push(("fuel_exhausted", fuel));
            }
            for (phase, at) in milestones {
                if at <= world.outage {
                    dcb_trace::instant(Some(dcb_trace::micros(at)), world.t_root, || {
                        dcb_trace::EventKind::DgRampPhase {
                            phase: phase.to_owned(),
                        }
                    });
                }
            }
        }
    }

    fn plan(&mut self, world: &mut KernelWorld<'a>, ctx: &mut Ctx) {
        // A sufficiently ramped DG lets a crashed cluster reboot
        // mid-outage (NoUPS: "DG translates long outages into short
        // ones"). Planned after the battery pack so a dead-even tie with
        // a shortfall resolves the way the legacy push order did.
        if !matches!(world.st.mode, Mode::Crashed) {
            return;
        }
        let t = ctx.now().seconds();
        let hi = ctx.window_hi().seconds();
        let reboot_load = world.sim.supply_load(
            &Mode::Recovering {
                remaining: Seconds::ZERO,
            },
            world.backup,
        );
        let backup = &*world.backup;
        if let Some(tr) = first_true(t, hi, |tau| backup.available_power(tau) >= reboot_load) {
            ctx.post(
                EventTime::new(tr),
                CLASS_SHORTFALL,
                Pending::RecoveryReady.token(),
            );
        }
    }

    fn fire(&mut self, world: &mut KernelWorld<'a>, _ctx: &mut Ctx, _fired: &Fired) {
        world.st.crash_recovery_engaged = true;
        world.st.mode = Mode::Recovering {
            remaining: world.sim.expected_recovery(),
        };
    }
}

/// Commits the segment `[now, fired.time]` on every fired event: one
/// exact Peukert ramp draw, the serving/downtime integrals, the trace
/// record, and the timer tick-down.
struct SupplySegmenter;

impl<'a> Component<KernelWorld<'a>> for SupplySegmenter {
    fn name(&self) -> &'static str {
        "supply-segmenter"
    }

    fn observe(&mut self, world: &mut KernelWorld<'a>, ctx: &mut Ctx, fired: &Fired) {
        let t = ctx.now().seconds();
        let end = fired.time.seconds();
        if end <= t {
            return; // zero-width event: nothing to commit
        }
        let what = Pending::from_token(fired.token);
        let load = world.load;
        let sustained = world.backup.supply_segment(load, t, end);
        contract!(
            ((end - t) - sustained).value().abs() < 1e-3,
            "segment [{t}, {end}] not fully sustained: {sustained}"
        );
        let (rate, down) = world.rates;
        world.st.serving_integral += rate * (end - t).value();
        if down {
            world.st.downtime += end - t;
        }
        let ended_by = match what {
            Pending::Unthrottle => SegmentEnd::DgCrossover,
            Pending::Fallback => SegmentEnd::HybridFallback,
            Pending::Shortfall => match world.backup.ups() {
                Some(u) if u.is_depleted() => SegmentEnd::BatteryDepleted,
                _ => SegmentEnd::SupplyOverload,
            },
            Pending::Pause => SegmentEnd::MigrationPause,
            Pending::TimerDone => SegmentEnd::TimerExpired,
            Pending::RecoveryReady => SegmentEnd::RecoveryPower,
            Pending::End => SegmentEnd::OutageEnd,
        };
        world.segments.push(Segment {
            start: t,
            end,
            load,
            throughput: rate,
            in_downtime: down,
            ended_by,
        });
        if dcb_trace::enabled() {
            let start_us = dcb_trace::micros(t);
            let end_us = dcb_trace::micros(end);
            dcb_trace::complete(
                start_us,
                end_us.saturating_sub(start_us),
                world.t_root,
                || dcb_trace::EventKind::SegmentCommit {
                    end_cause: ended_by.as_str().to_owned(),
                    load_mw: (load.value() * 1e3).round() as u64,
                    throughput_pm: (rate * 1e3).round() as u64,
                    in_downtime: down,
                },
            );
            if ended_by == SegmentEnd::BatteryDepleted {
                dcb_trace::instant(Some(end_us), world.t_root, || {
                    dcb_trace::EventKind::BatteryDeplete
                });
            }
        }
        // Timers tick down by the committed span.
        let elapsed = end - t;
        match &mut world.st.mode {
            Mode::Migrating { remaining, .. }
            | Mode::EnteringSleep { remaining, .. }
            | Mode::Saving { remaining, .. }
            | Mode::Recovering { remaining } => *remaining -= elapsed,
            _ => {}
        }
    }

    fn fire(&mut self, _world: &mut KernelWorld<'a>, _ctx: &mut Ctx, fired: &Fired) {
        contract!(
            false,
            "supply segmenter posts no events (token {})",
            fired.token
        );
    }
}
