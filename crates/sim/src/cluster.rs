//! Clusters: homogeneous groups of servers running one workload.

use dcb_server::ServerSpec;
use dcb_units::Watts;
use dcb_workload::Workload;

/// A homogeneous cluster: `size` identical servers each hosting one
/// instance of the same workload (the paper's per-application evaluations
/// scale a single instrumented server up to the rack/datacenter level).
///
/// ```
/// use dcb_sim::Cluster;
/// use dcb_workload::Workload;
///
/// let c = Cluster::rack(Workload::memcached());
/// assert_eq!(c.size(), 16);
/// assert_eq!(c.peak_power().value(), 16.0 * 250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cluster {
    size: u32,
    spec: ServerSpec,
    workload: Workload,
}

impl Cluster {
    /// A rack of 16 paper-testbed servers.
    #[must_use]
    pub fn rack(workload: Workload) -> Self {
        Self::new(16, ServerSpec::paper_testbed(), workload)
    }

    /// A cluster of `size` servers of the given spec.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u32, spec: ServerSpec, workload: Workload) -> Self {
        assert!(size > 0, "cluster needs at least one server");
        Self {
            size,
            spec,
            workload,
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The server specification.
    #[must_use]
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// The hosted workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Aggregate nameplate peak power — what the backup infrastructure is
    /// provisioned against.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.spec.peak_power() * f64::from(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_scales_with_size() {
        let one = Cluster::new(1, ServerSpec::paper_testbed(), Workload::specjbb());
        let many = Cluster::new(40, ServerSpec::paper_testbed(), Workload::specjbb());
        assert_eq!(many.peak_power().value(), 40.0 * one.peak_power().value());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = Cluster::new(0, ServerSpec::paper_testbed(), Workload::specjbb());
    }
}
