//! Whole-datacenter simulation: heterogeneous sections under one outage.
//!
//! §7: "Multiple datacenters or sections in a datacenter could have
//! different backup configurations, in the spectrum of cost-performability
//! choices we outlined." With the paper's rack-level UPS placement, each
//! section's racks carry their own battery slice and the facility DG is
//! provisioned proportionally, so sections ride an outage independently;
//! this module composes per-section simulations into facility-level
//! metrics (capacity-weighted performance, worst downtime, aggregate
//! energy).

use crate::{Cluster, OutageSim, SimOutcome, Technique};
use dcb_power::BackupConfig;
use dcb_units::{Fraction, Seconds, WattHours, Watts};

/// One section of a datacenter: a cluster, the backup configuration its
/// racks carry, and the technique it executes during outages.
#[derive(Debug, Clone)]
pub struct Section {
    /// A short name for reporting.
    pub name: String,
    /// The section's servers and workload.
    pub cluster: Cluster,
    /// The backup provisioned for this section (fractions of the section's
    /// own peak).
    pub config: BackupConfig,
    /// The outage-handling technique this section runs.
    pub technique: Technique,
}

/// A heterogeneous datacenter.
#[derive(Debug, Clone, Default)]
pub struct Datacenter {
    sections: Vec<Section>,
}

/// The facility-level outcome of one outage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatacenterOutcome {
    /// Per-section outcomes, in section order.
    pub sections: Vec<(String, SimOutcome)>,
    /// Peak-power-weighted average performance during the outage.
    pub perf_during_outage: Fraction,
    /// The worst per-section expected downtime.
    pub worst_downtime: Seconds,
    /// Aggregate backup energy drawn.
    pub energy: WattHours,
    /// Whether every section executed its technique to plan.
    pub all_feasible: bool,
    /// Number of sections that lost volatile state.
    pub sections_losing_state: usize,
}

impl Datacenter {
    /// An empty datacenter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a section (builder style).
    #[must_use]
    pub fn with_section(
        mut self,
        name: impl Into<String>,
        cluster: Cluster,
        config: BackupConfig,
        technique: Technique,
    ) -> Self {
        self.sections.push(Section {
            name: name.into(),
            cluster,
            config,
            technique,
        });
        self
    }

    /// The sections.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Total nameplate peak across sections.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.sections.iter().map(|s| s.cluster.peak_power()).sum()
    }

    /// Simulates one outage hitting the whole facility at absolute time
    /// `start` (diurnal sections resolve their load at that hour).
    ///
    /// # Panics
    ///
    /// Panics if the datacenter has no sections.
    #[must_use]
    pub fn run_at(&self, start: Seconds, outage: Seconds) -> DatacenterOutcome {
        assert!(!self.sections.is_empty(), "datacenter has no sections");
        let mut outcomes = Vec::with_capacity(self.sections.len());
        let total_peak = self.peak_power();
        let mut weighted_perf = 0.0;
        let mut worst_downtime = Seconds::ZERO;
        let mut energy = WattHours::ZERO;
        let mut all_feasible = true;
        let mut losses = 0usize;
        for section in &self.sections {
            let sim = OutageSim::new(
                section.cluster,
                section.config.clone(),
                section.technique.clone(),
            );
            let outcome = sim.run_at(start, outage);
            let weight = section.cluster.peak_power() / total_peak;
            weighted_perf += outcome.perf_during_outage.value() * weight;
            worst_downtime = worst_downtime.max(outcome.downtime.expected);
            energy += outcome.energy;
            all_feasible &= outcome.feasible;
            losses += usize::from(outcome.state_lost);
            outcomes.push((section.name.clone(), outcome));
        }
        DatacenterOutcome {
            sections: outcomes,
            perf_during_outage: Fraction::new(weighted_perf),
            worst_downtime,
            energy,
            all_feasible,
            sections_losing_state: losses,
        }
    }

    /// Simulates an outage starting at t = 0.
    #[must_use]
    pub fn run(&self, outage: Seconds) -> DatacenterOutcome {
        self.run_at(Seconds::ZERO, outage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn mixed() -> Datacenter {
        Datacenter::new()
            .with_section(
                "frontend",
                Cluster::rack(Workload::web_search()),
                BackupConfig::large_e_ups(),
                Technique::ride_through(),
            )
            .with_section(
                "cache",
                Cluster::rack(Workload::memcached()),
                BackupConfig::small_pups(),
                Technique::sleep_l(),
            )
            .with_section(
                "batch",
                Cluster::rack(Workload::spec_cpu()),
                BackupConfig::small_pups(),
                Technique::throttle_sleep_l(crate::technique::low_power_level()),
            )
    }

    #[test]
    fn sections_ride_the_same_outage_differently() {
        let outcome = mixed().run(Seconds::from_minutes(20.0));
        assert!(outcome.all_feasible);
        assert_eq!(outcome.sections_losing_state, 0);
        let frontend = &outcome.sections[0].1;
        let cache = &outcome.sections[1].1;
        // The frontend keeps serving; the cache sleeps.
        assert!(frontend.perf_during_outage.value() > 0.99);
        assert_eq!(cache.perf_during_outage.value(), 0.0);
        // Facility-level perf is the capacity-weighted blend.
        let perf = outcome.perf_during_outage.value();
        assert!(perf > 0.3 && perf < 0.99, "blended perf {perf}");
    }

    #[test]
    fn worst_downtime_tracks_the_weakest_section() {
        let outcome = mixed().run(Seconds::from_minutes(20.0));
        let cache_downtime = outcome.sections[1].1.downtime.expected;
        assert!(outcome.worst_downtime >= cache_downtime);
    }

    #[test]
    fn peak_power_sums_sections() {
        let dc = mixed();
        assert_eq!(dc.peak_power().value(), 3.0 * 16.0 * 250.0);
        assert_eq!(dc.sections().len(), 3);
    }

    #[test]
    #[should_panic(expected = "no sections")]
    fn empty_datacenter_rejected() {
        let _ = Datacenter::new().run(Seconds::new(30.0));
    }
}
