//! The event-driven piecewise-analytic solver: public facade and shared
//! transition rules.
//!
//! Between events the cluster's mode — hence its load — is constant, so
//! the outage advances segment by segment instead of step by step. Each
//! iteration finds the earliest of:
//!
//! * a mode-internal timer expiry (sleep entered, save finished, migration
//!   copy→pause switch or completion, recovery booted) — known exactly;
//! * the battery-depletion or supply-overload instant for the current
//!   load, solved in closed form by
//!   [`BackupSystem::first_shortfall`](dcb_power::BackupSystem::first_shortfall);
//! * the DG-ramp crossover after which throttling serves no purpose;
//! * the latest safe instant for a hybrid technique to fall back to its
//!   save-state plan;
//! * the instant a crashed cluster finds enough backup power to reboot;
//! * outage end.
//!
//! Since the `dcb-engine` extraction the solver itself is hosted as a set
//! of engine components — see [`components`](crate::components) for the
//! battery pack, DG ramp, supply segmenter, technique controller, and
//! workload/migration couplers, and [`legacy`](crate::legacy) for the
//! original hand-rolled loop kept as a bit-identity oracle. This module
//! keeps the stable entry points ([`OutageSim::run_trajectory`] and
//! friends) and the transition rules both hosts share: the instantaneous
//! mode checks, the shortfall crash rule, the charge-projected probe
//! behind located-event searches, and the per-end-cause telemetry.

use crate::components;
use crate::engine::{Mode, OutageSim, RunState};
use crate::segment::{Segment, SegmentEnd, Trajectory};
use crate::Fallback;
use dcb_power::BackupSystem;
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{contract, Fraction, Seconds, Watts};

/// Event budget per outage. Real trajectories resolve in well under a
/// hundred events; the cap is a modeling-bug backstop, not a tuning knob.
pub(crate) const MAX_EVENTS: u32 = 10_000;

/// The per-end-cause telemetry counter for a committed segment. The match
/// keeps each name at a fixed call site so the `counter!` cache applies.
pub(crate) fn segment_end_counter(end: SegmentEnd) -> &'static dcb_telemetry::Counter {
    match end {
        SegmentEnd::OutageEnd => dcb_telemetry::counter!("sim.kernel.end.outage_end"),
        SegmentEnd::TimerExpired => dcb_telemetry::counter!("sim.kernel.end.timer_expired"),
        SegmentEnd::MigrationPause => dcb_telemetry::counter!("sim.kernel.end.migration_pause"),
        SegmentEnd::BatteryDepleted => dcb_telemetry::counter!("sim.kernel.end.battery_depleted"),
        SegmentEnd::SupplyOverload => dcb_telemetry::counter!("sim.kernel.end.supply_overload"),
        SegmentEnd::DgCrossover => dcb_telemetry::counter!("sim.kernel.end.dg_crossover"),
        SegmentEnd::HybridFallback => dcb_telemetry::counter!("sim.kernel.end.hybrid_fallback"),
        SegmentEnd::RecoveryPower => dcb_telemetry::counter!("sim.kernel.end.recovery_power"),
    }
}

/// What ends the segment under construction. Shared by the engine-hosted
/// components (as the event token) and the legacy oracle loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// Restore full speed: the DG now carries the unthrottled load.
    Unthrottle,
    /// Latest safe instant to enter the hybrid fallback.
    Fallback,
    /// Battery depletion or supply overload.
    Shortfall,
    /// Migration copy phase gives way to the stop-and-copy pause.
    Pause,
    /// A mode-internal timer expired.
    TimerDone,
    /// A crashed cluster found enough power to reboot.
    RecoveryReady,
    /// Utility power returned.
    End,
}

impl Pending {
    /// The calendar token encoding of this event kind.
    pub(crate) const fn token(self) -> u64 {
        match self {
            Pending::Unthrottle => 0,
            Pending::Fallback => 1,
            Pending::Shortfall => 2,
            Pending::Pause => 3,
            Pending::TimerDone => 4,
            Pending::RecoveryReady => 5,
            Pending::End => 6,
        }
    }

    /// Decodes a calendar token posted by one of the kernel components.
    pub(crate) fn from_token(token: u64) -> Pending {
        match token {
            0 => Pending::Unthrottle,
            1 => Pending::Fallback,
            2 => Pending::Shortfall,
            3 => Pending::Pause,
            4 => Pending::TimerDone,
            5 => Pending::RecoveryReady,
            _ => {
                contract!(token == 6, "unknown kernel event token {token}");
                Pending::End
            }
        }
    }
}

impl OutageSim {
    /// Runs the event-driven solver against a fresh backup system and
    /// returns the full segment trajectory alongside the outcome.
    #[must_use]
    pub fn run_trajectory(&self, outage: Seconds) -> Trajectory {
        let mut backup = self.config().instantiate(self.cluster().peak_power());
        self.run_with_backup_trajectory(outage, &mut backup)
    }

    /// Runs the event-driven solver against an existing backup system,
    /// preserving its battery state of charge, and returns the full
    /// segment trajectory alongside the outcome.
    ///
    /// Hosted on the `dcb-engine` component core; asserted bit-identical
    /// to [`OutageSim::run_with_backup_trajectory_legacy`] by the
    /// componentized differential suite.
    ///
    /// # Panics
    ///
    /// Panics if `outage` is negative or non-finite.
    #[must_use]
    pub fn run_with_backup_trajectory(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
    ) -> Trajectory {
        assert!(
            outage.value() >= 0.0 && outage.is_finite(),
            "outage must be finite and non-negative"
        );
        let transitions = TransitionTimes::new(*self.cluster().spec());
        let (mode, state_lost) = self.initial_mode(&transitions);
        let st = RunState {
            mode,
            state_lost,
            unplanned_crash: false,
            crash_recovery_engaged: false,
            serving_integral: 0.0,
            downtime: Seconds::ZERO,
        };
        let run = components::run_componentized(self, outage, backup, &transitions, st);
        self.finish_trajectory(outage, run.st, backup, &transitions, run.segments)
    }

    /// Assembles, validates, and counts a finished trajectory — the
    /// telemetry tail both kernel hosts share.
    pub(crate) fn finish_trajectory(
        &self,
        outage: Seconds,
        st: RunState,
        backup: &mut BackupSystem,
        transitions: &TransitionTimes,
        segments: Vec<Segment>,
    ) -> Trajectory {
        let outcome = self.assemble(outage, st, backup, transitions);
        let trajectory = Trajectory { segments, outcome };
        trajectory.validate();
        dcb_telemetry::counter!("sim.kernel.outages").incr();
        dcb_telemetry::counter!("sim.kernel.segments").add(trajectory.segments.len() as u64);
        dcb_telemetry::histogram!("sim.kernel.segments_per_outage")
            .observe(trajectory.segments.len() as u64);
        for segment in &trajectory.segments {
            segment_end_counter(segment.ended_by).incr();
        }
        if dcb_prof::enabled() {
            // Segments attribute per end cause; the per-cause sum equals
            // `sim.kernel.segments`, so the profile reconciles exactly.
            let _kernel = dcb_prof::frame("sim-kernel");
            for segment in &trajectory.segments {
                let _cause = dcb_prof::frame(segment.ended_by.as_str());
                dcb_prof::record(dcb_prof::WorkKind::Segments, 1);
            }
        }
        trajectory
    }

    /// Zero-duration transitions checked at the current instant, in the
    /// stepper's per-step order: unthrottle, hybrid fallback, crash
    /// recovery.
    pub(crate) fn apply_instantaneous(
        &self,
        st: &mut RunState,
        backup: &BackupSystem,
        transitions: &TransitionTimes,
        t: Seconds,
        outage: Seconds,
    ) {
        if let Mode::Serving { level, share } = &st.mode {
            if *level != ThrottleLevel::NONE {
                let full = Mode::Serving {
                    level: ThrottleLevel::NONE,
                    share: *share,
                };
                let full_load = self.supply_load(&full, backup);
                if backup.endurance(full_load, t).value().is_infinite() {
                    st.mode = full;
                }
            }
        }
        if let (Mode::Serving { .. }, Some(fb)) = (&st.mode, self.technique().fallback()) {
            if self.must_fall_back(fb, backup, transitions, &st.mode, t, outage, Seconds::ZERO) {
                st.mode = self.fallback_mode(fb, transitions);
            }
        }
        if matches!(st.mode, Mode::Crashed) {
            let reboot_load = self.supply_load(
                &Mode::Recovering {
                    remaining: Seconds::ZERO,
                },
                backup,
            );
            if backup.available_power(t) >= reboot_load {
                st.crash_recovery_engaged = true;
                st.mode = Mode::Recovering {
                    remaining: self.expected_recovery(),
                };
            }
        }
    }

    /// The stepper's supply-failure transition, fired at the exact
    /// shortfall instant.
    pub(crate) fn apply_shortfall(&self, st: &mut RunState) {
        match st.mode {
            Mode::Hibernated { .. } | Mode::Crashed | Mode::NvdimmPersisted => {
                // Zero-load modes cannot actually get here, but be safe:
                // nothing more to lose.
            }
            Mode::Recovering { .. } => {
                st.mode = Mode::Crashed; // power went away mid-reboot
            }
            Mode::Serving { .. }
                if matches!(self.technique().fallback(), Some(Fallback::Nvdimm)) =>
            {
                // The in-DIMM supercapacitors flush state as power
                // collapses: planned, nothing lost.
                st.mode = Mode::NvdimmPersisted;
            }
            _ => {
                // Losing state that was still intact is an unplanned
                // failure of the technique; re-crashing a cluster whose
                // state was already gone adds nothing the plan had
                // promised to keep.
                if !st.state_lost {
                    st.unplanned_crash = true;
                }
                st.state_lost = true;
                st.mode = Mode::Crashed;
            }
        }
    }

    /// The backup system as it will stand at `to`, assuming `load` is
    /// drawn from `from` — the probe behind predicate-shaped event
    /// searches. Only the battery charge is projected; DG availability is
    /// a pure function of time.
    pub(crate) fn project(
        &self,
        backup: &BackupSystem,
        load: Watts,
        from: Seconds,
        to: Seconds,
    ) -> BackupSystem {
        let charge_now = backup.ups().map_or(0.0, |u| u.charge().value());
        let used = backup.charge_used_for(load, from, to);
        backup.with_ups_charge(Fraction::new((charge_now - used).max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, Technique};
    use dcb_power::BackupConfig;
    use dcb_workload::Workload;

    fn sim(config: BackupConfig, technique: Technique) -> OutageSim {
        OutageSim::new(Cluster::rack(Workload::specjbb()), config, technique)
    }

    #[test]
    fn trajectory_resolves_in_few_segments() {
        let traj = sim(BackupConfig::max_perf(), Technique::ride_through())
            .run_trajectory(Seconds::from_minutes(120.0));
        // Constant serving load through the whole outage: a handful of
        // segments, not 7200 steps.
        assert!(
            traj.segments.len() <= 4,
            "expected O(#events) segments, got {}",
            traj.segments.len()
        );
        assert!(matches!(
            traj.segments.last().map(|s| s.ended_by),
            Some(SegmentEnd::OutageEnd)
        ));
    }

    #[test]
    fn depletion_shows_up_as_an_event() {
        let traj = sim(BackupConfig::no_dg(), Technique::ride_through())
            .run_trajectory(Seconds::from_minutes(10.0));
        assert!(
            traj.segments
                .iter()
                .any(|s| s.ended_by == SegmentEnd::BatteryDepleted),
            "segments: {:?}",
            traj.segments
        );
        assert!(!traj.outcome.feasible);
    }

    #[test]
    fn hybrid_fallback_is_a_located_event() {
        let technique = Technique::throttle_sleep_l(crate::technique::low_power_level());
        let traj = sim(BackupConfig::small_p_large_e_ups(), technique)
            .run_trajectory(Seconds::from_minutes(120.0));
        assert!(
            traj.segments
                .iter()
                .any(|s| s.ended_by == SegmentEnd::HybridFallback),
            "segments: {:?}",
            traj.segments
        );
        assert!(traj.outcome.feasible);
    }

    #[test]
    fn crashed_cluster_recovery_is_a_located_event() {
        let traj = sim(BackupConfig::no_ups(), Technique::ride_through())
            .run_trajectory(Seconds::from_minutes(120.0));
        let kinds: Vec<SegmentEnd> = traj.segments.iter().map(|s| s.ended_by).collect();
        assert!(
            kinds.contains(&SegmentEnd::RecoveryPower) && kinds.contains(&SegmentEnd::TimerExpired),
            "kinds: {kinds:?}"
        );
        assert!(traj.outcome.perf_during_outage.value() > 0.8);
    }

    #[test]
    fn segments_tile_the_outage_exactly() {
        for technique in [
            Technique::ride_through(),
            Technique::sleep_l(),
            Technique::hibernate(),
            Technique::migration(),
        ] {
            let traj = sim(BackupConfig::large_e_ups(), technique)
                .run_trajectory(Seconds::from_minutes(45.0));
            let mut cursor = Seconds::ZERO;
            for seg in &traj.segments {
                assert!((seg.start - cursor).value().abs() < 1e-6);
                assert!(seg.duration().value() >= 0.0);
                cursor = seg.end;
            }
            assert!((cursor.value() - 45.0 * 60.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pending_tokens_round_trip() {
        for pending in [
            Pending::Unthrottle,
            Pending::Fallback,
            Pending::Shortfall,
            Pending::Pause,
            Pending::TimerDone,
            Pending::RecoveryReady,
            Pending::End,
        ] {
            assert_eq!(Pending::from_token(pending.token()), pending);
        }
    }
}
