//! The event-driven piecewise-analytic solver.
//!
//! Between events the cluster's mode — hence its load — is constant, so
//! the outage advances segment by segment instead of step by step. Each
//! iteration finds the earliest of:
//!
//! * a mode-internal timer expiry (sleep entered, save finished, migration
//!   copy→pause switch or completion, recovery booted) — known exactly;
//! * the battery-depletion or supply-overload instant for the current
//!   load, solved in closed form by
//!   [`BackupSystem::first_shortfall`](dcb_power::BackupSystem::first_shortfall);
//! * the DG-ramp crossover after which throttling serves no purpose;
//! * the latest safe instant for a hybrid technique to fall back to its
//!   save-state plan;
//! * the instant a crashed cluster finds enough backup power to reboot;
//! * outage end.
//!
//! The two predicate-shaped events (unthrottle, hybrid fallback) are
//! located by [`first_true`] over charge-projected probes of the backup
//! system; everything else falls out of the analytic supply model. The
//! segment then commits through
//! [`BackupSystem::supply_segment`](dcb_power::BackupSystem::supply_segment)
//! — an exact Peukert ramp integral, not a sum of steps — and the mode
//! transition fires. Results match the fixed-step oracle in
//! [`stepper`](crate::OutageSim::run_stepped) as its step shrinks.

use crate::engine::{Mode, OutageSim, RunState};
use crate::events::first_true;
use crate::segment::{Segment, SegmentEnd, Trajectory};
use crate::Fallback;
use dcb_power::BackupSystem;
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{contract, Fraction, Seconds, Watts};

/// Event budget per outage. Real trajectories resolve in well under a
/// hundred events; the cap is a modeling-bug backstop, not a tuning knob.
const MAX_EVENTS: u32 = 10_000;

/// The per-end-cause telemetry counter for a committed segment. The match
/// keeps each name at a fixed call site so the `counter!` cache applies.
fn segment_end_counter(end: SegmentEnd) -> &'static dcb_telemetry::Counter {
    match end {
        SegmentEnd::OutageEnd => dcb_telemetry::counter!("sim.kernel.end.outage_end"),
        SegmentEnd::TimerExpired => dcb_telemetry::counter!("sim.kernel.end.timer_expired"),
        SegmentEnd::MigrationPause => dcb_telemetry::counter!("sim.kernel.end.migration_pause"),
        SegmentEnd::BatteryDepleted => dcb_telemetry::counter!("sim.kernel.end.battery_depleted"),
        SegmentEnd::SupplyOverload => dcb_telemetry::counter!("sim.kernel.end.supply_overload"),
        SegmentEnd::DgCrossover => dcb_telemetry::counter!("sim.kernel.end.dg_crossover"),
        SegmentEnd::HybridFallback => dcb_telemetry::counter!("sim.kernel.end.hybrid_fallback"),
        SegmentEnd::RecoveryPower => dcb_telemetry::counter!("sim.kernel.end.recovery_power"),
    }
}

/// What ends the segment under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// Restore full speed: the DG now carries the unthrottled load.
    Unthrottle,
    /// Latest safe instant to enter the hybrid fallback.
    Fallback,
    /// Battery depletion or supply overload.
    Shortfall,
    /// Migration copy phase gives way to the stop-and-copy pause.
    Pause,
    /// A mode-internal timer expired.
    TimerDone,
    /// A crashed cluster found enough power to reboot.
    RecoveryReady,
    /// Utility power returned.
    End,
}

impl OutageSim {
    /// Runs the event-driven solver against a fresh backup system and
    /// returns the full segment trajectory alongside the outcome.
    #[must_use]
    pub fn run_trajectory(&self, outage: Seconds) -> Trajectory {
        let mut backup = self.config().instantiate(self.cluster().peak_power());
        self.run_with_backup_trajectory(outage, &mut backup)
    }

    /// Runs the event-driven solver against an existing backup system,
    /// preserving its battery state of charge, and returns the full
    /// segment trajectory alongside the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `outage` is negative or non-finite.
    #[must_use]
    pub fn run_with_backup_trajectory(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
    ) -> Trajectory {
        assert!(
            outage.value() >= 0.0 && outage.is_finite(),
            "outage must be finite and non-negative"
        );
        // Root trace event for this scenario plus the DG ramp milestones,
        // which are a pure function of time and can be emitted up front.
        let t_root = if dcb_trace::enabled() {
            let root = dcb_trace::instant(Some(0), None, || dcb_trace::EventKind::OutageStart {
                config: self.config().label().to_owned(),
                technique: self.technique().name().to_owned(),
                outage_us: dcb_trace::micros(outage),
            });
            if let Some(dg) = backup.dg() {
                let mut milestones = vec![
                    ("engine_start", dg.start_delay()),
                    ("full_power", dg.transfer_complete()),
                ];
                if let Some(fuel) = dg.fuel_runtime() {
                    milestones.push(("fuel_exhausted", fuel));
                }
                for (phase, at) in milestones {
                    if at <= outage {
                        dcb_trace::instant(Some(dcb_trace::micros(at)), root, || {
                            dcb_trace::EventKind::DgRampPhase {
                                phase: phase.to_owned(),
                            }
                        });
                    }
                }
            }
            root
        } else {
            None
        };

        let transitions = TransitionTimes::new(*self.cluster().spec());
        let (mode, state_lost) = self.initial_mode(&transitions);
        let mut st = RunState {
            mode,
            state_lost,
            unplanned_crash: false,
            crash_recovery_engaged: false,
            serving_integral: 0.0,
            downtime: Seconds::ZERO,
        };
        let mut segments: Vec<Segment> = Vec::new();
        let mut t = Seconds::ZERO;
        let mut events = 0u32;
        while t < outage {
            events += 1;
            contract!(
                events <= MAX_EVENTS,
                "event budget exceeded at t={t} in mode {:?}",
                st.mode
            );
            if events > MAX_EVENTS {
                break; // modeling-bug backstop; the contract above reports it
            }

            // Instantaneous transitions, in the stepper's per-step order.
            let before = dcb_trace::enabled().then(|| st.mode.name());
            self.apply_instantaneous(&mut st, backup, &transitions, t, outage);
            if let Some(from) = before {
                let to = st.mode.name();
                if to != from {
                    dcb_trace::instant(Some(dcb_trace::micros(t)), t_root, || {
                        dcb_trace::EventKind::TechniqueTransition {
                            from: from.to_owned(),
                            to: to.to_owned(),
                        }
                    });
                }
            }

            // The segment's constant load, and the hard boundary: the next
            // mode-internal timer, or outage end.
            let load = self.supply_load(&st.mode, backup);
            let timer: Option<(Seconds, Pending)> = match &st.mode {
                Mode::Migrating {
                    remaining, pause, ..
                } => Some(if *remaining > *pause {
                    (t + (*remaining - *pause), Pending::Pause)
                } else {
                    (t + *remaining, Pending::TimerDone)
                }),
                Mode::EnteringSleep { remaining, .. }
                | Mode::Saving { remaining, .. }
                | Mode::Recovering { remaining } => Some((t + *remaining, Pending::TimerDone)),
                _ => None,
            };
            // A timer landing exactly on outage end still fires (the
            // stepper progresses the mode within its final step).
            let boundary = match timer {
                Some((at, ev)) if at <= outage => (at, 3u8, ev),
                _ => (outage, 4u8, Pending::End),
            };
            let hi = boundary.0;

            // Candidate events inside (t, hi], tagged with a tie-breaking
            // priority mirroring the stepper's within-step check order.
            let mut cands: Vec<(Seconds, u8, Pending)> = vec![boundary];
            if let Some(ts) = backup.first_shortfall(load, t, hi) {
                cands.push((ts.max(t), 2, Pending::Shortfall));
            }
            if let Mode::Serving { level, share } = &st.mode {
                if *level != ThrottleLevel::NONE {
                    let full = Mode::Serving {
                        level: ThrottleLevel::NONE,
                        share: *share,
                    };
                    let full_load = self.supply_load(&full, backup);
                    if let Some(tu) = first_true(t, hi, |tau| {
                        self.project(backup, load, t, tau)
                            .endurance(full_load, tau)
                            .value()
                            .is_infinite()
                    }) {
                        cands.push((tu, 0, Pending::Unthrottle));
                    }
                }
            }
            if let (Mode::Serving { .. }, Some(fb)) = (&st.mode, self.technique().fallback()) {
                if let Some(tf) = first_true(t, hi, |tau| {
                    let probe = self.project(backup, load, t, tau);
                    self.must_fall_back(
                        fb,
                        &probe,
                        &transitions,
                        &st.mode,
                        tau,
                        outage,
                        Seconds::ZERO,
                    )
                }) {
                    cands.push((tf, 1, Pending::Fallback));
                }
            }
            if matches!(st.mode, Mode::Crashed) {
                let reboot_load = self.supply_load(
                    &Mode::Recovering {
                        remaining: Seconds::ZERO,
                    },
                    backup,
                );
                if let Some(tr) =
                    first_true(t, hi, |tau| backup.available_power(tau) >= reboot_load)
                {
                    cands.push((tr, 2, Pending::RecoveryReady));
                }
            }

            // Earliest event wins; on a dead-even tie the lower priority
            // number (the check the stepper runs first) does.
            let mut best = cands[0];
            for &c in &cands[1..] {
                if c.0 < best.0 || (c.0 <= best.0 && c.1 < best.1) {
                    best = c;
                }
            }
            let (when, _, what) = best;
            let end = when.min(outage).max(t);

            // Commit the segment: one exact Peukert ramp draw, no steps.
            if end > t {
                let sustained = backup.supply_segment(load, t, end);
                contract!(
                    ((end - t) - sustained).value().abs() < 1e-3,
                    "segment [{t}, {end}] not fully sustained: {sustained}"
                );
                let (rate, down) = self.mode_rates(&st.mode);
                st.serving_integral += rate * (end - t).value();
                if down {
                    st.downtime += end - t;
                }
                let ended_by = match what {
                    Pending::Unthrottle => SegmentEnd::DgCrossover,
                    Pending::Fallback => SegmentEnd::HybridFallback,
                    Pending::Shortfall => match backup.ups() {
                        Some(u) if u.is_depleted() => SegmentEnd::BatteryDepleted,
                        _ => SegmentEnd::SupplyOverload,
                    },
                    Pending::Pause => SegmentEnd::MigrationPause,
                    Pending::TimerDone => SegmentEnd::TimerExpired,
                    Pending::RecoveryReady => SegmentEnd::RecoveryPower,
                    Pending::End => SegmentEnd::OutageEnd,
                };
                segments.push(Segment {
                    start: t,
                    end,
                    load,
                    throughput: rate,
                    in_downtime: down,
                    ended_by,
                });
                if dcb_trace::enabled() {
                    let start_us = dcb_trace::micros(t);
                    let end_us = dcb_trace::micros(end);
                    dcb_trace::complete(start_us, end_us.saturating_sub(start_us), t_root, || {
                        dcb_trace::EventKind::SegmentCommit {
                            end_cause: ended_by.as_str().to_owned(),
                            load_mw: (load.value() * 1e3).round() as u64,
                            throughput_pm: (rate * 1e3).round() as u64,
                            in_downtime: down,
                        }
                    });
                    if ended_by == SegmentEnd::BatteryDepleted {
                        dcb_trace::instant(Some(end_us), t_root, || {
                            dcb_trace::EventKind::BatteryDeplete
                        });
                    }
                }
                // Timers tick down by the committed span.
                let elapsed = end - t;
                match &mut st.mode {
                    Mode::Migrating { remaining, .. }
                    | Mode::EnteringSleep { remaining, .. }
                    | Mode::Saving { remaining, .. }
                    | Mode::Recovering { remaining } => *remaining -= elapsed,
                    _ => {}
                }
            }
            t = end;

            // Fire the event's transition.
            let before = dcb_trace::enabled().then(|| st.mode.name());
            match what {
                Pending::End => {}
                Pending::Pause => {
                    // Pin the timer to the pause length exactly so the
                    // copy→pause flip is not re-found a rounding error away.
                    if let Mode::Migrating {
                        remaining, pause, ..
                    } = &mut st.mode
                    {
                        *remaining = *pause;
                    }
                }
                Pending::TimerDone => {
                    st.mode = match st.mode {
                        Mode::Migrating { after, .. } => Mode::Serving {
                            level: after,
                            share: self.consolidated_share(),
                        },
                        Mode::EnteringSleep { .. } => self.sleep_target(),
                        Mode::Saving { level, .. } => Mode::Hibernated {
                            saved_throttled: level != ThrottleLevel::NONE,
                        },
                        Mode::Recovering { .. } => Mode::Serving {
                            level: ThrottleLevel::NONE,
                            share: Fraction::ONE,
                        },
                        other => other,
                    };
                }
                Pending::Shortfall => self.apply_shortfall(&mut st),
                Pending::Unthrottle => {
                    if let Mode::Serving { share, .. } = st.mode {
                        st.mode = Mode::Serving {
                            level: ThrottleLevel::NONE,
                            share,
                        };
                    }
                }
                Pending::Fallback => {
                    if let Some(fb) = self.technique().fallback() {
                        st.mode = self.fallback_mode(fb, &transitions);
                    }
                }
                Pending::RecoveryReady => {
                    st.crash_recovery_engaged = true;
                    st.mode = Mode::Recovering {
                        remaining: self.expected_recovery(),
                    };
                }
            }
            if let Some(from) = before {
                let to = st.mode.name();
                if to != from {
                    dcb_trace::instant(Some(dcb_trace::micros(t)), t_root, || {
                        dcb_trace::EventKind::TechniqueTransition {
                            from: from.to_owned(),
                            to: to.to_owned(),
                        }
                    });
                }
            }
        }

        let outcome = self.assemble(outage, st, backup, &transitions);
        let trajectory = Trajectory { segments, outcome };
        trajectory.validate();
        dcb_telemetry::counter!("sim.kernel.outages").incr();
        dcb_telemetry::counter!("sim.kernel.segments").add(trajectory.segments.len() as u64);
        dcb_telemetry::histogram!("sim.kernel.segments_per_outage")
            .observe(trajectory.segments.len() as u64);
        for segment in &trajectory.segments {
            segment_end_counter(segment.ended_by).incr();
        }
        trajectory
    }

    /// Zero-duration transitions checked at the current instant, in the
    /// stepper's per-step order: unthrottle, hybrid fallback, crash
    /// recovery.
    fn apply_instantaneous(
        &self,
        st: &mut RunState,
        backup: &BackupSystem,
        transitions: &TransitionTimes,
        t: Seconds,
        outage: Seconds,
    ) {
        if let Mode::Serving { level, share } = &st.mode {
            if *level != ThrottleLevel::NONE {
                let full = Mode::Serving {
                    level: ThrottleLevel::NONE,
                    share: *share,
                };
                let full_load = self.supply_load(&full, backup);
                if backup.endurance(full_load, t).value().is_infinite() {
                    st.mode = full;
                }
            }
        }
        if let (Mode::Serving { .. }, Some(fb)) = (&st.mode, self.technique().fallback()) {
            if self.must_fall_back(fb, backup, transitions, &st.mode, t, outage, Seconds::ZERO) {
                st.mode = self.fallback_mode(fb, transitions);
            }
        }
        if matches!(st.mode, Mode::Crashed) {
            let reboot_load = self.supply_load(
                &Mode::Recovering {
                    remaining: Seconds::ZERO,
                },
                backup,
            );
            if backup.available_power(t) >= reboot_load {
                st.crash_recovery_engaged = true;
                st.mode = Mode::Recovering {
                    remaining: self.expected_recovery(),
                };
            }
        }
    }

    /// The stepper's supply-failure transition, fired at the exact
    /// shortfall instant.
    fn apply_shortfall(&self, st: &mut RunState) {
        match st.mode {
            Mode::Hibernated { .. } | Mode::Crashed | Mode::NvdimmPersisted => {
                // Zero-load modes cannot actually get here, but be safe:
                // nothing more to lose.
            }
            Mode::Recovering { .. } => {
                st.mode = Mode::Crashed; // power went away mid-reboot
            }
            Mode::Serving { .. }
                if matches!(self.technique().fallback(), Some(Fallback::Nvdimm)) =>
            {
                // The in-DIMM supercapacitors flush state as power
                // collapses: planned, nothing lost.
                st.mode = Mode::NvdimmPersisted;
            }
            _ => {
                // Losing state that was still intact is an unplanned
                // failure of the technique; re-crashing a cluster whose
                // state was already gone adds nothing the plan had
                // promised to keep.
                if !st.state_lost {
                    st.unplanned_crash = true;
                }
                st.state_lost = true;
                st.mode = Mode::Crashed;
            }
        }
    }

    /// The backup system as it will stand at `to`, assuming `load` is
    /// drawn from `from` — the probe behind predicate-shaped event
    /// searches. Only the battery charge is projected; DG availability is
    /// a pure function of time.
    fn project(
        &self,
        backup: &BackupSystem,
        load: Watts,
        from: Seconds,
        to: Seconds,
    ) -> BackupSystem {
        let charge_now = backup.ups().map_or(0.0, |u| u.charge().value());
        let used = backup.charge_used_for(load, from, to);
        backup.with_ups_charge(Fraction::new((charge_now - used).max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, Technique};
    use dcb_power::BackupConfig;
    use dcb_workload::Workload;

    fn sim(config: BackupConfig, technique: Technique) -> OutageSim {
        OutageSim::new(Cluster::rack(Workload::specjbb()), config, technique)
    }

    #[test]
    fn trajectory_resolves_in_few_segments() {
        let traj = sim(BackupConfig::max_perf(), Technique::ride_through())
            .run_trajectory(Seconds::from_minutes(120.0));
        // Constant serving load through the whole outage: a handful of
        // segments, not 7200 steps.
        assert!(
            traj.segments.len() <= 4,
            "expected O(#events) segments, got {}",
            traj.segments.len()
        );
        assert!(matches!(
            traj.segments.last().map(|s| s.ended_by),
            Some(SegmentEnd::OutageEnd)
        ));
    }

    #[test]
    fn depletion_shows_up_as_an_event() {
        let traj = sim(BackupConfig::no_dg(), Technique::ride_through())
            .run_trajectory(Seconds::from_minutes(10.0));
        assert!(
            traj.segments
                .iter()
                .any(|s| s.ended_by == SegmentEnd::BatteryDepleted),
            "segments: {:?}",
            traj.segments
        );
        assert!(!traj.outcome.feasible);
    }

    #[test]
    fn hybrid_fallback_is_a_located_event() {
        let technique = Technique::throttle_sleep_l(crate::technique::low_power_level());
        let traj = sim(BackupConfig::small_p_large_e_ups(), technique)
            .run_trajectory(Seconds::from_minutes(120.0));
        assert!(
            traj.segments
                .iter()
                .any(|s| s.ended_by == SegmentEnd::HybridFallback),
            "segments: {:?}",
            traj.segments
        );
        assert!(traj.outcome.feasible);
    }

    #[test]
    fn crashed_cluster_recovery_is_a_located_event() {
        let traj = sim(BackupConfig::no_ups(), Technique::ride_through())
            .run_trajectory(Seconds::from_minutes(120.0));
        let kinds: Vec<SegmentEnd> = traj.segments.iter().map(|s| s.ended_by).collect();
        assert!(
            kinds.contains(&SegmentEnd::RecoveryPower) && kinds.contains(&SegmentEnd::TimerExpired),
            "kinds: {kinds:?}"
        );
        assert!(traj.outcome.perf_during_outage.value() > 0.8);
    }

    #[test]
    fn segments_tile_the_outage_exactly() {
        for technique in [
            Technique::ride_through(),
            Technique::sleep_l(),
            Technique::hibernate(),
            Technique::migration(),
        ] {
            let traj = sim(BackupConfig::large_e_ups(), technique)
                .run_trajectory(Seconds::from_minutes(45.0));
            let mut cursor = Seconds::ZERO;
            for seg in &traj.segments {
                assert!((seg.start - cursor).value().abs() < 1e-6);
                assert!(seg.duration().value() >= 0.0);
                cursor = seg.end;
            }
            assert!((cursor.value() - 45.0 * 60.0).abs() < 1e-6);
        }
    }
}
