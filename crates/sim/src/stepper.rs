//! The legacy fixed-step solver, kept as a differential oracle for the
//! event-driven kernel — now expressed as a timed-clock `dcb-engine`
//! component.
//!
//! This is the original engine loop: advance in fixed steps (sub-second
//! for short outages, a bounded step count for long ones), at each step
//! deciding the cluster's load from its mode, drawing that load from the
//! [`BackupSystem`], progressing transition timers, and accumulating
//! metrics. Since the `dcb-engine` extraction the cadence comes from an
//! engine-managed [`ClockSpec::Every`] clock instead of a hand-rolled
//! `while` loop; the per-step arithmetic is untouched — the component
//! keeps its own accumulated `t` (the legacy `t += dt` sequence, not the
//! clock's product grid) so results stay bit-identical to the historical
//! solver, and the horizon tick drains whatever fractional step the
//! accumulated time still owes. Its results converge on the kernel's as
//! the step shrinks — the property the differential test suite asserts —
//! which is the only reason it survives; production callers use
//! [`OutageSim::run`](crate::OutageSim::run).

use crate::engine::{Mode, OutageSim, RunState};
use crate::{Fallback, SimOutcome};
use dcb_engine::{ClockSpec, Component, Ctx, Engine, Fired};
use dcb_power::BackupSystem;
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{contract, Fraction, Seconds};
use dcb_workload::Workload;

/// Token of the per-step clock tick.
const TICK: u64 = 0;
/// Token of the horizon tick that drains the final fractional step.
const DONE: u64 = 1;

/// The stepper world: the legacy loop's locals.
struct StepWorld<'a> {
    sim: &'a OutageSim,
    backup: &'a mut BackupSystem,
    w: Workload,
    transitions: TransitionTimes,
    outage: Seconds,
    step: Seconds,
    mode: Mode,
    state_lost: bool,
    unplanned_crash: bool,
    crash_recovery_engaged: bool,
    serving_integral: f64,
    downtime: Seconds,
    expected_recovery: Seconds,
    /// Accumulated time: the legacy `t += dt` sequence, deliberately kept
    /// separate from the clock's product grid so every floating-point
    /// operation matches the historical solver.
    t: Seconds,
}

/// Runs one legacy step: `dt = step.min(outage - t)`, moved verbatim
/// from the historical loop body.
fn advance_one(world: &mut StepWorld) {
    let dt = world.step.min(world.outage - world.t);
    // Once a DG has ramped up far enough to carry the *unthrottled*
    // load indefinitely, throttling serves no purpose: restore full
    // speed (the paper throttles only to ride the DG start-up).
    if let Mode::Serving { level, share } = &world.mode {
        if *level != ThrottleLevel::NONE {
            let full = Mode::Serving {
                level: ThrottleLevel::NONE,
                share: *share,
            };
            let full_load = world.sim.supply_load(&full, world.backup);
            if world
                .backup
                .endurance(full_load, world.t)
                .value()
                .is_infinite()
            {
                world.mode = full;
            }
        }
    }
    // Hybrid fallback decision.
    if let (Mode::Serving { .. }, Some(fb)) = (&world.mode, world.sim.technique().fallback()) {
        if world.sim.must_fall_back(
            fb,
            world.backup,
            &world.transitions,
            &world.mode,
            world.t,
            world.outage,
            dt,
        ) {
            world.mode = world.sim.fallback_mode(fb, &world.transitions);
        }
    }
    let load = world.sim.supply_load(&world.mode, world.backup);
    let supply = world.backup.supply(load, world.t, dt);
    if !supply.fully_covered() {
        // Credit the portion that was sustained, then crash.
        let sustained = supply.sustained;
        match &world.mode {
            Mode::Serving { level, share } => {
                world.serving_integral += world
                    .w
                    .throughput_at(level.effective_speed(), *share)
                    .value()
                    * sustained.value();
                world.downtime += dt - sustained;
            }
            Mode::Migrating { during, .. } => {
                world.serving_integral += world
                    .w
                    .throughput_at(during.effective_speed(), Fraction::ONE)
                    .value()
                    * sustained.value();
                world.downtime += dt - sustained;
            }
            _ => world.downtime += dt,
        }
        match world.mode {
            Mode::Hibernated { .. } | Mode::Crashed | Mode::NvdimmPersisted => {
                // Zero-load modes cannot actually get here, but be
                // safe: nothing more to lose.
            }
            Mode::Recovering { .. } => {
                world.mode = Mode::Crashed; // power went away mid-reboot
            }
            Mode::Serving { .. }
                if matches!(world.sim.technique().fallback(), Some(Fallback::Nvdimm)) =>
            {
                // The in-DIMM supercapacitors flush state as power
                // collapses: planned, nothing lost.
                world.mode = Mode::NvdimmPersisted;
            }
            _ => {
                // Losing state that was still intact is an
                // unplanned failure of the technique; re-crashing a
                // cluster whose state was already gone (e.g. a
                // battery-powered reboot that ran dry) adds nothing
                // the plan had promised to keep.
                if !world.state_lost {
                    world.unplanned_crash = true;
                }
                world.state_lost = true;
                world.mode = Mode::Crashed;
            }
        }
        world.t += dt;
        return;
    }

    // Power fully supplied: progress the mode.
    match &mut world.mode {
        Mode::Serving { level, share } => {
            world.serving_integral += world
                .w
                .throughput_at(level.effective_speed(), *share)
                .value()
                * dt.value();
        }
        Mode::Migrating {
            after,
            remaining,
            pause,
            during,
        } => {
            if *remaining > *pause {
                world.serving_integral += world
                    .w
                    .throughput_at(during.effective_speed(), Fraction::ONE)
                    .value()
                    * dt.value();
            } else {
                world.downtime += dt; // stop-and-copy pause
            }
            *remaining -= dt;
            if remaining.value() <= 0.0 {
                world.mode = Mode::Serving {
                    level: *after,
                    share: world.sim.consolidated_share(),
                };
            }
        }
        Mode::EnteringSleep { remaining, .. } => {
            world.downtime += dt;
            *remaining -= dt;
            if remaining.value() <= 0.0 {
                world.mode = world.sim.sleep_target();
            }
        }
        Mode::Sleeping => world.downtime += dt,
        Mode::SleepingRemote => {
            // Remote peers keep answering reads from this memory.
            world.serving_integral += world.w.remote_serve_fraction().value() * dt.value();
        }
        Mode::NvdimmPersisted => world.downtime += dt,
        Mode::Saving { remaining, level } => {
            world.downtime += dt;
            *remaining -= dt;
            if remaining.value() <= 0.0 {
                world.mode = Mode::Hibernated {
                    saved_throttled: *level != ThrottleLevel::NONE,
                };
            }
        }
        Mode::Hibernated { .. } => world.downtime += dt,
        Mode::Crashed => {
            world.downtime += dt;
            // A sufficiently ramped DG lets the cluster reboot
            // mid-outage (NoUPS: "DG translates long outages into
            // short ones").
            let reboot_load = world.sim.supply_load(
                &Mode::Recovering {
                    remaining: Seconds::ZERO,
                },
                world.backup,
            );
            if world.backup.available_power(world.t + dt) >= reboot_load {
                world.crash_recovery_engaged = true;
                world.mode = Mode::Recovering {
                    remaining: world.expected_recovery,
                };
            }
        }
        Mode::Recovering { remaining } => {
            world.downtime += dt;
            *remaining -= dt;
            if remaining.value() <= 0.0 {
                world.mode = Mode::Serving {
                    level: ThrottleLevel::NONE,
                    share: Fraction::ONE,
                };
            }
        }
    }
    world.t += dt;
}

/// The timed-clock component driving the fixed-step solver: one legacy
/// step per [`ClockSpec::Every`] tick, with the horizon tick draining
/// whatever accumulated-time remainder the product grid missed.
struct StepClock;

impl<'a> Component<StepWorld<'a>> for StepClock {
    fn name(&self) -> &'static str {
        "step-clock"
    }

    fn fire(&mut self, world: &mut StepWorld<'a>, _ctx: &mut Ctx, fired: &Fired) {
        match fired.token {
            TICK => {
                if world.t < world.outage {
                    advance_one(world);
                }
            }
            _ => {
                contract!(fired.token == DONE, "unknown stepper token {}", fired.token);
                // The clock grid is `k * step`; the accumulated legacy
                // time can land short of the horizon by rounding, still
                // owing a fractional step (or two) at outage end.
                while world.t < world.outage {
                    advance_one(world);
                }
            }
        }
    }
}

impl OutageSim {
    /// Runs the fixed-step solver against a fresh backup system with the
    /// historical step rule `max(outage / 7200, 0.25 s)`.
    #[must_use]
    pub fn run_stepped(&self, outage: Seconds) -> SimOutcome {
        let mut backup = self.config().instantiate(self.cluster().peak_power());
        self.run_with_backup_stepped(outage, &mut backup)
    }

    /// Runs the fixed-step solver against an existing backup system with
    /// the historical step rule.
    #[must_use]
    pub fn run_with_backup_stepped(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
    ) -> SimOutcome {
        let step = Seconds::new((outage.value() / 7200.0).max(0.25));
        self.run_with_backup_stepped_at(outage, backup, step)
    }

    /// Runs the fixed-step solver with an explicit step size — the knob the
    /// differential suite turns to show stepped results converge on the
    /// kernel's as `step → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `outage` is negative or non-finite, or `step` is not
    /// strictly positive.
    #[must_use]
    pub fn run_with_backup_stepped_at(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
        step: Seconds,
    ) -> SimOutcome {
        assert!(
            outage.value() >= 0.0 && outage.is_finite(),
            "outage must be finite and non-negative"
        );
        assert!(step.value() > 0.0, "step must be positive");
        let transitions = TransitionTimes::new(*self.cluster().spec());
        let (mode, state_lost) = self.initial_mode(&transitions);
        let mut world = StepWorld {
            sim: self,
            backup,
            w: *self.cluster().workload(),
            transitions,
            outage,
            step,
            mode,
            state_lost,
            unplanned_crash: false,
            crash_recovery_engaged: false,
            serving_integral: 0.0, // normalized-throughput seconds
            downtime: Seconds::ZERO,
            expected_recovery: self.expected_recovery(),
            t: Seconds::ZERO,
        };

        let mut engine: Engine<StepWorld> = Engine::new(outage);
        let clock = engine.add_component(StepClock);
        engine.add_clock(clock, 3, TICK, ClockSpec::Every(step));
        engine.add_clock(clock, 4, DONE, ClockSpec::Horizon);
        // One engine cycle per grid tick plus the horizon: the budget is
        // sized to the grid, not the kernel's event count.
        let ticks = (outage.value() / step.value()).ceil();
        let budget = if ticks.is_finite() && ticks < f64::from(u32::MAX - 8) {
            ticks as u32
        } else {
            u32::MAX - 8
        };
        engine.set_max_events(budget.saturating_add(8));
        engine.run(&mut world);
        // The engine's type captures the world's borrow of `backup`;
        // release both before assembling from it.
        drop(engine);

        let StepWorld {
            transitions,
            mode,
            state_lost,
            unplanned_crash,
            crash_recovery_engaged,
            serving_integral,
            downtime,
            ..
        } = world;
        self.assemble(
            outage,
            RunState {
                mode,
                state_lost,
                unplanned_crash,
                crash_recovery_engaged,
                serving_integral,
                downtime,
            },
            backup,
            &transitions,
        )
    }
}
