//! The legacy fixed-step solver, kept as a differential oracle for the
//! event-driven kernel.
//!
//! This is the original engine loop, moved verbatim: advance in fixed
//! steps (sub-second for short outages, a bounded step count for long
//! ones), at each step deciding the cluster's load from its mode, drawing
//! that load from the [`BackupSystem`], progressing transition timers, and
//! accumulating metrics. Its results converge on the kernel's as the step
//! shrinks — the property the differential test suite asserts — which is
//! the only reason it survives; production callers use
//! [`OutageSim::run`](crate::OutageSim::run).

use crate::engine::{Mode, OutageSim, RunState};
use crate::{Fallback, SimOutcome};
use dcb_power::BackupSystem;
use dcb_server::{ThrottleLevel, TransitionTimes};
use dcb_units::{Fraction, Seconds};

impl OutageSim {
    /// Runs the fixed-step solver against a fresh backup system with the
    /// historical step rule `max(outage / 7200, 0.25 s)`.
    #[must_use]
    pub fn run_stepped(&self, outage: Seconds) -> SimOutcome {
        let mut backup = self.config().instantiate(self.cluster().peak_power());
        self.run_with_backup_stepped(outage, &mut backup)
    }

    /// Runs the fixed-step solver against an existing backup system with
    /// the historical step rule.
    #[must_use]
    pub fn run_with_backup_stepped(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
    ) -> SimOutcome {
        let step = Seconds::new((outage.value() / 7200.0).max(0.25));
        self.run_with_backup_stepped_at(outage, backup, step)
    }

    /// Runs the fixed-step solver with an explicit step size — the knob the
    /// differential suite turns to show stepped results converge on the
    /// kernel's as `step → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `outage` is negative or non-finite, or `step` is not
    /// strictly positive.
    #[must_use]
    pub fn run_with_backup_stepped_at(
        &self,
        outage: Seconds,
        backup: &mut BackupSystem,
        step: Seconds,
    ) -> SimOutcome {
        assert!(
            outage.value() >= 0.0 && outage.is_finite(),
            "outage must be finite and non-negative"
        );
        assert!(step.value() > 0.0, "step must be positive");
        let transitions = TransitionTimes::new(*self.cluster().spec());
        let w = *self.cluster().workload();
        let (mut mode, mut state_lost) = self.initial_mode(&transitions);
        let mut unplanned_crash = false;
        let mut crash_recovery_engaged = false;
        let mut serving_integral = 0.0; // normalized-throughput seconds
        let mut downtime = Seconds::ZERO;
        let expected_recovery = self.expected_recovery();

        let mut t = Seconds::ZERO;
        while t < outage {
            let dt = step.min(outage - t);
            // Once a DG has ramped up far enough to carry the *unthrottled*
            // load indefinitely, throttling serves no purpose: restore full
            // speed (the paper throttles only to ride the DG start-up).
            if let Mode::Serving { level, share } = &mode {
                if *level != ThrottleLevel::NONE {
                    let full = Mode::Serving {
                        level: ThrottleLevel::NONE,
                        share: *share,
                    };
                    let full_load = self.supply_load(&full, backup);
                    if backup.endurance(full_load, t).value().is_infinite() {
                        mode = full;
                    }
                }
            }
            // Hybrid fallback decision.
            if let (Mode::Serving { .. }, Some(fb)) = (&mode, self.technique().fallback()) {
                if self.must_fall_back(fb, backup, &transitions, &mode, t, outage, dt) {
                    mode = self.fallback_mode(fb, &transitions);
                }
            }
            let load = self.supply_load(&mode, backup);
            let supply = backup.supply(load, t, dt);
            if !supply.fully_covered() {
                // Credit the portion that was sustained, then crash.
                let sustained = supply.sustained;
                match &mode {
                    Mode::Serving { level, share } => {
                        serving_integral +=
                            w.throughput_at(level.effective_speed(), *share).value()
                                * sustained.value();
                        downtime += dt - sustained;
                    }
                    Mode::Migrating { during, .. } => {
                        serving_integral += w
                            .throughput_at(during.effective_speed(), Fraction::ONE)
                            .value()
                            * sustained.value();
                        downtime += dt - sustained;
                    }
                    _ => downtime += dt,
                }
                match mode {
                    Mode::Hibernated { .. } | Mode::Crashed | Mode::NvdimmPersisted => {
                        // Zero-load modes cannot actually get here, but be
                        // safe: nothing more to lose.
                    }
                    Mode::Recovering { .. } => {
                        mode = Mode::Crashed; // power went away mid-reboot
                    }
                    Mode::Serving { .. }
                        if matches!(self.technique().fallback(), Some(Fallback::Nvdimm)) =>
                    {
                        // The in-DIMM supercapacitors flush state as power
                        // collapses: planned, nothing lost.
                        mode = Mode::NvdimmPersisted;
                    }
                    _ => {
                        // Losing state that was still intact is an
                        // unplanned failure of the technique; re-crashing a
                        // cluster whose state was already gone (e.g. a
                        // battery-powered reboot that ran dry) adds nothing
                        // the plan had promised to keep.
                        if !state_lost {
                            unplanned_crash = true;
                        }
                        state_lost = true;
                        mode = Mode::Crashed;
                    }
                }
                t += dt;
                continue;
            }

            // Power fully supplied: progress the mode.
            match &mut mode {
                Mode::Serving { level, share } => {
                    serving_integral +=
                        w.throughput_at(level.effective_speed(), *share).value() * dt.value();
                }
                Mode::Migrating {
                    after,
                    remaining,
                    pause,
                    during,
                } => {
                    if *remaining > *pause {
                        serving_integral += w
                            .throughput_at(during.effective_speed(), Fraction::ONE)
                            .value()
                            * dt.value();
                    } else {
                        downtime += dt; // stop-and-copy pause
                    }
                    *remaining -= dt;
                    if remaining.value() <= 0.0 {
                        mode = Mode::Serving {
                            level: *after,
                            share: self.consolidated_share(),
                        };
                    }
                }
                Mode::EnteringSleep { remaining, .. } => {
                    downtime += dt;
                    *remaining -= dt;
                    if remaining.value() <= 0.0 {
                        mode = self.sleep_target();
                    }
                }
                Mode::Sleeping => downtime += dt,
                Mode::SleepingRemote => {
                    // Remote peers keep answering reads from this memory.
                    serving_integral += w.remote_serve_fraction().value() * dt.value();
                }
                Mode::NvdimmPersisted => downtime += dt,
                Mode::Saving { remaining, level } => {
                    downtime += dt;
                    *remaining -= dt;
                    if remaining.value() <= 0.0 {
                        mode = Mode::Hibernated {
                            saved_throttled: *level != ThrottleLevel::NONE,
                        };
                    }
                }
                Mode::Hibernated { .. } => downtime += dt,
                Mode::Crashed => {
                    downtime += dt;
                    // A sufficiently ramped DG lets the cluster reboot
                    // mid-outage (NoUPS: "DG translates long outages into
                    // short ones").
                    let reboot_load = self.supply_load(
                        &Mode::Recovering {
                            remaining: Seconds::ZERO,
                        },
                        backup,
                    );
                    if backup.available_power(t + dt) >= reboot_load {
                        crash_recovery_engaged = true;
                        mode = Mode::Recovering {
                            remaining: expected_recovery,
                        };
                    }
                }
                Mode::Recovering { remaining } => {
                    downtime += dt;
                    *remaining -= dt;
                    if remaining.value() <= 0.0 {
                        mode = Mode::Serving {
                            level: ThrottleLevel::NONE,
                            share: Fraction::ONE,
                        };
                    }
                }
            }
            t += dt;
        }

        self.assemble(
            outage,
            RunState {
                mode,
                state_lost,
                unplanned_crash,
                crash_recovery_engaged,
                serving_integral,
                downtime,
            },
            backup,
            &transitions,
        )
    }
}
