//! Simulation results: the quantities the paper's evaluation reports.

use dcb_units::{Fraction, Seconds, WattHours, Watts};
use dcb_workload::DowntimeRange;

/// Where the cluster ended up when utility power returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FinalState {
    /// Still (or again) serving requests.
    Serving,
    /// Suspended to RAM with state intact.
    Sleeping,
    /// Mid-transition into sleep.
    EnteringSleep,
    /// Persisted to disk.
    Hibernated,
    /// Mid-save to disk (completes on utility power).
    Saving,
    /// Mid-migration (continues/cancels harmlessly on utility power).
    Migrating,
    /// Crashed: volatile state lost.
    Crashed,
    /// Rebooting/recovering after a crash (power available).
    Recovering,
}

/// The outcome of simulating one outage under one technique and backup
/// configuration.
///
/// `downtime` is the paper's metric: total time the application is
/// unavailable during the outage *and* afterwards (boot, state restore,
/// reload, warm-up, recompute). `perf_during_outage` is the average
/// normalized throughput over the outage window only, as in §6
/// ("we report performance impact over a common duration, the power outage
/// duration").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimOutcome {
    /// The simulated outage length.
    pub outage: Seconds,
    /// Whether the technique executed as intended (no *unplanned* crash
    /// from exhausted or insufficient backup capacity).
    pub feasible: bool,
    /// Whether volatile application state was lost.
    pub state_lost: bool,
    /// Peak power drawn from the backup infrastructure.
    pub peak_power: Watts,
    /// Peak power as a fraction of the cluster's nameplate peak.
    pub peak_power_fraction: Fraction,
    /// Energy drawn from the backup infrastructure.
    pub energy: WattHours,
    /// Average normalized performance over the outage window.
    pub perf_during_outage: Fraction,
    /// Total downtime (within the outage plus the recovery tail).
    pub downtime: DowntimeRange,
    /// The portion of the downtime that fell *within* the outage window
    /// (the remainder is the post-restoration recovery tail).
    pub downtime_during_outage: Seconds,
    /// Cluster state at the instant utility power returned.
    pub final_state: FinalState,
}

impl SimOutcome {
    /// Convenience: the expected downtime in minutes (the unit of the
    /// paper's downtime plots).
    #[must_use]
    pub fn downtime_minutes(&self) -> f64 {
        self.downtime.expected.to_minutes()
    }

    /// Whether the application stayed fully available (no downtime at all).
    #[must_use]
    pub fn seamless(&self) -> bool {
        self.downtime.max.value() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seamless_requires_zero_downtime() {
        let outcome = SimOutcome {
            outage: Seconds::from_minutes(5.0),
            feasible: true,
            state_lost: false,
            peak_power: Watts::new(100.0),
            peak_power_fraction: Fraction::new(0.5),
            energy: WattHours::new(10.0),
            perf_during_outage: Fraction::ONE,
            downtime: DowntimeRange::exact(Seconds::ZERO),
            downtime_during_outage: Seconds::ZERO,
            final_state: FinalState::Serving,
        };
        assert!(outcome.seamless());
        let with_downtime = SimOutcome {
            downtime: DowntimeRange::exact(Seconds::new(38.0)),
            ..outcome
        };
        assert!(!with_downtime.seamless());
        assert!((with_downtime.downtime_minutes() - 38.0 / 60.0).abs() < 1e-12);
    }
}
