//! Event-time solvers for the kernel.
//!
//! Most event times fall out in closed form (timer expiries, battery
//! depletion, DG crossover). The two genuinely predicate-shaped events —
//! "the DG can now carry the unthrottled load forever" and "this is the
//! latest safe instant to fall back" — are located with a first-true
//! finder: a coarse forward scan to bracket the earliest flip followed by
//! bisection. Both predicates flip false→true once along the charge
//! trajectory for every configuration the paper studies; the scan
//! guards against pathological shapes by only trusting the earliest
//! bracketed flip.

use dcb_units::Seconds;

/// Samples used to bracket the earliest predicate flip in `(lo, hi]`.
const SCAN_SAMPLES: u32 = 32;
/// Bisection convergence tolerance, in seconds.
const BISECT_TOL: f64 = 1e-7;

/// The earliest `t` in `(lo, hi]` at which `pred` is true, to within
/// [`BISECT_TOL`]; `None` if it never flips. The caller is expected to
/// have handled `pred(lo)` (the instantaneous case) already. The returned
/// instant always satisfies the predicate.
pub(crate) fn first_true(
    lo: Seconds,
    hi: Seconds,
    mut pred: impl FnMut(Seconds) -> bool,
) -> Option<Seconds> {
    if hi <= lo {
        return None;
    }
    dcb_telemetry::counter!("sim.events.first_true_calls").incr();
    let span = (hi - lo).value();
    let mut prev = lo;
    for i in 1..=SCAN_SAMPLES {
        let t = if i == SCAN_SAMPLES {
            hi
        } else {
            lo + Seconds::new(span * f64::from(i) / f64::from(SCAN_SAMPLES))
        };
        if pred(t) {
            // Bracketed: pred(prev) false, pred(t) true. Bisect.
            let (mut f, mut tr) = (prev, t);
            let mut iters: u64 = 0;
            while (tr - f).value() > BISECT_TOL {
                let mid = f + (tr - f) * 0.5;
                if pred(mid) {
                    tr = mid;
                } else {
                    f = mid;
                }
                iters += 1;
            }
            dcb_telemetry::counter!("sim.events.bisection_iters").add(iters);
            dcb_telemetry::histogram!("sim.events.bisection_iters_per_search").observe(iters);
            if dcb_trace::enabled() {
                dcb_trace::instant(Some(dcb_trace::micros(tr)), None, || {
                    dcb_trace::EventKind::ShortfallRoot { bisections: iters }
                });
            }
            return Some(tr);
        }
        prev = t;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_step_crossing() {
        let at = first_true(Seconds::ZERO, Seconds::new(100.0), |t| t.value() >= 37.25)
            .expect("crossing exists");
        assert!((at.value() - 37.25).abs() < 1e-6, "got {at}");
    }

    #[test]
    fn none_when_never_true() {
        assert_eq!(
            first_true(Seconds::ZERO, Seconds::new(10.0), |_| false),
            None
        );
    }

    #[test]
    fn crossing_at_the_far_end_is_found() {
        let at = first_true(Seconds::ZERO, Seconds::new(10.0), |t| t.value() >= 10.0)
            .expect("endpoint flip");
        assert!((at.value() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn returned_instant_satisfies_the_predicate() {
        let pred = |t: Seconds| t.value() > 1.0 / 3.0;
        let at = first_true(Seconds::ZERO, Seconds::new(2.0), pred).expect("flip");
        assert!(pred(at));
    }

    #[test]
    fn empty_interval_yields_none() {
        assert_eq!(
            first_true(Seconds::new(5.0), Seconds::new(5.0), |_| true),
            None
        );
    }
}
