//! Simulating whole outage *traces*: back-to-back outages with partial
//! battery recharge in between.
//!
//! The per-outage evaluation of the paper assumes a fully charged battery
//! at outage start. Over a real year that is optimistic: lead-acid packs
//! recharge at ~C/10, so a second outage within a few hours of the first
//! finds a depleted battery. [`OutageSim::run_trace`] threads one
//! [`dcb_power::BackupSystem`] through every outage of a yearly trace,
//! recharging during the gaps, and aggregates availability.

use crate::{OutageSim, SimOutcome, Trajectory};
use dcb_outage::OutageTrace;
use dcb_units::{Fraction, Seconds};

/// Aggregate result of simulating a full outage trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceOutcome {
    /// Per-outage outcomes, in trace order.
    pub outcomes: Vec<SimOutcome>,
    /// The horizon the trace covers (for availability accounting).
    pub span: Seconds,
    /// Battery wear across the whole trace, in equivalent full cycles —
    /// §2's point that rare backup duty barely wears the pack, measurable.
    pub battery_cycles: f64,
}

impl TraceOutcome {
    /// Total expected downtime across the trace.
    #[must_use]
    pub fn total_downtime(&self) -> Seconds {
        self.outcomes.iter().map(|o| o.downtime.expected).sum()
    }

    /// Number of outages in which volatile state was lost.
    #[must_use]
    pub fn state_losses(&self) -> usize {
        self.outcomes.iter().filter(|o| o.state_lost).count()
    }

    /// Number of outages the technique failed to execute to plan.
    #[must_use]
    pub fn unplanned_crashes(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.feasible).count()
    }

    /// Availability over the span: `1 − downtime/span` (clamped).
    #[must_use]
    pub fn availability(&self) -> Fraction {
        if self.span.value() <= 0.0 {
            return Fraction::ONE;
        }
        Fraction::new(1.0 - self.total_downtime().value() / self.span.value())
    }

    /// Availability expressed in "nines" (`log10` of the unavailability),
    /// the industry/Tier shorthand. Returns infinity for zero downtime.
    #[must_use]
    pub fn nines(&self) -> f64 {
        let unavailability = 1.0 - self.availability().value();
        if unavailability <= 0.0 {
            f64::INFINITY
        } else {
            -unavailability.log10()
        }
    }
}

impl OutageSim {
    /// Simulates every outage of `trace` over a horizon of `span`,
    /// recharging the battery between outages at the chemistry's rate.
    ///
    /// # Panics
    ///
    /// Panics if `span` is not positive.
    #[must_use]
    pub fn run_trace(&self, trace: &OutageTrace, span: Seconds) -> TraceOutcome {
        self.run_trace_trajectories(trace, span).0
    }

    /// Like [`run_trace`](Self::run_trace), but also returns the full
    /// event-kernel [`Trajectory`] of every outage, in trace order. The
    /// aggregate outcome is assembled from exactly these trajectories, so
    /// `outcome.outcomes[i] == trajectories[i].outcome` holds identically.
    ///
    /// # Panics
    ///
    /// Panics if `span` is not positive.
    #[must_use]
    pub fn run_trace_trajectories(
        &self,
        trace: &OutageTrace,
        span: Seconds,
    ) -> (TraceOutcome, Vec<Trajectory>) {
        assert!(span.value() > 0.0, "trace span must be positive");
        let mut backup = self.config().instantiate(self.cluster().peak_power());
        let mut outcomes = Vec::with_capacity(trace.len());
        let mut trajectories = Vec::with_capacity(trace.len());
        let mut last_end = Seconds::ZERO;
        for outage in trace.outages() {
            let gap = (outage.start - last_end).max(Seconds::ZERO);
            backup.recharge_for(gap);
            // Diurnal workloads see the utilization of the hour the outage
            // strikes.
            let resolved = self.resolved_at(outage.start);
            let trajectory = resolved.run_with_backup_trajectory(outage.duration, &mut backup);
            outcomes.push(trajectory.outcome.clone());
            trajectories.push(trajectory);
            last_end = outage.end();
        }
        (
            TraceOutcome {
                outcomes,
                span,
                battery_cycles: backup.battery_cycles(),
            },
            trajectories,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, Technique};
    use dcb_outage::Outage;
    use dcb_power::BackupConfig;
    use dcb_workload::Workload;

    const YEAR: f64 = 365.0 * 24.0 * 3600.0;

    fn sim(config: BackupConfig) -> OutageSim {
        OutageSim::new(
            Cluster::rack(Workload::specjbb()),
            config,
            Technique::ride_through(),
        )
    }

    #[test]
    fn empty_trace_is_fully_available() {
        let outcome =
            sim(BackupConfig::max_perf()).run_trace(&OutageTrace::default(), Seconds::new(YEAR));
        assert!(outcome.outcomes.is_empty());
        assert_eq!(outcome.availability(), Fraction::ONE);
        assert!(outcome.nines().is_infinite());
    }

    #[test]
    fn well_separated_outages_all_ride_through() {
        let trace = OutageTrace::new(vec![
            Outage {
                start: Seconds::from_hours(100.0),
                duration: Seconds::from_minutes(1.0),
            },
            Outage {
                start: Seconds::from_hours(500.0),
                duration: Seconds::from_minutes(1.5),
            },
        ]);
        let outcome = sim(BackupConfig::no_dg()).run_trace(&trace, Seconds::new(YEAR));
        assert_eq!(outcome.state_losses(), 0);
        assert_eq!(outcome.total_downtime(), Seconds::ZERO);
    }

    #[test]
    fn back_to_back_outage_finds_depleted_battery() {
        // First outage drains most of the 2-minute battery; a second outage
        // ten minutes later (recharge restores ~0.2% of charge) crashes the
        // cluster even though the same outage in isolation would ride
        // through.
        let trace = OutageTrace::new(vec![
            Outage {
                start: Seconds::ZERO,
                duration: Seconds::from_minutes(1.8),
            },
            Outage {
                start: Seconds::from_minutes(12.0),
                duration: Seconds::from_minutes(1.8),
            },
        ]);
        let s = sim(BackupConfig::no_dg());
        let outcome = s.run_trace(&trace, Seconds::new(YEAR));
        assert!(outcome.outcomes[0].feasible, "first outage must survive");
        assert!(
            !outcome.outcomes[1].feasible,
            "second outage should crash on a drained battery"
        );
        // In isolation the second outage would have been fine.
        assert!(s.run(Seconds::from_minutes(1.8)).feasible);
    }

    #[test]
    fn long_gap_restores_the_battery() {
        let trace = OutageTrace::new(vec![
            Outage {
                start: Seconds::ZERO,
                duration: Seconds::from_minutes(1.8),
            },
            Outage {
                start: Seconds::from_hours(30.0),
                duration: Seconds::from_minutes(1.8),
            },
        ]);
        let outcome = sim(BackupConfig::no_dg()).run_trace(&trace, Seconds::new(YEAR));
        assert!(outcome.outcomes.iter().all(|o| o.feasible));
    }

    #[test]
    fn yearly_wear_is_negligible() {
        // §2: "issues such as battery wear due to rare outages are less
        // important" — a year of Figure-1 outages costs only a few cycles.
        let mut sampler = dcb_outage::OutageSampler::seeded(5);
        let s = sim(BackupConfig::no_dg());
        let mut worst: f64 = 0.0;
        for trace in sampler.sample_years(50) {
            let outcome = s.run_trace(&trace, Seconds::new(YEAR));
            worst = worst.max(outcome.battery_cycles);
        }
        assert!(worst < 15.0, "worst yearly cycles {worst}");
    }

    #[test]
    fn trace_outcomes_are_exactly_the_trajectory_outcomes() {
        let trace = OutageTrace::new(vec![
            Outage {
                start: Seconds::ZERO,
                duration: Seconds::from_minutes(1.8),
            },
            Outage {
                start: Seconds::from_minutes(12.0),
                duration: Seconds::from_minutes(1.8),
            },
            Outage {
                start: Seconds::from_hours(40.0),
                duration: Seconds::from_minutes(30.0),
            },
        ]);
        let s = sim(BackupConfig::no_dg());
        let (outcome, trajectories) = s.run_trace_trajectories(&trace, Seconds::new(YEAR));
        assert_eq!(outcome.outcomes.len(), trajectories.len());
        for (o, t) in outcome.outcomes.iter().zip(&trajectories) {
            assert_eq!(*o, t.outcome, "trace outcome drifted from trajectory");
            // The outcome's integrals reconstruct exactly from segments.
            let served = t.served_seconds();
            assert!(
                (served - o.perf_during_outage.value() * o.outage.value()).abs()
                    < 1e-9 * o.outage.value().max(1.0),
                "served {served} vs outcome"
            );
            assert!((t.downtime_seconds() - o.downtime_during_outage.value()).abs() < 1e-9);
        }
        // And the plain run_trace is the same computation.
        assert_eq!(s.run_trace(&trace, Seconds::new(YEAR)), outcome);
    }

    #[test]
    fn trace_trajectories_round_trip_through_json() {
        let trace = OutageTrace::new(vec![
            Outage {
                start: Seconds::from_hours(2.0),
                duration: Seconds::from_minutes(1.8),
            },
            Outage {
                start: Seconds::from_hours(3.0),
                duration: Seconds::from_minutes(10.0),
            },
        ]);
        let (_, trajectories) =
            sim(BackupConfig::no_dg()).run_trace_trajectories(&trace, Seconds::new(YEAR));
        for t in &trajectories {
            let wire = t.to_json();
            let back = crate::Trajectory::from_json(&wire).expect("wire format parses");
            assert_eq!(*t, back, "JSON round-trip must be bit-exact");
        }
    }

    #[test]
    fn availability_accounts_downtime() {
        let trace = OutageTrace::new(vec![Outage {
            start: Seconds::from_hours(10.0),
            duration: Seconds::from_minutes(30.0),
        }]);
        let outcome = OutageSim::new(
            Cluster::rack(Workload::specjbb()),
            BackupConfig::min_cost(),
            Technique::crash(),
        )
        .run_trace(&trace, Seconds::new(YEAR));
        assert!(outcome.availability() < Fraction::ONE);
        assert!(
            outcome.nines() > 2.0 && outcome.nines() < 5.0,
            "{}",
            outcome.nines()
        );
        assert_eq!(outcome.state_losses(), 1);
    }
}
