//! The outage-handling techniques of the paper's Tables 4 and 6.

use core::fmt;
use dcb_server::{PState, TState, ThrottleLevel};

/// What the cluster does at the instant the outage begins (Table 4, "Start
/// of utility outage" column).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InitialAction {
    /// Keep serving at the given throttle (unthrottled = today's MaxPerf
    /// behaviour; throttled = the *Throttling* technique).
    Continue(ThrottleLevel),
    /// Let the servers crash (the MinCost baseline — also what physically
    /// happens when there is no UPS).
    Crash,
    /// Suspend to RAM immediately, entering at the given throttle
    /// (*Sleep* / *Sleep-L*).
    StartSleep(ThrottleLevel),
    /// Persist to local disk immediately at the given throttle
    /// (*Hibernate* / *Hibernate-L*; `proactive` = only the residual dirty
    /// state needs writing).
    StartHibernate {
        /// Throttle during the save.
        level: ThrottleLevel,
        /// Whether periodic flushing already persisted most state.
        proactive: bool,
    },
    /// Persist all volatile state into supercapacitor-backed NVDIMMs and
    /// power off — needs *no* backup energy at all (§7's NVDIMM
    /// enhancement).
    PersistNvdimm,
    /// Suspend to RAM but keep the NIC and memory controller alive so
    /// peers can serve reads from this server's memory over RDMA (§7's
    /// "RDMA over Sleep" / barely-alive enhancement).
    StartRemoteSleep(ThrottleLevel),
    /// Live-migrate to half the servers and shut the rest down
    /// (*Migration* / *Proactive Migration*).
    StartMigration {
        /// Whether a Remus-style remote copy reduces the state to move.
        proactive: bool,
        /// Throttle applied while migrating (suppresses the power spike).
        during: ThrottleLevel,
        /// Throttle on the consolidated survivors afterwards.
        after: ThrottleLevel,
    },
}

/// The save-state action a hybrid technique falls back to when the battery
/// nears exhaustion (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Fallback {
    /// Suspend to RAM, entering at the given throttle.
    Sleep(ThrottleLevel),
    /// Persist to local disk at the given throttle.
    Hibernate {
        /// Throttle during the save.
        level: ThrottleLevel,
        /// Whether periodic flushing already persisted most state.
        proactive: bool,
    },
    /// Persist into NVDIMMs instantly and at zero backup energy — lets a
    /// hybrid serve until the battery's very last drop.
    Nvdimm,
}

/// A complete outage-handling policy: an initial action plus an optional
/// low-battery fallback.
///
/// ```
/// use dcb_sim::Technique;
///
/// let catalog = Technique::catalog();
/// assert!(catalog.iter().any(|t| t.name() == "Throttle+Sleep-L"));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Technique {
    name: String,
    initial: InitialAction,
    fallback: Option<Fallback>,
}

/// The deepest pure-DVFS throttle: ~0.4 speed at roughly half peak power —
/// what the paper's "-L" (low-power) annotations mean (Table 8 shows the
/// `-L` variants saving at 0.5 normalized peak power).
#[must_use]
pub fn low_power_level() -> ThrottleLevel {
    ThrottleLevel {
        p: PState::slowest(),
        t: TState::full(),
    }
}

impl Technique {
    /// Builds a technique with an explicit name.
    #[must_use]
    pub fn named(
        name: impl Into<String>,
        initial: InitialAction,
        fallback: Option<Fallback>,
    ) -> Self {
        Self {
            name: name.into(),
            initial,
            fallback,
        }
    }

    /// Today's behaviour: keep running at full speed on backup power.
    #[must_use]
    pub fn ride_through() -> Self {
        Self::named(
            "RideThrough",
            InitialAction::Continue(ThrottleLevel::NONE),
            None,
        )
    }

    /// The MinCost baseline: no action, servers crash.
    #[must_use]
    pub fn crash() -> Self {
        Self::named("Crash", InitialAction::Crash, None)
    }

    /// *Throttling*: run in a lower-power active state for the whole outage.
    #[must_use]
    pub fn throttle(level: ThrottleLevel) -> Self {
        Self::named(
            format!("Throttle({level})"),
            InitialAction::Continue(level),
            None,
        )
    }

    /// *Throttling* at the deepest DVFS point (the "Min" end of the paper's
    /// Min/Max throttling bars).
    #[must_use]
    pub fn throttle_deepest() -> Self {
        Self::named(
            "Throttle(min)",
            InitialAction::Continue(low_power_level()),
            None,
        )
    }

    /// *Migration (Consolidation and Shutdown)*.
    #[must_use]
    pub fn migration() -> Self {
        Self::named(
            "Migration",
            InitialAction::StartMigration {
                proactive: false,
                during: ThrottleLevel::NONE,
                after: ThrottleLevel::NONE,
            },
            None,
        )
    }

    /// *Proactive Migration*: only the residual dirty state moves after the
    /// failure.
    #[must_use]
    pub fn proactive_migration() -> Self {
        Self::named(
            "ProactiveMigration",
            InitialAction::StartMigration {
                proactive: true,
                during: ThrottleLevel::NONE,
                after: ThrottleLevel::NONE,
            },
            None,
        )
    }

    /// *Sleep*: suspend to RAM at once.
    #[must_use]
    pub fn sleep() -> Self {
        Self::named(
            "Sleep",
            InitialAction::StartSleep(ThrottleLevel::NONE),
            None,
        )
    }

    /// *Sleep-L*: throttle while going to sleep (halves the peak power the
    /// backup must support).
    #[must_use]
    pub fn sleep_l() -> Self {
        Self::named(
            "Sleep-L",
            InitialAction::StartSleep(low_power_level()),
            None,
        )
    }

    /// *Hibernation*: persist to local disk at once.
    #[must_use]
    pub fn hibernate() -> Self {
        Self::named(
            "Hibernate",
            InitialAction::StartHibernate {
                level: ThrottleLevel::NONE,
                proactive: false,
            },
            None,
        )
    }

    /// *Hibernate-L*: throttle while persisting.
    #[must_use]
    pub fn hibernate_l() -> Self {
        Self::named(
            "Hibernate-L",
            InitialAction::StartHibernate {
                level: low_power_level(),
                proactive: false,
            },
            None,
        )
    }

    /// *Proactive Hibernation*: periodic flushing during normal operation
    /// leaves only a residual to persist.
    #[must_use]
    pub fn proactive_hibernate() -> Self {
        Self::named(
            "ProactiveHibernate",
            InitialAction::StartHibernate {
                level: ThrottleLevel::NONE,
                proactive: true,
            },
            None,
        )
    }

    /// *Throttle+Sleep-L* (Table 6): serve throttled, then throttle into
    /// sleep when the battery nears exhaustion.
    #[must_use]
    pub fn throttle_sleep_l(serve: ThrottleLevel) -> Self {
        Self::named(
            "Throttle+Sleep-L",
            InitialAction::Continue(serve),
            Some(Fallback::Sleep(low_power_level())),
        )
    }

    /// *Throttle+Hibernate* (Table 6): serve throttled, then throttle into
    /// hibernation when the battery nears exhaustion.
    #[must_use]
    pub fn throttle_hibernate(serve: ThrottleLevel) -> Self {
        Self::named(
            "Throttle+Hibernate",
            InitialAction::Continue(serve),
            Some(Fallback::Hibernate {
                level: low_power_level(),
                proactive: false,
            }),
        )
    }

    /// *Migration+Sleep-L* (Table 6): consolidate, then sleep the survivors
    /// when energy runs low.
    #[must_use]
    pub fn migration_sleep_l() -> Self {
        Self::named(
            "Migration+Sleep-L",
            InitialAction::StartMigration {
                proactive: false,
                during: ThrottleLevel::NONE,
                after: ThrottleLevel::NONE,
            },
            Some(Fallback::Sleep(low_power_level())),
        )
    }

    /// NVDIMM persistence (§7): flush to in-DIMM flash on failure, zero
    /// backup power required; resume restores DRAM from flash.
    #[must_use]
    pub fn nvdimm() -> Self {
        Self::named("NVDIMM", InitialAction::PersistNvdimm, None)
    }

    /// *Throttle+NVDIMM* (§7): serve throttled until the battery's last
    /// drop, then persist instantly into NVDIMMs.
    #[must_use]
    pub fn throttle_nvdimm(serve: ThrottleLevel) -> Self {
        Self::named(
            "Throttle+NVDIMM",
            InitialAction::Continue(serve),
            Some(Fallback::Nvdimm),
        )
    }

    /// *RDMA-Sleep* (§7): sleep with the NIC and memory controller alive so
    /// remote peers keep serving reads from this memory.
    #[must_use]
    pub fn rdma_sleep() -> Self {
        Self::named(
            "RDMA-Sleep",
            InitialAction::StartRemoteSleep(low_power_level()),
            None,
        )
    }

    /// The full technique catalog the evaluation sweeps (Figures 6–9): the
    /// two baselines, both pure categories, and the Table 6 hybrids.
    #[must_use]
    pub fn catalog() -> Vec<Technique> {
        vec![
            Self::crash(),
            Self::ride_through(),
            Self::throttle_deepest(),
            Self::migration(),
            Self::proactive_migration(),
            Self::sleep(),
            Self::sleep_l(),
            Self::hibernate(),
            Self::hibernate_l(),
            Self::proactive_hibernate(),
            Self::throttle_sleep_l(low_power_level()),
            Self::throttle_hibernate(low_power_level()),
            Self::migration_sleep_l(),
        ]
    }

    /// The catalog extended with the §7 enhancements (NVDIMM, RDMA-Sleep,
    /// and their hybrids) — used by the ablation exhibits.
    #[must_use]
    pub fn extended_catalog() -> Vec<Technique> {
        let mut catalog = Self::catalog();
        catalog.push(Self::nvdimm());
        catalog.push(Self::throttle_nvdimm(low_power_level()));
        catalog.push(Self::rdma_sleep());
        catalog
    }

    /// The technique's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The action taken at outage start.
    #[must_use]
    pub fn initial(&self) -> InitialAction {
        self.initial
    }

    /// The low-battery fallback, if any.
    #[must_use]
    pub fn fallback(&self) -> Option<Fallback> {
        self.fallback
    }

    /// Whether the technique keeps serving requests during (some of) the
    /// outage — the paper's *sustain-execution* category.
    #[must_use]
    pub fn sustains_execution(&self) -> bool {
        matches!(
            self.initial,
            InitialAction::Continue(_)
                | InitialAction::StartMigration { .. }
                | InitialAction::StartRemoteSleep(_)
        )
    }

    /// Whether the technique deliberately preserves volatile state — the
    /// paper's *save-state* category (directly or via fallback).
    #[must_use]
    pub fn saves_state(&self) -> bool {
        matches!(
            self.initial,
            InitialAction::StartSleep(_)
                | InitialAction::StartHibernate { .. }
                | InitialAction::PersistNvdimm
                | InitialAction::StartRemoteSleep(_)
        ) || self.fallback.is_some()
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_power_level_is_about_half_peak() {
        let spec = dcb_server::ServerSpec::paper_testbed();
        let p = spec.active_power(low_power_level(), dcb_units::Fraction::ONE);
        let frac = p / spec.peak_power();
        assert!(frac < 0.55 && frac > 0.3, "got {frac}");
    }

    #[test]
    fn catalog_covers_both_categories() {
        let catalog = Technique::catalog();
        assert!(catalog
            .iter()
            .any(|t| t.sustains_execution() && !t.saves_state()));
        assert!(catalog
            .iter()
            .any(|t| !t.sustains_execution() && t.saves_state()));
        assert!(catalog
            .iter()
            .any(|t| t.sustains_execution() && t.saves_state()));
    }

    #[test]
    fn extended_catalog_adds_enhancements() {
        let extended = Technique::extended_catalog();
        assert_eq!(extended.len(), Technique::catalog().len() + 3);
        assert!(extended.iter().any(|t| t.name() == "NVDIMM"));
        assert!(Technique::nvdimm().saves_state());
        assert!(Technique::rdma_sleep().sustains_execution());
        assert!(Technique::rdma_sleep().saves_state());
    }

    #[test]
    fn names_are_unique() {
        let catalog = Technique::extended_catalog();
        let mut names: Vec<&str> = catalog.iter().map(Technique::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len());
    }

    #[test]
    fn classification_matches_figure4() {
        assert!(Technique::throttle_deepest().sustains_execution());
        assert!(!Technique::throttle_deepest().saves_state());
        assert!(Technique::sleep().saves_state());
        assert!(!Technique::sleep().sustains_execution());
        assert!(Technique::migration().sustains_execution());
        assert!(Technique::throttle_sleep_l(low_power_level()).saves_state());
    }
}
