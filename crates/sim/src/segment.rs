//! Piecewise-constant trajectory segments produced by the event-driven
//! kernel.
//!
//! Between events the cluster's mode — and therefore its load and
//! normalized throughput rate — is constant, so one outage resolves to a
//! short list of [`Segment`]s instead of thousands of steps. The segment
//! list is the kernel's ground truth: every metric in
//! [`SimOutcome`](crate::SimOutcome) is an exact integral over it, and
//! [`Trajectory::validate`] re-checks those integrals as model contracts.

use crate::{FinalState, SimOutcome};
use dcb_units::{contract, Fraction, Seconds, WattHours, Watts};
use dcb_workload::DowntimeRange;

/// Why a segment ended — the event taxonomy of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SegmentEnd {
    /// Utility power returned.
    OutageEnd,
    /// A mode-internal timer expired (sleep entered, save finished,
    /// migration completed, recovery booted).
    TimerExpired,
    /// A live migration switched from its copy phase to the stop-and-copy
    /// pause.
    MigrationPause,
    /// The UPS battery ran dry mid-segment.
    BatteryDepleted,
    /// The load exceeded what the backup could deliver at this instant.
    SupplyOverload,
    /// The DG ramped far enough to carry the unthrottled load: throttling
    /// ends.
    DgCrossover,
    /// The latest safe instant to switch to the hybrid fallback arrived.
    HybridFallback,
    /// A crashed cluster found enough backup power to reboot mid-outage.
    RecoveryPower,
}

/// One constant-mode span of an outage trajectory.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Segment {
    /// Outage time at which the span begins.
    pub start: Seconds,
    /// Outage time at which the span ends.
    pub end: Seconds,
    /// Load drawn from the backup system during the span (IT + UPS tare).
    pub load: Watts,
    /// Normalized throughput rate delivered during the span (0..=1).
    pub throughput: f64,
    /// Whether the span counts toward in-outage downtime.
    pub in_downtime: bool,
    /// The event that ended the span.
    pub ended_by: SegmentEnd,
}

impl Segment {
    /// Span length.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// Normalized throughput-seconds delivered over the span.
    #[must_use]
    pub fn throughput_seconds(&self) -> f64 {
        self.throughput * self.duration().value()
    }
}

impl SegmentEnd {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::OutageEnd => "outage_end",
            Self::TimerExpired => "timer_expired",
            Self::MigrationPause => "migration_pause",
            Self::BatteryDepleted => "battery_depleted",
            Self::SupplyOverload => "supply_overload",
            Self::DgCrossover => "dg_crossover",
            Self::HybridFallback => "hybrid_fallback",
            Self::RecoveryPower => "recovery_power",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "outage_end" => Self::OutageEnd,
            "timer_expired" => Self::TimerExpired,
            "migration_pause" => Self::MigrationPause,
            "battery_depleted" => Self::BatteryDepleted,
            "supply_overload" => Self::SupplyOverload,
            "dg_crossover" => Self::DgCrossover,
            "hybrid_fallback" => Self::HybridFallback,
            "recovery_power" => Self::RecoveryPower,
            other => return Err(format!("unknown segment end {other:?}")),
        })
    }
}

/// A full outage trajectory: the ordered segment list plus the outcome
/// assembled from it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trajectory {
    /// Constant-mode spans in time order, tiling `[0, outage]`.
    pub segments: Vec<Segment>,
    /// The outcome integrated from the segments.
    pub outcome: SimOutcome,
}

impl Trajectory {
    /// Checks the kernel's structural invariants: non-negative durations,
    /// monotone contiguous event times covering the whole outage, bounded
    /// throughput rates, and segment integrals that reproduce the
    /// outcome's performance and in-outage downtime.
    ///
    /// All checks are `contract!`s: free in release unless the contracts
    /// layer is force-enabled (`dcb-audit sweep`).
    pub fn validate(&self) {
        let mut cursor = Seconds::ZERO;
        for seg in &self.segments {
            contract!(
                seg.duration().value() >= 0.0,
                "segment duration negative: {} -> {}",
                seg.start,
                seg.end
            );
            contract!(
                (seg.start - cursor).value().abs() < 1e-6,
                "segment start {} does not continue from {cursor}",
                seg.start
            );
            contract!(
                (0.0..=1.0 + 1e-9).contains(&seg.throughput),
                "segment throughput {} outside [0, 1]",
                seg.throughput
            );
            contract!(
                seg.load.value() >= 0.0,
                "segment load negative: {}",
                seg.load
            );
            cursor = seg.end;
        }
        contract!(
            (cursor - self.outcome.outage).value().abs() < 1e-6,
            "segments cover {cursor}, outage is {}",
            self.outcome.outage
        );
        let served: f64 = self.segments.iter().map(Segment::throughput_seconds).sum();
        let expected = self.outcome.perf_during_outage.value() * self.outcome.outage.value();
        contract!(
            (served - expected).abs() < 1e-6 * expected.max(1.0),
            "segment throughput integral {served} disagrees with outcome {expected}"
        );
        let down: f64 = self
            .segments
            .iter()
            .filter(|s| s.in_downtime)
            .map(|s| s.duration().value())
            .sum();
        contract!(
            (down - self.outcome.downtime_during_outage.value()).abs() < 1e-6,
            "segment downtime integral {down} disagrees with outcome {}",
            self.outcome.downtime_during_outage
        );
    }

    /// Normalized throughput-seconds served, recomputed from the segments
    /// alone (equals `perf_during_outage × outage`).
    #[must_use]
    pub fn served_seconds(&self) -> f64 {
        self.segments.iter().map(Segment::throughput_seconds).sum()
    }

    /// In-outage downtime, recomputed from the segments alone.
    #[must_use]
    pub fn downtime_seconds(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.in_downtime)
            .map(|s| s.duration().value())
            .sum()
    }

    /// Serializes to the trajectory wire format (JSON).
    ///
    /// The vendored `serde` is an inert stub (derives compile to nothing),
    /// so the wire format is hand-rolled: floats use Rust's shortest
    /// round-trippable rendering, which [`from_json`](Self::from_json)
    /// recovers bit-exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let o = &self.outcome;
        let mut out = String::with_capacity(256 + 128 * self.segments.len());
        let _ = write!(
            out,
            "{{\"outage_s\":{},\"feasible\":{},\"state_lost\":{},\"peak_power_w\":{},\
             \"peak_power_fraction\":{},\"energy_wh\":{},\"perf_during_outage\":{},\
             \"downtime_s\":{{\"min\":{},\"expected\":{},\"max\":{}}},\
             \"downtime_during_outage_s\":{},\"final_state\":\"{:?}\",\"segments\":[",
            o.outage.value(),
            o.feasible,
            o.state_lost,
            o.peak_power.value(),
            o.peak_power_fraction.value(),
            o.energy.value(),
            o.perf_during_outage.value(),
            o.downtime.min.value(),
            o.downtime.expected.value(),
            o.downtime.max.value(),
            o.downtime_during_outage.value(),
            o.final_state,
        );
        for (i, s) in self.segments.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"start_s\":{},\"end_s\":{},\"load_w\":{},\"throughput\":{},\
                 \"in_downtime\":{},\"ended_by\":\"{}\"}}",
                if i == 0 { "" } else { "," },
                s.start.value(),
                s.end.value(),
                s.load.value(),
                s.throughput,
                s.in_downtime,
                s.ended_by.as_str(),
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses the wire format emitted by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, unknown key or
    /// enum name, or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let top = value.as_object()?;
        let range = top.get("downtime_s")?.as_object()?;
        let final_state = match top.get("final_state")?.as_str()? {
            "Serving" => FinalState::Serving,
            "Sleeping" => FinalState::Sleeping,
            "EnteringSleep" => FinalState::EnteringSleep,
            "Hibernated" => FinalState::Hibernated,
            "Saving" => FinalState::Saving,
            "Migrating" => FinalState::Migrating,
            "Crashed" => FinalState::Crashed,
            "Recovering" => FinalState::Recovering,
            other => return Err(format!("unknown final state {other:?}")),
        };
        let outcome = SimOutcome {
            outage: Seconds::new(top.get("outage_s")?.as_f64()?),
            feasible: top.get("feasible")?.as_bool()?,
            state_lost: top.get("state_lost")?.as_bool()?,
            peak_power: Watts::new(top.get("peak_power_w")?.as_f64()?),
            peak_power_fraction: Fraction::new(top.get("peak_power_fraction")?.as_f64()?),
            energy: WattHours::new(top.get("energy_wh")?.as_f64()?),
            perf_during_outage: Fraction::new(top.get("perf_during_outage")?.as_f64()?),
            downtime: DowntimeRange {
                min: Seconds::new(range.get("min")?.as_f64()?),
                expected: Seconds::new(range.get("expected")?.as_f64()?),
                max: Seconds::new(range.get("max")?.as_f64()?),
            },
            downtime_during_outage: Seconds::new(top.get("downtime_during_outage_s")?.as_f64()?),
            final_state,
        };
        let mut segments = Vec::new();
        for item in top.get("segments")?.as_array()? {
            let seg = item.as_object()?;
            segments.push(Segment {
                start: Seconds::new(seg.get("start_s")?.as_f64()?),
                end: Seconds::new(seg.get("end_s")?.as_f64()?),
                load: Watts::new(seg.get("load_w")?.as_f64()?),
                throughput: seg.get("throughput")?.as_f64()?,
                in_downtime: seg.get("in_downtime")?.as_bool()?,
                ended_by: SegmentEnd::parse(seg.get("ended_by")?.as_str()?)?,
            });
        }
        Ok(Self { segments, outcome })
    }
}

/// A just-big-enough JSON reader for the trajectory wire format: objects,
/// arrays, escapeless strings, numbers, and booleans.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        String(String),
        Number(f64),
        Bool(bool),
    }

    impl Value {
        pub fn as_object(&self) -> Result<Object<'_>, String> {
            match self {
                Self::Object(pairs) => Ok(Object(pairs)),
                other => Err(format!("expected object, found {other:?}")),
            }
        }

        pub fn as_array(&self) -> Result<&[Value], String> {
            match self {
                Self::Array(items) => Ok(items),
                other => Err(format!("expected array, found {other:?}")),
            }
        }

        pub fn as_str(&self) -> Result<&str, String> {
            match self {
                Self::String(s) => Ok(s),
                other => Err(format!("expected string, found {other:?}")),
            }
        }

        pub fn as_f64(&self) -> Result<f64, String> {
            match self {
                Self::Number(n) => Ok(*n),
                other => Err(format!("expected number, found {other:?}")),
            }
        }

        pub fn as_bool(&self) -> Result<bool, String> {
            match self {
                Self::Bool(b) => Ok(*b),
                other => Err(format!("expected bool, found {other:?}")),
            }
        }
    }

    /// Key lookup over a borrowed object's pairs.
    #[derive(Clone, Copy)]
    pub struct Object<'a>(&'a [(String, Value)]);

    impl<'a> Object<'a> {
        pub fn get(&self, key: &str) -> Result<&'a Value, String> {
            self.0
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key:?}"))
        }
    }

    /// Parses one JSON value, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Ok(value)
        } else {
            Err(format!("trailing input at byte {pos}"))
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", char::from(b)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            pairs.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                *pos += 1;
                return Ok(s.to_owned());
            }
            if b == b'\\' {
                return Err(format!("escape sequences unsupported (byte {pos})"));
            }
            *pos += 1;
        }
        Err("unterminated string".to_owned())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        // The extra letters admit Rust's `inf`/`NaN` renderings, which
        // `f64::parse` understands even though strict JSON does not.
        while let Some(&b) = bytes.get(*pos) {
            if b.is_ascii_digit()
                || matches!(
                    b,
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'i' | b'n' | b'f' | b'a' | b'N'
                )
            {
                *pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|e| format!("invalid UTF-8 in number: {e}"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_units::Watts;

    fn sample() -> Trajectory {
        let outage = Seconds::new(100.0);
        let segments = vec![
            Segment {
                start: Seconds::ZERO,
                end: Seconds::new(62.5),
                load: Watts::new(4000.0),
                throughput: 1.0,
                in_downtime: false,
                ended_by: SegmentEnd::BatteryDepleted,
            },
            Segment {
                start: Seconds::new(62.5),
                end: outage,
                load: Watts::ZERO,
                throughput: 0.0,
                in_downtime: true,
                ended_by: SegmentEnd::OutageEnd,
            },
        ];
        let outcome = SimOutcome {
            outage,
            feasible: false,
            state_lost: true,
            peak_power: Watts::new(4000.0),
            peak_power_fraction: Fraction::new(1.0),
            energy: WattHours::new(4000.0 * 62.5 / 3600.0),
            perf_during_outage: Fraction::new(0.625),
            downtime: DowntimeRange {
                min: Seconds::new(400.0),
                expected: Seconds::new(437.5),
                max: Seconds::new(500.0),
            },
            downtime_during_outage: Seconds::new(37.5),
            final_state: FinalState::Crashed,
        };
        Trajectory { segments, outcome }
    }

    #[test]
    fn validate_accepts_a_consistent_trajectory() {
        sample().validate();
    }

    #[test]
    #[should_panic(expected = "segments cover")]
    fn validate_rejects_a_coverage_gap() {
        let mut t = sample();
        t.segments.pop();
        t.validate();
    }

    #[test]
    #[should_panic(expected = "throughput integral")]
    fn validate_rejects_a_wrong_throughput_integral() {
        let mut t = sample();
        t.segments[0].throughput = 0.5;
        t.validate();
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let t = sample();
        let back = Trajectory::from_json(&t.to_json()).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn json_round_trip_survives_awkward_floats() {
        let mut t = sample();
        // Shortest-representation floats with no finite decimal expansion.
        t.segments[0].end = Seconds::new(62.5 + 1.0 / 3.0);
        t.segments[1].start = t.segments[0].end;
        t.outcome.downtime.max = Seconds::new(f64::INFINITY);
        let back = Trajectory::from_json(&t.to_json()).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let err = Trajectory::from_json("{\"outage_s\":1}").expect_err("incomplete");
        assert!(err.contains("missing key"), "{err}");
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(Trajectory::from_json("").is_err());
        assert!(Trajectory::from_json("[1, 2").is_err());
        assert!(Trajectory::from_json("{\"a\":}").is_err());
        let with_trailing = format!("{} tail", sample().to_json());
        assert!(Trajectory::from_json(&with_trailing).is_err());
    }

    #[test]
    fn segment_end_names_round_trip() {
        for end in [
            SegmentEnd::OutageEnd,
            SegmentEnd::TimerExpired,
            SegmentEnd::MigrationPause,
            SegmentEnd::BatteryDepleted,
            SegmentEnd::SupplyOverload,
            SegmentEnd::DgCrossover,
            SegmentEnd::HybridFallback,
            SegmentEnd::RecoveryPower,
        ] {
            assert_eq!(SegmentEnd::parse(end.as_str()), Ok(end));
        }
        assert!(SegmentEnd::parse("melted").is_err());
    }
}
