//! Differential tests: the engine-hosted componentized kernel against
//! the legacy hand-rolled loop it replaced.
//!
//! The `dcb-engine` extraction is a refactor, not a remodel: over the
//! full Table-3 configuration × technique catalog × duration grid the
//! componentized kernel must reproduce the legacy kernel's trajectories
//! **bit for bit** — every segment boundary, every located root, every
//! outcome metric, down to the last float bit. Anything less means the
//! engine's calendar ordering or window pinning diverged from the legacy
//! candidate scan.

use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, Technique, Trajectory};
use dcb_units::Seconds;
use dcb_workload::Workload;
use proptest::prelude::*;

/// Durations spanning the paper's 30 s–2 h evaluation window.
fn durations() -> [Seconds; 3] {
    [
        Seconds::new(30.0),
        Seconds::new(1800.0),
        Seconds::new(7200.0),
    ]
}

/// Asserts two trajectories are bit-identical: float fields compared by
/// their raw bits, not by `==` (which would accept -0.0 vs 0.0 and other
/// same-value-different-bits drift).
fn assert_bit_identical(new: &Trajectory, old: &Trajectory, label: &str) {
    assert_eq!(
        new.segments.len(),
        old.segments.len(),
        "{label}: segment count {} vs {}",
        new.segments.len(),
        old.segments.len()
    );
    for (i, (n, o)) in new.segments.iter().zip(&old.segments).enumerate() {
        let pairs = [
            ("start", n.start.value(), o.start.value()),
            ("end", n.end.value(), o.end.value()),
            ("load", n.load.value(), o.load.value()),
            ("throughput", n.throughput, o.throughput),
        ];
        for (field, a, b) in pairs {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: segment {i} {field} {a} vs {b}"
            );
        }
        assert_eq!(
            n.in_downtime, o.in_downtime,
            "{label}: segment {i} downtime"
        );
        assert_eq!(n.ended_by, o.ended_by, "{label}: segment {i} end cause");
    }
    let (n, o) = (&new.outcome, &old.outcome);
    assert_eq!(n.feasible, o.feasible, "{label}: feasible");
    assert_eq!(n.state_lost, o.state_lost, "{label}: state_lost");
    assert_eq!(n.final_state, o.final_state, "{label}: final_state");
    let pairs = [
        ("outage", n.outage.value(), o.outage.value()),
        ("peak_power", n.peak_power.value(), o.peak_power.value()),
        (
            "peak_power_fraction",
            n.peak_power_fraction.value(),
            o.peak_power_fraction.value(),
        ),
        ("energy", n.energy.value(), o.energy.value()),
        (
            "perf_during_outage",
            n.perf_during_outage.value(),
            o.perf_during_outage.value(),
        ),
        (
            "downtime.min",
            n.downtime.min.value(),
            o.downtime.min.value(),
        ),
        (
            "downtime.expected",
            n.downtime.expected.value(),
            o.downtime.expected.value(),
        ),
        (
            "downtime.max",
            n.downtime.max.value(),
            o.downtime.max.value(),
        ),
        (
            "downtime_during_outage",
            n.downtime_during_outage.value(),
            o.downtime_during_outage.value(),
        ),
    ];
    for (field, a, b) in pairs {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: outcome {field} {a} vs {b}"
        );
    }
}

/// Runs both kernels on the same scenario (each against its own fresh
/// backup system) and demands bit identity.
fn compare(sim: &OutageSim, outage: Seconds, label: &str) {
    let new = sim.run_trajectory(outage);
    let old = sim.run_trajectory_legacy(outage);
    assert_bit_identical(&new, &old, label);
}

#[test]
fn componentized_kernel_is_bit_identical_on_the_full_grid() {
    let cluster = Cluster::rack(Workload::specjbb());
    let mut scenarios = 0u32;
    for config in BackupConfig::table3() {
        for technique in Technique::extended_catalog() {
            let sim = OutageSim::new(cluster, config.clone(), technique.clone());
            for outage in durations() {
                let label = format!("{config} / {technique} / {outage}");
                compare(&sim, outage, &label);
                scenarios += 1;
            }
        }
    }
    // 9 configs × 16 techniques × 3 durations: a regression here means
    // the grid itself shrank, not just a scenario.
    assert_eq!(scenarios, 9 * 16 * 3, "the Table-3 grid shrank");
}

#[test]
fn componentized_kernel_handles_degenerate_durations() {
    let cluster = Cluster::rack(Workload::specjbb());
    for technique in [
        Technique::ride_through(),
        Technique::hibernate(),
        Technique::migration(),
    ] {
        let sim = OutageSim::new(cluster, BackupConfig::no_dg(), technique.clone());
        for outage in [0.0, 1e-6, 0.25] {
            let label = format!("degenerate {technique} / {outage}s");
            compare(&sim, Seconds::new(outage), &label);
        }
    }
}

#[test]
fn componentized_kernel_preserves_battery_state_coupling() {
    // Back-to-back outages against the *same* backup system: the second
    // run starts from whatever charge the first left behind, so any
    // drift in the first run's final draw shows up in the second.
    let cluster = Cluster::rack(Workload::specjbb());
    let sim = OutageSim::new(
        cluster,
        BackupConfig::large_e_ups(),
        Technique::ride_through(),
    );
    let mut backup_new = sim.config().instantiate(sim.cluster().peak_power());
    let mut backup_old = sim.config().instantiate(sim.cluster().peak_power());
    for (i, outage) in [600.0, 900.0].into_iter().enumerate() {
        let new = sim.run_with_backup_trajectory(Seconds::new(outage), &mut backup_new);
        let old = sim.run_with_backup_trajectory_legacy(Seconds::new(outage), &mut backup_old);
        assert_bit_identical(&new, &old, &format!("chained outage #{i}"));
    }
}

proptest! {
    // Randomized scenario draw: any technique, any Table-3 config, any
    // duration in the 30 s–2 h window (not just the grid points).
    #[test]
    fn componentized_kernel_is_bit_identical_on_random_scenarios(
        config_ix in 0usize..9,
        technique_ix in 0usize..16,
        duration_s in 30.0f64..7200.0,
    ) {
        let cluster = Cluster::rack(Workload::specjbb());
        let config = BackupConfig::table3().swap_remove(config_ix);
        let technique = Technique::extended_catalog().swap_remove(technique_ix);
        let sim = OutageSim::new(cluster, config.clone(), technique.clone());
        let outage = Seconds::new(duration_s);
        let label = format!("{config} / {technique} / {outage}");
        compare(&sim, outage, &label);
    }
}
