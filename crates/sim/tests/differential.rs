//! Differential tests: the event-driven kernel against the fixed-step
//! oracle.
//!
//! The stepped solver is the original engine and survives only to check
//! the kernel: on the full Table-3 configuration × Table-4/6 technique ×
//! duration grid the two must agree on feasibility and state loss exactly
//! and on the continuous metrics to within the stepper's own
//! discretization error, and the disagreement must shrink as the step
//! does (the kernel is the dt → 0 limit).

use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, SimOutcome, Technique};
use dcb_units::Seconds;
use dcb_workload::Workload;
use proptest::prelude::*;

/// The historical step rule of the stepped engine.
fn default_step(outage: Seconds) -> f64 {
    (outage.value() / 7200.0).max(0.25)
}

/// Durations spanning the paper's 30 s–2 h evaluation window.
fn durations() -> [Seconds; 5] {
    [
        Seconds::new(30.0),
        Seconds::new(300.0),
        Seconds::new(1800.0),
        Seconds::new(3600.0),
        Seconds::new(7200.0),
    ]
}

struct Deviation {
    scenario: String,
    downtime: f64,
    perf: f64,
}

/// Compares one scenario, panicking on any boolean disagreement and
/// returning the continuous-metric deviations.
fn compare(sim: &OutageSim, outage: Seconds, step: Seconds, label: &str) -> Deviation {
    let kernel = sim.run(outage);
    let mut backup = sim.config().instantiate(sim.cluster().peak_power());
    let stepped = sim.run_with_backup_stepped_at(outage, &mut backup, step);
    assert_eq!(
        kernel.feasible, stepped.feasible,
        "{label}: feasibility disagrees (kernel {:?} vs stepped {:?})",
        kernel, stepped
    );
    assert_eq!(
        kernel.state_lost, stepped.state_lost,
        "{label}: state_lost disagrees"
    );
    let energy_scale = stepped.energy.value().abs().max(1.0);
    assert!(
        (kernel.energy.value() - stepped.energy.value()).abs()
            < 0.05 * energy_scale + step.value() * sim.cluster().peak_power().value() / 3600.0,
        "{label}: energy {} vs {}",
        kernel.energy,
        stepped.energy
    );
    Deviation {
        scenario: label.to_owned(),
        downtime: (kernel.downtime.expected - stepped.downtime.expected)
            .value()
            .abs(),
        perf: (kernel.perf_during_outage.value() - stepped.perf_during_outage.value()).abs(),
    }
}

#[test]
fn kernel_matches_stepper_on_the_full_grid() {
    let cluster = Cluster::rack(Workload::specjbb());
    let mut worst_downtime = Deviation {
        scenario: String::new(),
        downtime: 0.0,
        perf: 0.0,
    };
    let mut worst_perf = Deviation {
        scenario: String::new(),
        downtime: 0.0,
        perf: 0.0,
    };
    for config in BackupConfig::table3() {
        for technique in Technique::extended_catalog() {
            let sim = OutageSim::new(cluster, config.clone(), technique.clone());
            for outage in durations() {
                let dt = default_step(outage);
                let label = format!("{config} / {technique} / {outage}");
                let dev = compare(&sim, outage, Seconds::new(dt), &label);
                // The stepper quantizes every event to its grid; a handful
                // of events each contribute up to one step of error.
                let downtime_tol = (5.0 * dt).max(2.0);
                let perf_tol = (10.0 * dt / outage.value()).max(0.01);
                assert!(
                    dev.downtime < downtime_tol,
                    "{label}: downtime deviates {}s (tol {downtime_tol})",
                    dev.downtime
                );
                assert!(
                    dev.perf < perf_tol,
                    "{label}: perf deviates {} (tol {perf_tol})",
                    dev.perf
                );
                if dev.downtime > worst_downtime.downtime {
                    worst_downtime = Deviation {
                        scenario: label.clone(),
                        ..dev
                    };
                } else if dev.perf > worst_perf.perf {
                    worst_perf = Deviation {
                        scenario: label,
                        ..dev
                    };
                }
            }
        }
    }
    println!(
        "worst downtime dev: {}s at {}; worst perf dev: {} at {}",
        worst_downtime.downtime, worst_downtime.scenario, worst_perf.perf, worst_perf.scenario
    );
}

/// The metrics the dt-refinement test tracks.
fn metrics(o: &SimOutcome) -> (f64, f64) {
    (o.downtime.expected.value(), o.perf_during_outage.value())
}

#[test]
fn stepped_error_tightens_as_dt_shrinks() {
    // Scenarios with genuinely event-shaped trajectories: a mid-outage
    // battery death, a hybrid fallback, and a DG-powered crash recovery.
    let cluster = Cluster::rack(Workload::specjbb());
    let cases = [
        (
            BackupConfig::no_dg(),
            Technique::ride_through(),
            Seconds::new(600.0),
        ),
        (
            BackupConfig::small_p_large_e_ups(),
            Technique::throttle_sleep_l(dcb_sim::low_power_level()),
            Seconds::new(7200.0),
        ),
        (
            BackupConfig::no_ups(),
            Technique::ride_through(),
            Seconds::new(7200.0),
        ),
    ];
    for (config, technique, outage) in cases {
        let sim = OutageSim::new(cluster, config.clone(), technique.clone());
        let kernel = metrics(&sim.run(outage));
        let mut last_err = f64::INFINITY;
        for dt in [4.0, 1.0, 0.25] {
            let mut backup = sim.config().instantiate(sim.cluster().peak_power());
            let stepped =
                metrics(&sim.run_with_backup_stepped_at(outage, &mut backup, Seconds::new(dt)));
            let err = (kernel.0 - stepped.0).abs().max(
                // Weight perf into the same scale as downtime seconds.
                (kernel.1 - stepped.1).abs() * outage.value(),
            );
            // Refinement may plateau once fp noise dominates, so allow a
            // small slack factor rather than demanding strict decrease.
            assert!(
                err <= last_err.max(2.0 * dt) + 1e-9,
                "{config} / {technique}: error {err} at dt={dt} worse than {last_err}"
            );
            last_err = err;
        }
        // At the finest step the two solvers are close in absolute terms.
        assert!(
            last_err < 2.0,
            "{config} / {technique}: residual error {last_err}s at dt=0.25"
        );
    }
}

proptest! {
    // Randomized scenario draw: any technique, any Table-3 config, any
    // duration in the 30 s–2 h window (not just the five grid points).
    #[test]
    fn kernel_matches_stepper_on_random_scenarios(
        config_ix in 0usize..9,
        technique_ix in 0usize..16,
        duration_s in 30.0f64..7200.0,
    ) {
        let cluster = Cluster::rack(Workload::specjbb());
        let config = BackupConfig::table3().swap_remove(config_ix);
        let technique = Technique::extended_catalog().swap_remove(technique_ix);
        let outage = Seconds::new(duration_s);
        let dt = default_step(outage);
        let sim = OutageSim::new(cluster, config.clone(), technique.clone());
        let label = format!("{config} / {technique} / {outage}");
        let dev = compare(&sim, outage, Seconds::new(dt), &label);
        prop_assert!(dev.downtime < (5.0 * dt).max(2.0), "{label}: downtime dev {}", dev.downtime);
        prop_assert!(dev.perf < (10.0 * dt / outage.value()).max(0.01), "{label}: perf dev {}", dev.perf);
    }
}
