//! Battery chemistries and their discharge/cost characteristics.

use core::fmt;
use dcb_units::Years;

/// A battery chemistry, determining the nonlinearity of discharge and the
/// replacement lifetime used for cost amortization.
///
/// The paper evaluates lead-acid (the datacenter default) and discusses
/// Li-ion as a future enhancement (§7): Li-ion has a longer lifetime and a
/// much flatter runtime curve, but its *energy* capacity is relatively more
/// expensive than its *power* capacity compared to lead-acid.
///
/// ```
/// use dcb_battery::Chemistry;
/// assert!(Chemistry::LeadAcid.peukert_exponent() > Chemistry::LithiumIon.peukert_exponent());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Chemistry {
    /// Valve-regulated lead-acid, the chemistry of today's rack-level UPSes
    /// (Facebook, Microsoft) and of the paper's Figure 3 chart.
    #[default]
    LeadAcid,
    /// Lithium-ion, the "newer battery technology" of §7.
    LithiumIon,
}

impl Chemistry {
    /// All supported chemistries.
    pub const ALL: [Chemistry; 2] = [Chemistry::LeadAcid, Chemistry::LithiumIon];

    /// The Peukert exponent `k ≥ 1` governing how sharply effective capacity
    /// shrinks at high discharge rates (`k = 1` is an ideal store).
    ///
    /// Lead-acid uses `k = log 6 / log 4 ≈ 1.292`, the unique exponent that
    /// reproduces both anchor points of the paper's Figure 3 chart
    /// (10 min @ 100 % load, 60 min @ 25 % load). Li-ion discharge is much
    /// closer to ideal; we use the conventional `k = 1.05`.
    #[must_use]
    pub fn peukert_exponent(self) -> f64 {
        match self {
            // ln(60/10) / ln(4000/1000)
            Chemistry::LeadAcid => 1.292_481_250_360_578,
            Chemistry::LithiumIon => 1.05,
        }
    }

    /// Replacement lifetime used to depreciate battery capital cost.
    ///
    /// The paper amortizes lead-acid over 4 years (Table 1 caption); Li-ion
    /// lifetimes run 2–3× longer, we use 10 years.
    #[must_use]
    pub fn lifetime(self) -> Years {
        match self {
            Chemistry::LeadAcid => Years::new(4.0),
            Chemistry::LithiumIon => Years::new(10.0),
        }
    }

    /// Relative *capital* price of a unit of energy capacity versus
    /// lead-acid's (lead-acid ≡ 1.0). Feeds the §7 Li-ion cost-sensitivity
    /// ablation: at the paper's timeframe Li-ion capacity ran several times
    /// lead-acid's $/kWh, so its energy stays more expensive per year even
    /// after the longer lifetime is credited ("the higher energy cost may
    /// prefer more energy saving techniques", §7).
    #[must_use]
    pub fn relative_energy_cost(self) -> f64 {
        match self {
            Chemistry::LeadAcid => 1.0,
            Chemistry::LithiumIon => 4.5,
        }
    }

    /// Relative price of a unit of *power* capacity versus lead-acid's.
    /// Li-ion's high power density makes power relatively cheap.
    #[must_use]
    pub fn relative_power_cost(self) -> f64 {
        match self {
            Chemistry::LeadAcid => 1.0,
            Chemistry::LithiumIon => 0.8,
        }
    }

    /// Time to recharge a fully drained pack at the safe charging rate.
    ///
    /// Lead-acid charges at ~C/10 (≈10 h to full); Li-ion tolerates much
    /// faster charging (~2 h). Matters for back-to-back outages: a second
    /// outage shortly after the first finds the battery only partially
    /// recharged.
    #[must_use]
    pub fn recharge_time(self) -> dcb_units::Seconds {
        match self {
            Chemistry::LeadAcid => dcb_units::Seconds::from_hours(10.0),
            Chemistry::LithiumIon => dcb_units::Seconds::from_hours(2.0),
        }
    }
}

impl fmt::Display for Chemistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chemistry::LeadAcid => f.write_str("lead-acid"),
            Chemistry::LithiumIon => f.write_str("Li-ion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lead_acid_exponent_reproduces_figure3_anchors() {
        // 4x load ratio must shrink runtime by exactly 6x.
        let k = Chemistry::LeadAcid.peukert_exponent();
        assert!((4.0f64.powf(k) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn exponents_are_physical() {
        for chem in Chemistry::ALL {
            assert!(chem.peukert_exponent() >= 1.0, "{chem} must have k >= 1");
        }
    }

    #[test]
    fn lithium_outlives_lead_acid() {
        assert!(Chemistry::LithiumIon.lifetime() > Chemistry::LeadAcid.lifetime());
    }

    #[test]
    fn display_names() {
        assert_eq!(Chemistry::LeadAcid.to_string(), "lead-acid");
        assert_eq!(Chemistry::LithiumIon.to_string(), "Li-ion");
    }
}
