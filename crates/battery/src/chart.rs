//! Runtime-versus-load charts (reproduces the paper's Figure 3).

use crate::PackSpec;
use dcb_units::{Fraction, Seconds, WattHours, Watts};

/// One point of a runtime chart: load level, runtime, energy delivered.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChartPoint {
    /// Load as a fraction of the pack's rated power.
    pub load: Fraction,
    /// Absolute load in watts.
    pub load_watts: Watts,
    /// Runtime sustained at that load.
    pub runtime: Seconds,
    /// Total energy delivered over the runtime.
    pub energy: WattHours,
}

/// Produces the runtime chart of a pack over `steps` evenly spaced load
/// levels from `1/steps` to 100 % of rated power — the data behind the
/// paper's Figure 3.
///
/// # Panics
///
/// Panics if `steps` is zero.
///
/// ```
/// use dcb_battery::{runtime_chart, PackSpec};
///
/// let chart = runtime_chart(PackSpec::figure3_reference(), 4);
/// assert_eq!(chart.len(), 4);
/// // Quarter load lasts 60 minutes, full load 10 minutes.
/// assert!((chart[0].runtime.to_minutes() - 60.0).abs() < 1e-6);
/// assert!((chart[3].runtime.to_minutes() - 10.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn runtime_chart(pack: PackSpec, steps: usize) -> Vec<ChartPoint> {
    assert!(steps > 0, "chart needs at least one step");
    (1..=steps)
        .map(|i| {
            let load = Fraction::new(i as f64 / steps as f64);
            let load_watts = pack.rated_power() * load.value();
            let runtime = pack.runtime_at(load_watts);
            ChartPoint {
                load,
                load_watts,
                runtime,
                energy: pack.energy_delivered_at(load_watts),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_is_monotone_decreasing_in_runtime() {
        let chart = runtime_chart(PackSpec::figure3_reference(), 20);
        for pair in chart.windows(2) {
            assert!(pair[0].runtime >= pair[1].runtime);
            assert!(pair[0].energy >= pair[1].energy);
        }
    }

    #[test]
    fn chart_covers_full_load_range() {
        let chart = runtime_chart(PackSpec::figure3_reference(), 10);
        assert_eq!(chart.first().unwrap().load, Fraction::new(0.1));
        assert_eq!(chart.last().unwrap().load, Fraction::ONE);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let _ = runtime_chart(PackSpec::figure3_reference(), 0);
    }
}
