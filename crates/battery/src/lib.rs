//! Nonlinear battery runtime models for UPS provisioning.
//!
//! The paper's central battery observation (§3, Figure 3) is that **runtime
//! is disproportionately higher at lower load levels**: the APC 4 kW pack it
//! charts lasts 10 minutes at 100 % load (delivering 0.66 kWh) but 60 minutes
//! at 25 % load (delivering 1 kWh). The underprovisioning study exploits this
//! to stretch limited UPS capacity through power outages.
//!
//! This crate models that behaviour with the classical **Peukert law**,
//! calibrated so the paper's two anchor points are reproduced exactly, and
//! layers a stateful [`Battery`] on top whose discharge under a time-varying
//! load integrates the rate-dependent depletion.
//!
//! # Examples
//!
//! ```
//! use dcb_battery::{Chemistry, PackSpec};
//! use dcb_units::{Watts, Seconds};
//!
//! // The APC pack from Figure 3: 4 kW rated, 10 minutes at rated load.
//! let pack = PackSpec::new(Watts::new(4000.0), Seconds::from_minutes(10.0), Chemistry::LeadAcid);
//! let quarter_load = pack.runtime_at(Watts::new(1000.0));
//! assert!((quarter_load.to_minutes() - 60.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod chemistry;
mod pack;
mod state;

pub use chart::{runtime_chart, ChartPoint};
pub use chemistry::Chemistry;
pub use pack::PackSpec;
pub use state::{Battery, DrawOutcome};
