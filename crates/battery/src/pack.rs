//! Battery pack specifications and the Peukert runtime law.

use crate::Chemistry;
use dcb_units::{contract, Fraction, Seconds, WattHours, Watts};

/// The static specification of a battery pack: rated power, runtime at rated
/// power, and chemistry.
///
/// The paper parameterizes UPS batteries exactly this way — a peak power
/// capacity plus an energy capacity expressed as *runtime* (Table 2 reports
/// "UPS runtime" in minutes; Table 3's `LargeEUPS` is "30 min"). The
/// `rated_runtime` here is the runtime at 100 % load, so the pack's nominal
/// energy is `rated_power × rated_runtime`.
///
/// ```
/// use dcb_battery::{Chemistry, PackSpec};
/// use dcb_units::{Watts, Seconds};
///
/// let pack = PackSpec::new(Watts::new(4000.0), Seconds::from_minutes(10.0), Chemistry::LeadAcid);
/// // Nominal (100%-load) energy of the Figure 3 pack is 0.66 kWh.
/// assert!((pack.nominal_energy().value() - 666.7).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackSpec {
    rated_power: Watts,
    rated_runtime: Seconds,
    chemistry: Chemistry,
}

impl PackSpec {
    /// Creates a pack rated to deliver `rated_power` for `rated_runtime`.
    ///
    /// # Panics
    ///
    /// Panics if `rated_power` or `rated_runtime` is negative, or if
    /// `rated_runtime` is not finite.
    #[must_use]
    pub fn new(rated_power: Watts, rated_runtime: Seconds, chemistry: Chemistry) -> Self {
        assert!(rated_power.value() >= 0.0, "rated power must be >= 0");
        assert!(
            rated_runtime.value() >= 0.0 && rated_runtime.is_finite(),
            "rated runtime must be finite and >= 0"
        );
        Self {
            rated_power,
            rated_runtime,
            chemistry,
        }
    }

    /// The Figure 3 pack: 4 kW lead-acid, 10 minutes at rated load.
    #[must_use]
    pub fn figure3_reference() -> Self {
        Self::new(
            Watts::new(4000.0),
            Seconds::from_minutes(10.0),
            Chemistry::LeadAcid,
        )
    }

    /// Rated (peak) power.
    #[must_use]
    pub fn rated_power(self) -> Watts {
        self.rated_power
    }

    /// Runtime at rated power.
    #[must_use]
    pub fn rated_runtime(self) -> Seconds {
        self.rated_runtime
    }

    /// The chemistry.
    #[must_use]
    pub fn chemistry(self) -> Chemistry {
        self.chemistry
    }

    /// Nominal energy: what the pack delivers when drained at rated power.
    ///
    /// This is the "UPSEnergyCapacity" that enters the paper's cost model
    /// (Equation 2): power × runtime.
    #[must_use]
    pub fn nominal_energy(self) -> WattHours {
        self.rated_power * self.rated_runtime
    }

    /// Runtime at a constant `load`, per Peukert's law:
    ///
    /// `t(P) = rated_runtime × (rated_power / P)^k`.
    ///
    /// Reproduces Figure 3's anchors for the reference pack: 10 min at
    /// 4 kW, 60 min at 1 kW. Loads above rated power extrapolate along the
    /// same law (runtime *below* rated runtime); enforcing the power
    /// capacity limit is the UPS's job, not the cell model's.
    ///
    /// Returns an infinite runtime at zero load and zero runtime for a pack
    /// with zero rated power or runtime.
    #[must_use]
    pub fn runtime_at(self, load: Watts) -> Seconds {
        if self.rated_power.value() <= 0.0 || self.rated_runtime.value() <= 0.0 {
            return Seconds::ZERO;
        }
        if load.value() <= 0.0 {
            return Seconds::new(f64::INFINITY);
        }
        let ratio = self.rated_power.value() / load.value();
        let runtime = self.rated_runtime * ratio.powf(self.chemistry.peukert_exponent());
        contract!(
            runtime.value() >= 0.0,
            "Peukert runtime must be non-negative, got {runtime} at load {load}"
        );
        runtime
    }

    /// Energy actually delivered when drained at a constant `load`:
    /// `P × t(P)`. Monotonically decreasing in load for `k > 1` — the
    /// Figure 3 pack delivers 1 kWh at 25 % load but only 0.66 kWh at full
    /// load.
    #[must_use]
    pub fn energy_delivered_at(self, load: Watts) -> WattHours {
        if load.value() <= 0.0 {
            return WattHours::ZERO;
        }
        let energy = load * self.runtime_at(load);
        contract!(
            energy.value() >= 0.0,
            "delivered energy must be non-negative, got {energy} at load {load}"
        );
        energy
    }

    /// Instantaneous discharge rate at a constant `load`, in state-of-charge
    /// fraction per second: `1 / runtime_at(load)`.
    ///
    /// Zero at zero/negative load; infinite for a zero-capacity pack under
    /// any positive load.
    #[must_use]
    pub fn drain_rate(self, load: Watts) -> f64 {
        if load.value() <= 0.0 {
            return 0.0;
        }
        let runtime = self.runtime_at(load);
        if runtime.value() <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / runtime.value()
    }

    /// `rated_power^k × rated_runtime` — the denominator of the Peukert
    /// drain rate `P^k / (P_r^k · t_r)`. `None` for a zero-capacity pack.
    fn peukert_denominator(self) -> Option<f64> {
        if self.rated_power.value() <= 0.0 || self.rated_runtime.value() <= 0.0 {
            return None;
        }
        let k = self.chemistry.peukert_exponent();
        Some(self.rated_power.value().powf(k) * self.rated_runtime.value())
    }

    /// State-of-charge fraction consumed by a load ramping linearly from
    /// `start_load` to `end_load` over `duration` — the exact integral of
    /// the Peukert drain rate over an affine load:
    ///
    /// `∫₀^d (P₀ + s·t)^k dt / (P_r^k · t_r)
    ///   = (P₁^{k+1} − P₀^{k+1}) / (s · (k+1) · P_r^k · t_r)`.
    ///
    /// Negative loads are clamped to zero (they draw nothing); a
    /// zero-capacity pack returns infinity under any positive load. This is
    /// the closed form that lets the event-driven simulation kernel advance
    /// a battery across a whole DG-ramp segment in one step.
    #[must_use]
    pub fn charge_used_over_ramp(
        self,
        start_load: Watts,
        end_load: Watts,
        duration: Seconds,
    ) -> f64 {
        let d = duration.value();
        if d <= 0.0 {
            return 0.0;
        }
        let p0 = start_load.value().max(0.0);
        let p1 = end_load.value().max(0.0);
        if p0 <= 0.0 && p1 <= 0.0 {
            return 0.0;
        }
        let Some(denom) = self.peukert_denominator() else {
            return f64::INFINITY;
        };
        let k = self.chemistry.peukert_exponent();
        // Near-constant ramps hit catastrophic cancellation in the closed
        // form; integrate at the midpoint load instead.
        let used = if (p1 - p0).abs() <= 1e-9 * p0.max(p1).max(1.0) {
            let mid = 0.5 * (p0 + p1);
            d * mid.powf(k) / denom
        } else {
            let s = (p1 - p0) / d;
            (p1.powf(k + 1.0) - p0.powf(k + 1.0)) / (s * (k + 1.0) * denom)
        };
        contract!(
            used >= 0.0,
            "ramp charge use must be non-negative, got {used} for {start_load}->{end_load} over {duration}"
        );
        used
    }

    /// The instant within `duration` at which `charge` state-of-charge runs
    /// out under a load ramping linearly from `start_load` to `end_load`,
    /// or `None` if the charge outlasts the whole ramp.
    ///
    /// Inverts [`Self::charge_used_over_ramp`]: solves
    /// `P(τ)^{k+1} = P₀^{k+1} + charge · s · (k+1) · P_r^k · t_r` for τ.
    /// Depletion strictly at `duration` counts as surviving (`None`),
    /// matching [`crate::Battery::draw`]'s `endurance >= interval` test.
    #[must_use]
    pub fn depletion_time_over_ramp(
        self,
        charge: Fraction,
        start_load: Watts,
        end_load: Watts,
        duration: Seconds,
    ) -> Option<Seconds> {
        let charge = charge.value();
        let d = duration.value();
        if d <= 0.0 {
            return None;
        }
        let p0 = start_load.value().max(0.0);
        let p1 = end_load.value().max(0.0);
        if p0 <= 0.0 && p1 <= 0.0 {
            return None;
        }
        if self.peukert_denominator().is_none() {
            // No capacity at all: the pack dies the instant load appears.
            return Some(Seconds::ZERO);
        }
        let total = self.charge_used_over_ramp(start_load, end_load, duration);
        if charge >= total {
            return None;
        }
        let k = self.chemistry.peukert_exponent();
        let tau = if (p1 - p0).abs() <= 1e-9 * p0.max(p1).max(1.0) {
            let mid = 0.5 * (p0 + p1);
            charge / self.drain_rate(Watts::new(mid))
        } else {
            let denom = self.peukert_denominator()?;
            let s = (p1 - p0) / d;
            let target = p0.powf(k + 1.0) + charge * s * (k + 1.0) * denom;
            // `charge < total` bounds target within [p_min, p_max]^{k+1},
            // so the root is real; clamp tiny negatives from rounding.
            let p_tau = target.max(0.0).powf(1.0 / (k + 1.0));
            (p_tau - p0) / s
        };
        let tau = tau.clamp(0.0, d);
        contract!(
            (0.0..=d).contains(&tau),
            "depletion time {tau} outside ramp duration {duration}"
        );
        Some(Seconds::new(tau))
    }

    /// Scales the pack's rated power, keeping the rated runtime — models
    /// composing more strings of the same cells in parallel.
    #[must_use]
    pub fn scale_power(self, factor: f64) -> Self {
        Self::new(
            self.rated_power * factor,
            self.rated_runtime,
            self.chemistry,
        )
    }

    /// Returns a pack with additional energy modules so that its runtime at
    /// rated power becomes `runtime` (the paper's "Additional battery
    /// modules can be added to this base capacity").
    #[must_use]
    pub fn with_rated_runtime(self, runtime: Seconds) -> Self {
        Self::new(self.rated_power, runtime, self.chemistry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference() -> PackSpec {
        PackSpec::figure3_reference()
    }

    #[test]
    fn figure3_anchor_full_load() {
        let t = reference().runtime_at(Watts::new(4000.0));
        assert!((t.to_minutes() - 10.0).abs() < 1e-9);
        let e = reference().energy_delivered_at(Watts::new(4000.0));
        assert!(
            (e.value() - 666.666).abs() < 1.0,
            "expected ~0.66 kWh, got {e}"
        );
    }

    #[test]
    fn figure3_anchor_quarter_load() {
        let t = reference().runtime_at(Watts::new(1000.0));
        assert!((t.to_minutes() - 60.0).abs() < 1e-6);
        let e = reference().energy_delivered_at(Watts::new(1000.0));
        assert!((e.value() - 1000.0).abs() < 1e-6, "expected 1 kWh, got {e}");
    }

    #[test]
    fn zero_load_runs_forever() {
        assert!(reference().runtime_at(Watts::ZERO).value().is_infinite());
        assert_eq!(
            reference().energy_delivered_at(Watts::ZERO),
            WattHours::ZERO
        );
    }

    #[test]
    fn zero_capacity_pack_has_no_runtime() {
        let dead = PackSpec::new(Watts::ZERO, Seconds::ZERO, Chemistry::LeadAcid);
        assert_eq!(dead.runtime_at(Watts::new(100.0)), Seconds::ZERO);
    }

    #[test]
    fn lithium_flatter_than_lead_acid() {
        let la = reference();
        let li = PackSpec::new(la.rated_power(), la.rated_runtime(), Chemistry::LithiumIon);
        // At quarter load, lead-acid gains relatively more runtime.
        let quarter = Watts::new(1000.0);
        assert!(la.runtime_at(quarter) > li.runtime_at(quarter));
        // At rated load they agree by construction.
        assert_eq!(
            la.runtime_at(Watts::new(4000.0)),
            li.runtime_at(Watts::new(4000.0))
        );
    }

    #[test]
    fn overload_extrapolates_below_rated_runtime() {
        let t = reference().runtime_at(Watts::new(8000.0));
        assert!(t < reference().rated_runtime());
        assert!(t.value() > 0.0);
    }

    #[test]
    fn drain_rate_inverts_runtime() {
        let pack = reference();
        let load = Watts::new(2000.0);
        let rate = pack.drain_rate(load);
        assert!((rate * pack.runtime_at(load).value() - 1.0).abs() < 1e-12);
        assert_eq!(pack.drain_rate(Watts::ZERO), 0.0);
    }

    #[test]
    fn flat_ramp_matches_constant_drain() {
        let pack = reference();
        let load = Watts::new(3000.0);
        let d = Seconds::from_minutes(2.0);
        let ramp = pack.charge_used_over_ramp(load, load, d);
        let flat = d.value() * pack.drain_rate(load);
        assert!((ramp - flat).abs() < 1e-12, "{ramp} vs {flat}");
    }

    #[test]
    fn ramp_use_between_endpoint_constants() {
        // Convexity of P^k (k > 1) puts the ramp integral between the
        // constant-load bounds at the endpoints.
        let pack = reference();
        let d = Seconds::new(95.0);
        let (lo, hi) = (Watts::new(500.0), Watts::new(4000.0));
        let ramp = pack.charge_used_over_ramp(lo, hi, d);
        assert!(ramp > d.value() * pack.drain_rate(lo));
        assert!(ramp < d.value() * pack.drain_rate(hi));
    }

    #[test]
    fn zero_capacity_pack_ramp_behaviour() {
        let dead = PackSpec::new(Watts::ZERO, Seconds::ZERO, Chemistry::LeadAcid);
        let d = Seconds::new(10.0);
        assert!(dead
            .charge_used_over_ramp(Watts::new(1.0), Watts::new(2.0), d)
            .is_infinite());
        assert_eq!(
            dead.depletion_time_over_ramp(Fraction::new(1.0), Watts::new(1.0), Watts::new(2.0), d),
            Some(Seconds::ZERO)
        );
        assert_eq!(dead.charge_used_over_ramp(Watts::ZERO, Watts::ZERO, d), 0.0);
    }

    #[test]
    fn depletion_time_matches_constant_runtime() {
        let pack = reference();
        let load = Watts::new(4000.0);
        // Full charge at rated load depletes exactly at rated runtime; ask
        // over a longer window and the solver should pinpoint it.
        let tau = pack
            .depletion_time_over_ramp(Fraction::new(1.0), load, load, Seconds::from_hours(1.0))
            .expect("must deplete within the hour");
        assert!((tau.to_minutes() - 10.0).abs() < 1e-9);
        // Exactly at the boundary counts as surviving.
        assert!(pack
            .depletion_time_over_ramp(Fraction::new(1.0), load, load, pack.runtime_at(load))
            .is_none());
    }

    proptest! {
        #[test]
        fn ramp_charge_composes_over_splits(
            p0 in 0.0f64..5000.0,
            p1 in 0.0f64..5000.0,
            d in 1.0f64..3600.0,
            cut in 0.05f64..0.95,
        ) {
            // Integrating [0,d] equals integrating [0,c] + [c,d] along the
            // same affine load.
            let pack = reference();
            let (p0, p1) = (Watts::new(p0), Watts::new(p1));
            let whole = pack.charge_used_over_ramp(p0, p1, Seconds::new(d));
            let c = cut * d;
            let pc = Watts::new(p0.value() + (p1.value() - p0.value()) * cut);
            let first = pack.charge_used_over_ramp(p0, pc, Seconds::new(c));
            let second = pack.charge_used_over_ramp(pc, p1, Seconds::new(d - c));
            prop_assert!(
                (whole - (first + second)).abs() < 1e-9 * whole.max(1e-12),
                "{whole} vs {first} + {second}"
            );
        }

        #[test]
        fn depletion_inverts_charge_used(
            p0 in 10.0f64..5000.0,
            p1 in 10.0f64..5000.0,
            d in 1.0f64..3600.0,
            frac in 0.05f64..0.95,
        ) {
            // charge_used_over_ramp(0..τ) == c whenever
            // depletion_time_over_ramp(c) == τ.
            let pack = reference();
            let (p0, p1) = (Watts::new(p0), Watts::new(p1));
            let d = Seconds::new(d);
            let total = pack.charge_used_over_ramp(p0, p1, d);
            let c = frac * total.min(1.0);
            prop_assume!(c < total);
            let tau = pack.depletion_time_over_ramp(Fraction::new(c), p0, p1, d)
                .expect("charge below total use must deplete");
            let s = (p1.value() - p0.value()) / d.value();
            let p_tau = Watts::new(p0.value() + s * tau.value());
            let used = pack.charge_used_over_ramp(p0, p_tau, tau);
            prop_assert!((used - c).abs() < 1e-9, "used {used} target {c}");
        }

        #[test]
        fn runtime_monotone_decreasing_in_load(
            lo in 1.0f64..4000.0,
            extra in 0.1f64..4000.0,
        ) {
            let pack = reference();
            let t_lo = pack.runtime_at(Watts::new(lo));
            let t_hi = pack.runtime_at(Watts::new(lo + extra));
            prop_assert!(t_hi <= t_lo);
        }

        #[test]
        fn energy_delivered_monotone_decreasing_in_load(
            lo in 1.0f64..4000.0,
            extra in 0.1f64..4000.0,
        ) {
            // Peukert k > 1 implies higher loads deliver *less* total energy.
            let pack = reference();
            let e_lo = pack.energy_delivered_at(Watts::new(lo));
            let e_hi = pack.energy_delivered_at(Watts::new(lo + extra));
            prop_assert!(e_hi <= e_lo + WattHours::new(1e-9));
        }

        #[test]
        fn scale_power_scales_nominal_energy(f in 0.1f64..10.0) {
            let pack = reference();
            let scaled = pack.scale_power(f);
            let expected = pack.nominal_energy().value() * f;
            prop_assert!((scaled.nominal_energy().value() - expected).abs() < 1e-6);
        }
    }
}
