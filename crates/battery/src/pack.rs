//! Battery pack specifications and the Peukert runtime law.

use crate::Chemistry;
use dcb_units::{contract, Seconds, WattHours, Watts};

/// The static specification of a battery pack: rated power, runtime at rated
/// power, and chemistry.
///
/// The paper parameterizes UPS batteries exactly this way — a peak power
/// capacity plus an energy capacity expressed as *runtime* (Table 2 reports
/// "UPS runtime" in minutes; Table 3's `LargeEUPS` is "30 min"). The
/// `rated_runtime` here is the runtime at 100 % load, so the pack's nominal
/// energy is `rated_power × rated_runtime`.
///
/// ```
/// use dcb_battery::{Chemistry, PackSpec};
/// use dcb_units::{Watts, Seconds};
///
/// let pack = PackSpec::new(Watts::new(4000.0), Seconds::from_minutes(10.0), Chemistry::LeadAcid);
/// // Nominal (100%-load) energy of the Figure 3 pack is 0.66 kWh.
/// assert!((pack.nominal_energy().value() - 666.7).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackSpec {
    rated_power: Watts,
    rated_runtime: Seconds,
    chemistry: Chemistry,
}

impl PackSpec {
    /// Creates a pack rated to deliver `rated_power` for `rated_runtime`.
    ///
    /// # Panics
    ///
    /// Panics if `rated_power` or `rated_runtime` is negative, or if
    /// `rated_runtime` is not finite.
    #[must_use]
    pub fn new(rated_power: Watts, rated_runtime: Seconds, chemistry: Chemistry) -> Self {
        assert!(rated_power.value() >= 0.0, "rated power must be >= 0");
        assert!(
            rated_runtime.value() >= 0.0 && rated_runtime.is_finite(),
            "rated runtime must be finite and >= 0"
        );
        Self {
            rated_power,
            rated_runtime,
            chemistry,
        }
    }

    /// The Figure 3 pack: 4 kW lead-acid, 10 minutes at rated load.
    #[must_use]
    pub fn figure3_reference() -> Self {
        Self::new(
            Watts::new(4000.0),
            Seconds::from_minutes(10.0),
            Chemistry::LeadAcid,
        )
    }

    /// Rated (peak) power.
    #[must_use]
    pub fn rated_power(self) -> Watts {
        self.rated_power
    }

    /// Runtime at rated power.
    #[must_use]
    pub fn rated_runtime(self) -> Seconds {
        self.rated_runtime
    }

    /// The chemistry.
    #[must_use]
    pub fn chemistry(self) -> Chemistry {
        self.chemistry
    }

    /// Nominal energy: what the pack delivers when drained at rated power.
    ///
    /// This is the "UPSEnergyCapacity" that enters the paper's cost model
    /// (Equation 2): power × runtime.
    #[must_use]
    pub fn nominal_energy(self) -> WattHours {
        self.rated_power * self.rated_runtime
    }

    /// Runtime at a constant `load`, per Peukert's law:
    ///
    /// `t(P) = rated_runtime × (rated_power / P)^k`.
    ///
    /// Reproduces Figure 3's anchors for the reference pack: 10 min at
    /// 4 kW, 60 min at 1 kW. Loads above rated power extrapolate along the
    /// same law (runtime *below* rated runtime); enforcing the power
    /// capacity limit is the UPS's job, not the cell model's.
    ///
    /// Returns an infinite runtime at zero load and zero runtime for a pack
    /// with zero rated power or runtime.
    #[must_use]
    pub fn runtime_at(self, load: Watts) -> Seconds {
        if self.rated_power.value() <= 0.0 || self.rated_runtime.value() <= 0.0 {
            return Seconds::ZERO;
        }
        if load.value() <= 0.0 {
            return Seconds::new(f64::INFINITY);
        }
        let ratio = self.rated_power.value() / load.value();
        let runtime = self.rated_runtime * ratio.powf(self.chemistry.peukert_exponent());
        contract!(
            runtime.value() >= 0.0,
            "Peukert runtime must be non-negative, got {runtime} at load {load}"
        );
        runtime
    }

    /// Energy actually delivered when drained at a constant `load`:
    /// `P × t(P)`. Monotonically decreasing in load for `k > 1` — the
    /// Figure 3 pack delivers 1 kWh at 25 % load but only 0.66 kWh at full
    /// load.
    #[must_use]
    pub fn energy_delivered_at(self, load: Watts) -> WattHours {
        if load.value() <= 0.0 {
            return WattHours::ZERO;
        }
        let energy = load * self.runtime_at(load);
        contract!(
            energy.value() >= 0.0,
            "delivered energy must be non-negative, got {energy} at load {load}"
        );
        energy
    }

    /// Scales the pack's rated power, keeping the rated runtime — models
    /// composing more strings of the same cells in parallel.
    #[must_use]
    pub fn scale_power(self, factor: f64) -> Self {
        Self::new(
            self.rated_power * factor,
            self.rated_runtime,
            self.chemistry,
        )
    }

    /// Returns a pack with additional energy modules so that its runtime at
    /// rated power becomes `runtime` (the paper's "Additional battery
    /// modules can be added to this base capacity").
    #[must_use]
    pub fn with_rated_runtime(self, runtime: Seconds) -> Self {
        Self::new(self.rated_power, runtime, self.chemistry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference() -> PackSpec {
        PackSpec::figure3_reference()
    }

    #[test]
    fn figure3_anchor_full_load() {
        let t = reference().runtime_at(Watts::new(4000.0));
        assert!((t.to_minutes() - 10.0).abs() < 1e-9);
        let e = reference().energy_delivered_at(Watts::new(4000.0));
        assert!(
            (e.value() - 666.666).abs() < 1.0,
            "expected ~0.66 kWh, got {e}"
        );
    }

    #[test]
    fn figure3_anchor_quarter_load() {
        let t = reference().runtime_at(Watts::new(1000.0));
        assert!((t.to_minutes() - 60.0).abs() < 1e-6);
        let e = reference().energy_delivered_at(Watts::new(1000.0));
        assert!((e.value() - 1000.0).abs() < 1e-6, "expected 1 kWh, got {e}");
    }

    #[test]
    fn zero_load_runs_forever() {
        assert!(reference().runtime_at(Watts::ZERO).value().is_infinite());
        assert_eq!(
            reference().energy_delivered_at(Watts::ZERO),
            WattHours::ZERO
        );
    }

    #[test]
    fn zero_capacity_pack_has_no_runtime() {
        let dead = PackSpec::new(Watts::ZERO, Seconds::ZERO, Chemistry::LeadAcid);
        assert_eq!(dead.runtime_at(Watts::new(100.0)), Seconds::ZERO);
    }

    #[test]
    fn lithium_flatter_than_lead_acid() {
        let la = reference();
        let li = PackSpec::new(la.rated_power(), la.rated_runtime(), Chemistry::LithiumIon);
        // At quarter load, lead-acid gains relatively more runtime.
        let quarter = Watts::new(1000.0);
        assert!(la.runtime_at(quarter) > li.runtime_at(quarter));
        // At rated load they agree by construction.
        assert_eq!(
            la.runtime_at(Watts::new(4000.0)),
            li.runtime_at(Watts::new(4000.0))
        );
    }

    #[test]
    fn overload_extrapolates_below_rated_runtime() {
        let t = reference().runtime_at(Watts::new(8000.0));
        assert!(t < reference().rated_runtime());
        assert!(t.value() > 0.0);
    }

    proptest! {
        #[test]
        fn runtime_monotone_decreasing_in_load(
            lo in 1.0f64..4000.0,
            extra in 0.1f64..4000.0,
        ) {
            let pack = reference();
            let t_lo = pack.runtime_at(Watts::new(lo));
            let t_hi = pack.runtime_at(Watts::new(lo + extra));
            prop_assert!(t_hi <= t_lo);
        }

        #[test]
        fn energy_delivered_monotone_decreasing_in_load(
            lo in 1.0f64..4000.0,
            extra in 0.1f64..4000.0,
        ) {
            // Peukert k > 1 implies higher loads deliver *less* total energy.
            let pack = reference();
            let e_lo = pack.energy_delivered_at(Watts::new(lo));
            let e_hi = pack.energy_delivered_at(Watts::new(lo + extra));
            prop_assert!(e_hi <= e_lo + WattHours::new(1e-9));
        }

        #[test]
        fn scale_power_scales_nominal_energy(f in 0.1f64..10.0) {
            let pack = reference();
            let scaled = pack.scale_power(f);
            let expected = pack.nominal_energy().value() * f;
            prop_assert!((scaled.nominal_energy().value() - expected).abs() < 1e-6);
        }
    }
}
