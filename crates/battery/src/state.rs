//! Stateful battery discharge under time-varying load.

use crate::PackSpec;
use dcb_units::{contract, Fraction, Seconds, WattHours, Watts};

/// A battery with a state of charge, dischargeable step by step.
///
/// Depletion is *rate dependent*: at load `P` the fraction of charge consumed
/// per second is `1 / t(P)` where `t(P)` is the Peukert runtime of the pack
/// at that load. Under a constant load this integrates to exactly the pack's
/// [`PackSpec::runtime_at`]; under a varying load it captures the paper's
/// key effect that dropping to a low-power state mid-outage stretches the
/// remaining charge disproportionately.
///
/// ```
/// use dcb_battery::{Battery, PackSpec};
/// use dcb_units::{Seconds, Watts};
///
/// let mut battery = Battery::full(PackSpec::figure3_reference());
/// // Run 5 of the 10 rated minutes at full load...
/// battery.draw(Watts::new(4000.0), Seconds::from_minutes(5.0));
/// // ...then the rest at quarter load: half the charge stretches to 30 min.
/// let left = battery.remaining_runtime_at(Watts::new(1000.0));
/// assert!((left.to_minutes() - 30.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Battery {
    spec: PackSpec,
    charge: Fraction,
    /// Cumulative discharge throughput, in equivalent full cycles.
    cycles: f64,
}

/// The result of drawing from a [`Battery`] for one interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DrawOutcome {
    /// How long the battery actually sustained the load within the requested
    /// interval. Equal to the interval unless the battery ran dry.
    pub sustained: Seconds,
    /// Whether the battery was exhausted during the interval.
    pub depleted: bool,
    /// Energy delivered to the load during the sustained portion.
    pub energy_delivered: WattHours,
}

impl Battery {
    /// Charge below this is floating-point residue of an exact-boundary
    /// draw, not usable energy: snap it to empty.
    const CHARGE_DUST: f64 = 1e-12;

    /// A fully charged battery of the given pack.
    #[must_use]
    pub fn full(spec: PackSpec) -> Self {
        Self {
            spec,
            charge: Fraction::ONE,
            cycles: 0.0,
        }
    }

    /// A battery at an arbitrary state of charge.
    #[must_use]
    pub fn at_charge(spec: PackSpec, charge: Fraction) -> Self {
        Self {
            spec,
            charge,
            cycles: 0.0,
        }
    }

    /// A copy of this battery at a different state of charge, wear
    /// preserved — a cheap what-if probe for the event kernel's
    /// latest-safe-fallback and depletion solvers.
    #[must_use]
    pub fn with_charge(mut self, charge: Fraction) -> Self {
        self.charge = charge;
        self
    }

    /// The pack specification.
    #[must_use]
    pub fn spec(&self) -> PackSpec {
        self.spec
    }

    /// Current state of charge.
    #[must_use]
    pub fn charge(&self) -> Fraction {
        self.charge
    }

    /// Whether any charge remains.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.charge.is_zero()
    }

    /// How long the remaining charge lasts at a constant `load`.
    #[must_use]
    pub fn remaining_runtime_at(&self, load: Watts) -> Seconds {
        self.spec.runtime_at(load) * self.charge.value()
    }

    /// Cumulative discharge throughput in *equivalent full cycles* — the
    /// standard wear currency. Lead-acid packs reach end of life around
    /// 400–600 full cycles; the paper (§2) argues backup duty is so rare
    /// that wear is a non-issue, and this counter lets analyses verify it:
    /// even an outage-heavy year costs only a handful of cycles.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        self.cycles
    }

    /// Fraction of end-of-life cycle budget consumed (lead-acid ≈ 500
    /// equivalent full cycles to the 80 % capacity knee).
    #[must_use]
    pub fn wear_fraction(&self) -> f64 {
        const CYCLES_TO_EOL: f64 = 500.0;
        (self.cycles / CYCLES_TO_EOL).min(1.0)
    }

    /// Draws `load` for up to `interval`, depleting charge at the
    /// rate-dependent Peukert rate.
    ///
    /// If the charge runs out mid-interval the outcome reports the time
    /// actually sustained and `depleted = true`; the battery is left empty.
    /// A zero or negative load sustains the full interval for free.
    #[must_use]
    pub fn draw(&mut self, load: Watts, interval: Seconds) -> DrawOutcome {
        let outcome = self.draw_inner(load, interval);
        // Model contracts: SoC bounds, time budget, energy conservation,
        // and monotone wear (see `dcb_units::contracts`).
        contract!(
            (0.0..=1.0).contains(&self.charge.value()),
            "state of charge left [0,1]: {}",
            self.charge.value()
        );
        contract!(
            outcome.sustained.value() >= 0.0
                && outcome.sustained.value() <= interval.value().max(0.0) + 1e-9,
            "sustained {} exceeds requested interval {interval}",
            outcome.sustained
        );
        let expected = (load.value().max(0.0) * outcome.sustained.value() / 3600.0).max(0.0);
        contract!(
            (outcome.energy_delivered.value() - expected).abs() <= expected.abs() * 1e-9 + 1e-9,
            "energy conservation violated: delivered {} but load x time = {expected} Wh",
            outcome.energy_delivered
        );
        contract!(
            self.cycles >= 0.0,
            "equivalent cycles went negative: {}",
            self.cycles
        );
        outcome
    }

    fn draw_inner(&mut self, load: Watts, interval: Seconds) -> DrawOutcome {
        if interval.value() <= 0.0 {
            return DrawOutcome {
                sustained: Seconds::ZERO,
                depleted: self.is_empty(),
                energy_delivered: WattHours::ZERO,
            };
        }
        if load.value() <= 0.0 {
            return DrawOutcome {
                sustained: interval,
                depleted: false,
                energy_delivered: WattHours::ZERO,
            };
        }
        let endurance = self.remaining_runtime_at(load);
        if endurance >= interval {
            let full_runtime = self.spec.runtime_at(load);
            let used = if full_runtime.value().is_finite() && full_runtime.value() > 0.0 {
                interval.value() / full_runtime.value()
            } else {
                0.0
            };
            self.charge = Fraction::new(self.charge.value() - used);
            self.cycles += used;
            DrawOutcome {
                sustained: interval,
                depleted: false,
                energy_delivered: load * interval,
            }
        } else {
            self.cycles += self.charge.value();
            self.charge = Fraction::ZERO;
            DrawOutcome {
                sustained: endurance,
                depleted: true,
                energy_delivered: load * endurance,
            }
        }
    }

    /// Draws a load ramping linearly from `start_load` to `end_load` over
    /// `interval`, depleting charge by the exact Peukert integral
    /// ([`PackSpec::charge_used_over_ramp`]).
    ///
    /// With `start_load == end_load` this is numerically identical to
    /// [`Self::draw`]; with a genuine ramp it advances the battery across a
    /// whole DG-ramp segment in one closed-form step — the primitive the
    /// event-driven simulation kernel is built on. On depletion the outcome
    /// reports the exact mid-ramp instant the charge ran out.
    #[must_use]
    pub fn draw_ramp(
        &mut self,
        start_load: Watts,
        end_load: Watts,
        interval: Seconds,
    ) -> DrawOutcome {
        let outcome = self.draw_ramp_inner(start_load, end_load, interval);
        contract!(
            (0.0..=1.0).contains(&self.charge.value()),
            "state of charge left [0,1]: {}",
            self.charge.value()
        );
        contract!(
            outcome.sustained.value() >= 0.0
                && outcome.sustained.value() <= interval.value().max(0.0) + 1e-9,
            "sustained {} exceeds requested interval {interval}",
            outcome.sustained
        );
        // Energy conservation along the sustained part of the ramp: the
        // delivered energy must equal the trapezoid under the load line.
        let s = if interval.value() > 0.0 {
            (end_load.value() - start_load.value()) / interval.value()
        } else {
            0.0
        };
        let p_end = (start_load.value() + s * outcome.sustained.value()).max(0.0);
        let expected =
            0.5 * (start_load.value().max(0.0) + p_end) * outcome.sustained.value() / 3600.0;
        contract!(
            (outcome.energy_delivered.value() - expected).abs() <= expected.abs() * 1e-6 + 1e-6,
            "ramp energy conservation violated: delivered {} but trapezoid = {expected} Wh",
            outcome.energy_delivered
        );
        contract!(
            self.cycles >= 0.0,
            "equivalent cycles went negative: {}",
            self.cycles
        );
        outcome
    }

    fn draw_ramp_inner(
        &mut self,
        start_load: Watts,
        end_load: Watts,
        interval: Seconds,
    ) -> DrawOutcome {
        if interval.value() <= 0.0 {
            return DrawOutcome {
                sustained: Seconds::ZERO,
                depleted: self.is_empty(),
                energy_delivered: WattHours::ZERO,
            };
        }
        let p0 = Watts::new(start_load.value().max(0.0));
        let p1 = Watts::new(end_load.value().max(0.0));
        if p0.value() <= 0.0 && p1.value() <= 0.0 {
            return DrawOutcome {
                sustained: interval,
                depleted: false,
                energy_delivered: WattHours::ZERO,
            };
        }
        let trapezoid = |end: Watts, over: Seconds| -> WattHours {
            Watts::new(0.5 * (p0.value() + end.value())) * over
        };
        match self
            .spec
            .depletion_time_over_ramp(self.charge, p0, p1, interval)
        {
            None => {
                let used = self.spec.charge_used_over_ramp(p0, p1, interval);
                // A draw that lands exactly on the depletion boundary
                // leaves floating-point dust, not charge: snap it to empty
                // so `is_empty` (and everything gated on it, like UPS
                // available power) agrees with the analytic depletion time.
                let left = self.charge.value() - used;
                self.charge = if left < Self::CHARGE_DUST {
                    dcb_telemetry::counter!("battery.dust_snaps").incr();
                    dcb_trace::instant(None, None, || dcb_trace::EventKind::DustSnap);
                    Fraction::ZERO
                } else {
                    Fraction::new(left)
                };
                self.cycles += used;
                DrawOutcome {
                    sustained: interval,
                    depleted: false,
                    energy_delivered: trapezoid(p1, interval),
                }
            }
            Some(tau) => {
                let slope = (p1.value() - p0.value()) / interval.value();
                let p_tau = Watts::new(p0.value() + slope * tau.value());
                self.cycles += self.charge.value();
                self.charge = Fraction::ZERO;
                DrawOutcome {
                    sustained: tau,
                    depleted: true,
                    energy_delivered: trapezoid(p_tau, tau),
                }
            }
        }
    }

    /// Restores the battery to full charge (utility back, recharge done).
    pub fn recharge(&mut self) {
        self.charge = Fraction::ONE;
    }

    /// Recharges for `duration` at the chemistry's safe charging rate.
    ///
    /// Charging is modeled as linear in time up to full; a lead-acid pack
    /// needs ~10 h from empty, so an outage arriving an hour after the last
    /// one finds only ~10 % of the spent charge restored.
    pub fn recharge_for(&mut self, duration: Seconds) {
        if duration.value() <= 0.0 {
            return;
        }
        let full = self.spec.chemistry().recharge_time();
        let gained = if full.value() <= 0.0 {
            1.0
        } else {
            duration.value() / full.value()
        };
        self.charge = Fraction::new(self.charge.value() + gained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn full_reference() -> Battery {
        Battery::full(PackSpec::figure3_reference())
    }

    #[test]
    fn constant_load_matches_pack_runtime() {
        let mut b = full_reference();
        let outcome = b.draw(Watts::new(4000.0), Seconds::from_hours(10.0));
        assert!(outcome.depleted);
        assert!((outcome.sustained.to_minutes() - 10.0).abs() < 1e-9);
        assert!(b.is_empty());
    }

    #[test]
    fn stepping_down_load_stretches_charge() {
        let mut b = full_reference();
        let first = b.draw(Watts::new(4000.0), Seconds::from_minutes(5.0));
        assert!(!first.depleted);
        assert!((b.charge().value() - 0.5).abs() < 1e-12);
        let second = b.draw(Watts::new(1000.0), Seconds::from_hours(10.0));
        assert!(second.depleted);
        assert!((second.sustained.to_minutes() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn zero_load_draws_nothing() {
        let mut b = full_reference();
        let outcome = b.draw(Watts::ZERO, Seconds::from_hours(100.0));
        assert!(!outcome.depleted);
        assert_eq!(b.charge(), Fraction::ONE);
        assert_eq!(outcome.energy_delivered, WattHours::ZERO);
    }

    #[test]
    fn recharge_restores_full() {
        let mut b = full_reference();
        let _ = b.draw(Watts::new(4000.0), Seconds::from_minutes(9.0));
        b.recharge();
        assert_eq!(b.charge(), Fraction::ONE);
    }

    #[test]
    fn partial_recharge_is_linear_in_time() {
        let mut b = full_reference();
        let _ = b.draw(Watts::new(4000.0), Seconds::from_minutes(20.0));
        assert!(b.is_empty());
        // Lead-acid: 10 h to full, so 1 h restores 10%.
        b.recharge_for(Seconds::from_hours(1.0));
        assert!((b.charge().value() - 0.1).abs() < 1e-9);
        b.recharge_for(Seconds::from_hours(20.0));
        assert_eq!(b.charge(), Fraction::ONE);
    }

    #[test]
    fn lithium_recharges_faster() {
        use crate::Chemistry;
        let spec = PackSpec::new(
            Watts::new(4000.0),
            Seconds::from_minutes(10.0),
            Chemistry::LithiumIon,
        );
        let mut li = Battery::at_charge(spec, Fraction::ZERO);
        li.recharge_for(Seconds::from_hours(1.0));
        assert!((li.charge().value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wear_counts_equivalent_cycles() {
        let mut b = full_reference();
        // Full drain = one equivalent cycle.
        let _ = b.draw(Watts::new(4000.0), Seconds::from_hours(1.0));
        assert!((b.equivalent_cycles() - 1.0).abs() < 1e-9);
        b.recharge();
        let _ = b.draw(Watts::new(4000.0), Seconds::from_minutes(5.0));
        assert!((b.equivalent_cycles() - 1.5).abs() < 1e-9);
        assert!((b.wear_fraction() - 1.5 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn a_year_of_outages_barely_wears_the_pack() {
        // §2: "issues such as battery wear due to rare outages are less
        // important". Even six full-depth outages a year stay under 2% of
        // the cycle budget.
        let mut b = full_reference();
        for _ in 0..6 {
            let _ = b.draw(Watts::new(4000.0), Seconds::from_hours(1.0));
            b.recharge();
        }
        assert!(b.wear_fraction() < 0.02, "wear {}", b.wear_fraction());
    }

    #[test]
    fn empty_battery_sustains_nothing() {
        let mut b = Battery::at_charge(PackSpec::figure3_reference(), Fraction::ZERO);
        let outcome = b.draw(Watts::new(100.0), Seconds::new(10.0));
        assert!(outcome.depleted);
        assert_eq!(outcome.sustained, Seconds::ZERO);
    }

    #[test]
    fn ramp_draw_depletes_mid_ramp() {
        // Half charge under a load ramping 0 -> 4 kW over 20 min dies
        // somewhere strictly inside the ramp.
        let mut b = Battery::at_charge(PackSpec::figure3_reference(), Fraction::new(0.25));
        let outcome = b.draw_ramp(Watts::ZERO, Watts::new(4000.0), Seconds::from_minutes(20.0));
        assert!(outcome.depleted);
        assert!(outcome.sustained.value() > 0.0);
        assert!(outcome.sustained < Seconds::from_minutes(20.0));
        assert!(b.is_empty());
    }

    #[test]
    fn with_charge_probe_leaves_original_untouched() {
        let b = full_reference();
        let probe = b.with_charge(Fraction::new(0.25));
        assert!((probe.charge().value() - 0.25).abs() < 1e-12);
        assert_eq!(b.charge(), Fraction::ONE);
        assert!((probe.equivalent_cycles() - b.equivalent_cycles()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn flat_ramp_draw_matches_constant_draw(
            load in 1.0f64..6000.0,
            minutes in 0.01f64..40.0,
            start in 0.01f64..=1.0,
        ) {
            let spec = PackSpec::figure3_reference();
            let load = Watts::new(load);
            let d = Seconds::from_minutes(minutes);
            let mut flat = Battery::at_charge(spec, Fraction::new(start));
            let mut ramp = Battery::at_charge(spec, Fraction::new(start));
            let a = flat.draw(load, d);
            let b = ramp.draw_ramp(load, load, d);
            prop_assert_eq!(a.depleted, b.depleted);
            prop_assert!((a.sustained.value() - b.sustained.value()).abs() < 1e-6);
            prop_assert!((flat.charge().value() - ramp.charge().value()).abs() < 1e-9);
            prop_assert!(
                (a.energy_delivered.value() - b.energy_delivered.value()).abs()
                    < 1e-6 * a.energy_delivered.value().max(1.0)
            );
        }

        #[test]
        fn split_ramp_draw_composes(
            p0 in 0.0f64..5000.0,
            p1 in 0.0f64..5000.0,
            minutes in 0.1f64..30.0,
            cut in 0.05f64..0.95,
        ) {
            // Drawing a ramp in two pieces leaves the same charge as one
            // piece, provided neither leg depletes.
            let spec = PackSpec::figure3_reference();
            let (p0, p1) = (Watts::new(p0), Watts::new(p1));
            let d = Seconds::from_minutes(minutes);
            let mut whole = Battery::full(spec);
            let w = whole.draw_ramp(p0, p1, d);
            prop_assume!(!w.depleted);
            let mut split = Battery::full(spec);
            let c = Seconds::new(cut * d.value());
            let pc = Watts::new(p0.value() + (p1.value() - p0.value()) * cut);
            let _ = split.draw_ramp(p0, pc, c);
            let _ = split.draw_ramp(pc, p1, Seconds::new(d.value() - c.value()));
            prop_assert!((whole.charge().value() - split.charge().value()).abs() < 1e-9);
        }

        #[test]
        fn draw_never_overcommits(
            load in 1.0f64..8000.0,
            minutes in 0.01f64..600.0,
            start in 0.0f64..=1.0,
        ) {
            let mut b = Battery::at_charge(PackSpec::figure3_reference(), Fraction::new(start));
            let before = b.remaining_runtime_at(Watts::new(load));
            let outcome = b.draw(Watts::new(load), Seconds::from_minutes(minutes));
            // Sustained time never exceeds either the request or the endurance.
            prop_assert!(outcome.sustained <= Seconds::from_minutes(minutes) + Seconds::new(1e-9));
            prop_assert!(outcome.sustained <= before + Seconds::new(1e-6));
            // Charge never goes negative.
            prop_assert!(b.charge().value() >= 0.0);
        }

        #[test]
        fn split_draw_equals_single_draw(
            load in 1.0f64..4000.0,
            half_minutes in 0.01f64..4.0,
        ) {
            // Drawing twice for t/2 leaves the same charge as once for t.
            let load = Watts::new(load);
            let half = Seconds::from_minutes(half_minutes);
            let mut split = full_reference();
            let _ = split.draw(load, half);
            let _ = split.draw(load, half);
            let mut single = full_reference();
            let _ = single.draw(load, half * 2.0);
            prop_assert!((split.charge().value() - single.charge().value()).abs() < 1e-9);
        }
    }
}
