//! Stateful battery discharge under time-varying load.

use crate::PackSpec;
use dcb_units::{contract, Fraction, Seconds, WattHours, Watts};

/// A battery with a state of charge, dischargeable step by step.
///
/// Depletion is *rate dependent*: at load `P` the fraction of charge consumed
/// per second is `1 / t(P)` where `t(P)` is the Peukert runtime of the pack
/// at that load. Under a constant load this integrates to exactly the pack's
/// [`PackSpec::runtime_at`]; under a varying load it captures the paper's
/// key effect that dropping to a low-power state mid-outage stretches the
/// remaining charge disproportionately.
///
/// ```
/// use dcb_battery::{Battery, PackSpec};
/// use dcb_units::{Seconds, Watts};
///
/// let mut battery = Battery::full(PackSpec::figure3_reference());
/// // Run 5 of the 10 rated minutes at full load...
/// battery.draw(Watts::new(4000.0), Seconds::from_minutes(5.0));
/// // ...then the rest at quarter load: half the charge stretches to 30 min.
/// let left = battery.remaining_runtime_at(Watts::new(1000.0));
/// assert!((left.to_minutes() - 30.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Battery {
    spec: PackSpec,
    charge: Fraction,
    /// Cumulative discharge throughput, in equivalent full cycles.
    cycles: f64,
}

/// The result of drawing from a [`Battery`] for one interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DrawOutcome {
    /// How long the battery actually sustained the load within the requested
    /// interval. Equal to the interval unless the battery ran dry.
    pub sustained: Seconds,
    /// Whether the battery was exhausted during the interval.
    pub depleted: bool,
    /// Energy delivered to the load during the sustained portion.
    pub energy_delivered: WattHours,
}

impl Battery {
    /// A fully charged battery of the given pack.
    #[must_use]
    pub fn full(spec: PackSpec) -> Self {
        Self {
            spec,
            charge: Fraction::ONE,
            cycles: 0.0,
        }
    }

    /// A battery at an arbitrary state of charge.
    #[must_use]
    pub fn at_charge(spec: PackSpec, charge: Fraction) -> Self {
        Self {
            spec,
            charge,
            cycles: 0.0,
        }
    }

    /// The pack specification.
    #[must_use]
    pub fn spec(&self) -> PackSpec {
        self.spec
    }

    /// Current state of charge.
    #[must_use]
    pub fn charge(&self) -> Fraction {
        self.charge
    }

    /// Whether any charge remains.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.charge.is_zero()
    }

    /// How long the remaining charge lasts at a constant `load`.
    #[must_use]
    pub fn remaining_runtime_at(&self, load: Watts) -> Seconds {
        self.spec.runtime_at(load) * self.charge.value()
    }

    /// Cumulative discharge throughput in *equivalent full cycles* — the
    /// standard wear currency. Lead-acid packs reach end of life around
    /// 400–600 full cycles; the paper (§2) argues backup duty is so rare
    /// that wear is a non-issue, and this counter lets analyses verify it:
    /// even an outage-heavy year costs only a handful of cycles.
    #[must_use]
    pub fn equivalent_cycles(&self) -> f64 {
        self.cycles
    }

    /// Fraction of end-of-life cycle budget consumed (lead-acid ≈ 500
    /// equivalent full cycles to the 80 % capacity knee).
    #[must_use]
    pub fn wear_fraction(&self) -> f64 {
        const CYCLES_TO_EOL: f64 = 500.0;
        (self.cycles / CYCLES_TO_EOL).min(1.0)
    }

    /// Draws `load` for up to `interval`, depleting charge at the
    /// rate-dependent Peukert rate.
    ///
    /// If the charge runs out mid-interval the outcome reports the time
    /// actually sustained and `depleted = true`; the battery is left empty.
    /// A zero or negative load sustains the full interval for free.
    #[must_use]
    pub fn draw(&mut self, load: Watts, interval: Seconds) -> DrawOutcome {
        let outcome = self.draw_inner(load, interval);
        // Model contracts: SoC bounds, time budget, energy conservation,
        // and monotone wear (see `dcb_units::contracts`).
        contract!(
            (0.0..=1.0).contains(&self.charge.value()),
            "state of charge left [0,1]: {}",
            self.charge.value()
        );
        contract!(
            outcome.sustained.value() >= 0.0
                && outcome.sustained.value() <= interval.value().max(0.0) + 1e-9,
            "sustained {} exceeds requested interval {interval}",
            outcome.sustained
        );
        let expected = (load.value().max(0.0) * outcome.sustained.value() / 3600.0).max(0.0);
        contract!(
            (outcome.energy_delivered.value() - expected).abs() <= expected.abs() * 1e-9 + 1e-9,
            "energy conservation violated: delivered {} but load x time = {expected} Wh",
            outcome.energy_delivered
        );
        contract!(
            self.cycles >= 0.0,
            "equivalent cycles went negative: {}",
            self.cycles
        );
        outcome
    }

    fn draw_inner(&mut self, load: Watts, interval: Seconds) -> DrawOutcome {
        if interval.value() <= 0.0 {
            return DrawOutcome {
                sustained: Seconds::ZERO,
                depleted: self.is_empty(),
                energy_delivered: WattHours::ZERO,
            };
        }
        if load.value() <= 0.0 {
            return DrawOutcome {
                sustained: interval,
                depleted: false,
                energy_delivered: WattHours::ZERO,
            };
        }
        let endurance = self.remaining_runtime_at(load);
        if endurance >= interval {
            let full_runtime = self.spec.runtime_at(load);
            let used = if full_runtime.value().is_finite() && full_runtime.value() > 0.0 {
                interval.value() / full_runtime.value()
            } else {
                0.0
            };
            self.charge = Fraction::new(self.charge.value() - used);
            self.cycles += used;
            DrawOutcome {
                sustained: interval,
                depleted: false,
                energy_delivered: load * interval,
            }
        } else {
            self.cycles += self.charge.value();
            self.charge = Fraction::ZERO;
            DrawOutcome {
                sustained: endurance,
                depleted: true,
                energy_delivered: load * endurance,
            }
        }
    }

    /// Restores the battery to full charge (utility back, recharge done).
    pub fn recharge(&mut self) {
        self.charge = Fraction::ONE;
    }

    /// Recharges for `duration` at the chemistry's safe charging rate.
    ///
    /// Charging is modeled as linear in time up to full; a lead-acid pack
    /// needs ~10 h from empty, so an outage arriving an hour after the last
    /// one finds only ~10 % of the spent charge restored.
    pub fn recharge_for(&mut self, duration: Seconds) {
        if duration.value() <= 0.0 {
            return;
        }
        let full = self.spec.chemistry().recharge_time();
        let gained = if full.value() <= 0.0 {
            1.0
        } else {
            duration.value() / full.value()
        };
        self.charge = Fraction::new(self.charge.value() + gained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn full_reference() -> Battery {
        Battery::full(PackSpec::figure3_reference())
    }

    #[test]
    fn constant_load_matches_pack_runtime() {
        let mut b = full_reference();
        let outcome = b.draw(Watts::new(4000.0), Seconds::from_hours(10.0));
        assert!(outcome.depleted);
        assert!((outcome.sustained.to_minutes() - 10.0).abs() < 1e-9);
        assert!(b.is_empty());
    }

    #[test]
    fn stepping_down_load_stretches_charge() {
        let mut b = full_reference();
        let first = b.draw(Watts::new(4000.0), Seconds::from_minutes(5.0));
        assert!(!first.depleted);
        assert!((b.charge().value() - 0.5).abs() < 1e-12);
        let second = b.draw(Watts::new(1000.0), Seconds::from_hours(10.0));
        assert!(second.depleted);
        assert!((second.sustained.to_minutes() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn zero_load_draws_nothing() {
        let mut b = full_reference();
        let outcome = b.draw(Watts::ZERO, Seconds::from_hours(100.0));
        assert!(!outcome.depleted);
        assert_eq!(b.charge(), Fraction::ONE);
        assert_eq!(outcome.energy_delivered, WattHours::ZERO);
    }

    #[test]
    fn recharge_restores_full() {
        let mut b = full_reference();
        let _ = b.draw(Watts::new(4000.0), Seconds::from_minutes(9.0));
        b.recharge();
        assert_eq!(b.charge(), Fraction::ONE);
    }

    #[test]
    fn partial_recharge_is_linear_in_time() {
        let mut b = full_reference();
        let _ = b.draw(Watts::new(4000.0), Seconds::from_minutes(20.0));
        assert!(b.is_empty());
        // Lead-acid: 10 h to full, so 1 h restores 10%.
        b.recharge_for(Seconds::from_hours(1.0));
        assert!((b.charge().value() - 0.1).abs() < 1e-9);
        b.recharge_for(Seconds::from_hours(20.0));
        assert_eq!(b.charge(), Fraction::ONE);
    }

    #[test]
    fn lithium_recharges_faster() {
        use crate::Chemistry;
        let spec = PackSpec::new(
            Watts::new(4000.0),
            Seconds::from_minutes(10.0),
            Chemistry::LithiumIon,
        );
        let mut li = Battery::at_charge(spec, Fraction::ZERO);
        li.recharge_for(Seconds::from_hours(1.0));
        assert!((li.charge().value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wear_counts_equivalent_cycles() {
        let mut b = full_reference();
        // Full drain = one equivalent cycle.
        let _ = b.draw(Watts::new(4000.0), Seconds::from_hours(1.0));
        assert!((b.equivalent_cycles() - 1.0).abs() < 1e-9);
        b.recharge();
        let _ = b.draw(Watts::new(4000.0), Seconds::from_minutes(5.0));
        assert!((b.equivalent_cycles() - 1.5).abs() < 1e-9);
        assert!((b.wear_fraction() - 1.5 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn a_year_of_outages_barely_wears_the_pack() {
        // §2: "issues such as battery wear due to rare outages are less
        // important". Even six full-depth outages a year stay under 2% of
        // the cycle budget.
        let mut b = full_reference();
        for _ in 0..6 {
            let _ = b.draw(Watts::new(4000.0), Seconds::from_hours(1.0));
            b.recharge();
        }
        assert!(b.wear_fraction() < 0.02, "wear {}", b.wear_fraction());
    }

    #[test]
    fn empty_battery_sustains_nothing() {
        let mut b = Battery::at_charge(PackSpec::figure3_reference(), Fraction::ZERO);
        let outcome = b.draw(Watts::new(100.0), Seconds::new(10.0));
        assert!(outcome.depleted);
        assert_eq!(outcome.sustained, Seconds::ZERO);
    }

    proptest! {
        #[test]
        fn draw_never_overcommits(
            load in 1.0f64..8000.0,
            minutes in 0.01f64..600.0,
            start in 0.0f64..=1.0,
        ) {
            let mut b = Battery::at_charge(PackSpec::figure3_reference(), Fraction::new(start));
            let before = b.remaining_runtime_at(Watts::new(load));
            let outcome = b.draw(Watts::new(load), Seconds::from_minutes(minutes));
            // Sustained time never exceeds either the request or the endurance.
            prop_assert!(outcome.sustained <= Seconds::from_minutes(minutes) + Seconds::new(1e-9));
            prop_assert!(outcome.sustained <= before + Seconds::new(1e-6));
            // Charge never goes negative.
            prop_assert!(b.charge().value() >= 0.0);
        }

        #[test]
        fn split_draw_equals_single_draw(
            load in 1.0f64..4000.0,
            half_minutes in 0.01f64..4.0,
        ) {
            // Drawing twice for t/2 leaves the same charge as once for t.
            let load = Watts::new(load);
            let half = Seconds::from_minutes(half_minutes);
            let mut split = full_reference();
            let _ = split.draw(load, half);
            let _ = split.draw(load, half);
            let mut single = full_reference();
            let _ = single.draw(load, half * 2.0);
            prop_assert!((split.charge().value() - single.charge().value()).abs() < 1e-9);
        }
    }
}
