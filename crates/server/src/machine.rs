//! A stateful server: the power-state machine with transition legality and
//! timing.
//!
//! [`crate::PowerState`] names the states; this module enforces which
//! transitions exist (you cannot go from `Active` to `Hibernated` without
//! passing through `SavingToDisk`, a crashed server must boot before
//! serving, …), drives the transitional states' timers, and integrates
//! energy. The outage simulator in `dcb-sim` keeps its own specialized
//! cluster-level mode machine for speed; this per-server machine is the
//! reusable, externally-consumable form of the same rules, and the two are
//! cross-checked in tests.

use crate::{PowerState, ServerSpec, ThrottleLevel, TransitionTimes};
use core::fmt;
use dcb_units::{Fraction, Gigabytes, Seconds, WattHours, Watts};

/// A command issued to a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ServerCommand {
    /// Change the DVFS/duty operating point (only while active).
    SetThrottle(ThrottleLevel),
    /// Begin suspend-to-RAM.
    Sleep,
    /// Begin suspend-to-disk of `state` gigabytes at the given throttle.
    Hibernate {
        /// Volume to persist.
        state: Gigabytes,
        /// Throttle while saving.
        level: ThrottleLevel,
    },
    /// Cut power without saving (deliberate shutdown or simulated failure).
    PowerOff,
    /// Begin waking/booting, whichever the current state requires.
    PowerOn,
}

/// Why a command was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IllegalTransition {
    /// What the server was doing.
    pub from: &'static str,
    /// What was asked of it.
    pub command: &'static str,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} while {}", self.command, self.from)
    }
}

impl std::error::Error for IllegalTransition {}

/// A single server with its power state, transition timers, and energy
/// accounting.
///
/// ```
/// use dcb_server::{Server, ServerCommand, ServerSpec, ThrottleLevel};
/// use dcb_units::{Fraction, Seconds};
///
/// let mut server = Server::new(ServerSpec::paper_testbed());
/// server.apply(ServerCommand::Sleep)?;
/// // Sleep entry takes ~6 s...
/// server.advance(Seconds::new(10.0), Fraction::ZERO);
/// assert!(matches!(server.state(), dcb_server::PowerState::Sleeping));
/// # Ok::<(), dcb_server::IllegalTransition>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Server {
    spec: ServerSpec,
    state: PowerState,
    /// Time left in the current transitional state.
    timer: Seconds,
    /// Pending resume volume for `ResumingFromDisk`.
    saved_state: Gigabytes,
    saved_throttled: bool,
    energy: WattHours,
}

impl Server {
    /// A server powered on and serving at full speed.
    #[must_use]
    pub fn new(spec: ServerSpec) -> Self {
        Self {
            spec,
            state: PowerState::active_full(),
            timer: Seconds::ZERO,
            saved_state: Gigabytes::ZERO,
            saved_throttled: false,
            energy: WattHours::ZERO,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The spec.
    #[must_use]
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Total energy consumed so far.
    #[must_use]
    pub fn energy_consumed(&self) -> WattHours {
        self.energy
    }

    /// Instantaneous power draw at the given utilization.
    #[must_use]
    pub fn power(&self, utilization: Fraction) -> Watts {
        self.spec.power_draw(&self.state, utilization)
    }

    fn transitions(&self) -> TransitionTimes {
        TransitionTimes::new(self.spec)
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            PowerState::Active(_) => "active",
            PowerState::EnteringSleep => "entering sleep",
            PowerState::Sleeping => "sleeping",
            PowerState::SavingToDisk(_) => "saving to disk",
            PowerState::Hibernated => "hibernated",
            PowerState::Off => "off",
            PowerState::ResumingFromSleep => "resuming from sleep",
            PowerState::ResumingFromDisk => "resuming from disk",
            PowerState::Booting => "booting",
        }
    }

    /// Applies a command, starting the corresponding transition.
    ///
    /// # Errors
    ///
    /// Returns [`IllegalTransition`] when the command does not exist from
    /// the current state (e.g. throttling a sleeping server).
    pub fn apply(&mut self, command: ServerCommand) -> Result<(), IllegalTransition> {
        let illegal = |s: &Self, c: &'static str| IllegalTransition {
            from: s.state_name(),
            command: c,
        };
        let result = match (self.state, command) {
            (PowerState::Active(_), ServerCommand::SetThrottle(level)) => {
                self.state = PowerState::Active(level);
                Ok(())
            }
            (PowerState::Active(level), ServerCommand::Sleep) => {
                self.state = PowerState::EnteringSleep;
                self.timer = self.transitions().sleep_enter(level.effective_speed());
                Ok(())
            }
            (PowerState::Active(_), ServerCommand::Hibernate { state, level }) => {
                self.state = PowerState::SavingToDisk(level);
                self.timer = self
                    .transitions()
                    .hibernate_save(state, level.effective_speed());
                self.saved_state = state;
                self.saved_throttled = level != ThrottleLevel::NONE;
                Ok(())
            }
            // Power can be cut from any state; volatile state survives only
            // if it was already on disk.
            (PowerState::Hibernated, ServerCommand::PowerOff) => Ok(()),
            (_, ServerCommand::PowerOff) => {
                self.state = PowerState::Off;
                self.timer = Seconds::ZERO;
                Ok(())
            }
            (PowerState::Sleeping, ServerCommand::PowerOn) => {
                self.state = PowerState::ResumingFromSleep;
                self.timer = self.transitions().sleep_resume();
                Ok(())
            }
            (PowerState::Hibernated, ServerCommand::PowerOn) => {
                self.state = PowerState::ResumingFromDisk;
                self.timer = self
                    .transitions()
                    .hibernate_resume(self.saved_state, self.saved_throttled);
                Ok(())
            }
            (PowerState::Off, ServerCommand::PowerOn) => {
                self.state = PowerState::Booting;
                self.timer = self.transitions().boot();
                Ok(())
            }
            (_, ServerCommand::SetThrottle(_)) => Err(illegal(self, "set throttle")),
            (_, ServerCommand::Sleep) => Err(illegal(self, "sleep")),
            (_, ServerCommand::Hibernate { .. }) => Err(illegal(self, "hibernate")),
            (_, ServerCommand::PowerOn) => Err(illegal(self, "power on")),
        };
        match result {
            Ok(()) => dcb_telemetry::counter!("server.machine.transitions").incr(),
            Err(_) => dcb_telemetry::counter!("server.machine.refusals").incr(),
        }
        result
    }

    /// Advances time, progressing transitional states and integrating
    /// energy. Returns the energy consumed during this interval.
    pub fn advance(&mut self, dt: Seconds, utilization: Fraction) -> WattHours {
        if dt.value() <= 0.0 {
            return WattHours::ZERO;
        }
        let consumed = self.power(utilization) * dt;
        self.energy += consumed;
        if self.timer.value() > 0.0 {
            self.timer -= dt;
            if self.timer.value() <= 0.0 {
                self.timer = Seconds::ZERO;
                self.state = match self.state {
                    PowerState::EnteringSleep => PowerState::Sleeping,
                    PowerState::SavingToDisk(_) => PowerState::Hibernated,
                    PowerState::ResumingFromSleep
                    | PowerState::ResumingFromDisk
                    | PowerState::Booting => PowerState::active_full(),
                    other => other,
                };
                dcb_telemetry::counter!("server.machine.settled").incr();
            }
        }
        consumed
    }

    /// Whether the server is mid-transition.
    #[must_use]
    pub fn in_transition(&self) -> bool {
        self.timer.value() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_units::MegabytesPerSecond;

    fn server() -> Server {
        Server::new(ServerSpec::paper_testbed())
    }

    fn run_until_stable(s: &mut Server, max: f64) {
        let mut t = 0.0f64;
        while s.in_transition() && t < max {
            let _ = s.advance(Seconds::new(1.0), Fraction::new(0.5));
            t += 1.0;
        }
    }

    #[test]
    fn sleep_wake_cycle() {
        let mut s = server();
        s.apply(ServerCommand::Sleep).unwrap();
        assert!(matches!(s.state(), PowerState::EnteringSleep));
        run_until_stable(&mut s, 60.0);
        assert!(matches!(s.state(), PowerState::Sleeping));
        assert!(s.power(Fraction::ONE).value() <= 6.0);
        s.apply(ServerCommand::PowerOn).unwrap();
        run_until_stable(&mut s, 60.0);
        assert!(s.state().is_serving());
    }

    #[test]
    fn hibernate_cycle_with_power_cut() {
        let mut s = server();
        s.apply(ServerCommand::Hibernate {
            state: Gigabytes::new(18.0),
            level: ThrottleLevel::NONE,
        })
        .unwrap();
        run_until_stable(&mut s, 400.0);
        assert!(matches!(s.state(), PowerState::Hibernated));
        // Cutting power of a hibernated server changes nothing.
        s.apply(ServerCommand::PowerOff).unwrap();
        assert!(matches!(s.state(), PowerState::Hibernated));
        s.apply(ServerCommand::PowerOn).unwrap();
        run_until_stable(&mut s, 400.0);
        assert!(s.state().is_serving());
    }

    #[test]
    fn illegal_transitions_are_refused() {
        let mut s = server();
        s.apply(ServerCommand::Sleep).unwrap();
        run_until_stable(&mut s, 60.0);
        let err = s
            .apply(ServerCommand::SetThrottle(ThrottleLevel::NONE))
            .unwrap_err();
        assert_eq!(err.from, "sleeping");
        assert!(err.to_string().contains("cannot set throttle"));
        assert!(s.apply(ServerCommand::Sleep).is_err());
        assert!(s
            .apply(ServerCommand::Hibernate {
                state: Gigabytes::new(1.0),
                level: ThrottleLevel::NONE,
            })
            .is_err());
    }

    #[test]
    fn crash_requires_boot() {
        let mut s = server();
        s.apply(ServerCommand::PowerOff).unwrap();
        assert!(!s.state().preserves_memory());
        assert_eq!(s.power(Fraction::ONE), Watts::ZERO);
        s.apply(ServerCommand::PowerOn).unwrap();
        assert!(matches!(s.state(), PowerState::Booting));
        run_until_stable(&mut s, 200.0);
        assert!(s.state().is_serving());
    }

    #[test]
    fn timings_match_transition_model() {
        // Cross-check against TransitionTimes (which the cluster simulator
        // uses directly): a hibernation of 18 GB takes 230 s.
        let mut s = server();
        s.apply(ServerCommand::Hibernate {
            state: Gigabytes::new(18.0),
            level: ThrottleLevel::NONE,
        })
        .unwrap();
        let mut t = 0.0f64;
        while s.in_transition() {
            let _ = s.advance(Seconds::new(1.0), Fraction::new(0.9));
            t += 1.0;
        }
        assert!((t - 230.0).abs() <= 1.0, "hibernate took {t} s");
    }

    #[test]
    fn energy_integrates_power() {
        let mut s = server();
        let consumed = s.advance(Seconds::from_hours(1.0), Fraction::ONE);
        // One hour at peak power = 250 Wh.
        assert!((consumed.value() - 250.0).abs() < 1e-9);
        assert_eq!(s.energy_consumed(), consumed);
    }

    #[test]
    fn throttle_changes_take_effect_immediately() {
        let mut s = server();
        let before = s.power(Fraction::ONE);
        s.apply(ServerCommand::SetThrottle(ThrottleLevel {
            p: crate::PState::slowest(),
            t: crate::TState::full(),
        }))
        .unwrap();
        assert!(s.power(Fraction::ONE) < before);
    }

    #[test]
    fn custom_disk_speeds_flow_through() {
        let spec = ServerSpec::paper_testbed().with_disk(
            MegabytesPerSecond::new(160.0),
            MegabytesPerSecond::new(240.0),
        );
        let mut s = Server::new(spec);
        s.apply(ServerCommand::Hibernate {
            state: Gigabytes::new(18.0),
            level: ThrottleLevel::NONE,
        })
        .unwrap();
        let mut t = 0.0f64;
        while s.in_transition() {
            let _ = s.advance(Seconds::new(1.0), Fraction::new(0.9));
            t += 1.0;
        }
        // Twice the disk speed roughly halves the save.
        assert!(t < 130.0, "save took {t} s");
    }
}
