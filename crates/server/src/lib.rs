//! Server power-state and power-draw models.
//!
//! Stands in for the paper's physical testbed (§6): identical dual-socket
//! servers with 12 cores at 3.4 GHz, 64 GB DRAM, 1 Gbps Ethernet, measured
//! at **80 W idle and 250 W peak** with an external Yokogawa power meter,
//! and modulated through **7 voltage/frequency P-states and 8 clock
//! throttling T-states**. Since no hardware power control is available in
//! this reproduction, the crate provides a calibrated analytical model of:
//!
//! * active power as a function of utilization and DVFS/duty throttling,
//! * the low-power states the outage-handling techniques use — S3 sleep
//!   (DRAM in self-refresh, ~5 W/server), suspend-to-disk hibernation, and
//!   full shutdown,
//! * the transition latencies between those states (sleep enter/resume,
//!   hibernate save/resume as a function of state size and disk bandwidth,
//!   reboot), calibrated against the paper's Table 8 measurements.
//!
//! # Examples
//!
//! ```
//! use dcb_server::{PowerState, ServerSpec, ThrottleLevel};
//! use dcb_units::Fraction;
//!
//! let spec = ServerSpec::paper_testbed();
//! let full = spec.power_draw(&PowerState::active(ThrottleLevel::NONE), Fraction::ONE);
//! assert_eq!(full.value(), 250.0);
//! let asleep = spec.power_draw(&PowerState::Sleeping, Fraction::ZERO);
//! assert!(asleep.value() <= 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod spec;
mod states;
mod transitions;

pub use machine::{IllegalTransition, Server, ServerCommand};
pub use spec::ServerSpec;
pub use states::{PState, PowerState, TState, ThrottleLevel};
pub use transitions::TransitionTimes;
