//! Power-state transition latencies, calibrated to the paper's Table 8.

use crate::ServerSpec;
use dcb_units::{Fraction, Gigabytes, Seconds};

/// Latency model for moving between [`crate::PowerState`]s.
///
/// Calibration targets (Specjbb, 18 GB of state, Table 8):
///
/// | transition              | paper | model |
/// |-------------------------|-------|-------|
/// | sleep save              | 6 s   | 6 s   |
/// | sleep resume            | 8 s   | 8 s   |
/// | hibernate save          | 230 s | 230 s |
/// | hibernate resume        | 157 s | 157 s |
/// | sleep-L save (½ power)  | 8 s   | 8 s   |
/// | hibernate-L save        | 385 s | ~385 s|
/// | hibernate-L resume      | 175 s | ~174 s|
///
/// ```
/// use dcb_server::{ServerSpec, TransitionTimes};
/// use dcb_units::{Fraction, Gigabytes};
///
/// let t = TransitionTimes::new(ServerSpec::paper_testbed());
/// let save = t.hibernate_save(Gigabytes::new(18.0), Fraction::ONE);
/// assert!((save.value() - 230.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransitionTimes {
    spec: ServerSpec,
}

impl TransitionTimes {
    /// Fixed overhead of entering S3 at full speed (context flush, device
    /// quiesce). Independent of application state size — "Sleep based
    /// techniques remain unaffected with application state size" (§6.2).
    pub const SLEEP_ENTER_BASE: Seconds = Seconds::literal(6.0);
    /// Resume-from-S3 latency (caches reload).
    pub const SLEEP_RESUME: Seconds = Seconds::literal(8.0);
    /// Fixed overhead on top of the image write when hibernating.
    pub const HIBERNATE_OVERHEAD: Seconds = Seconds::literal(5.0);
    /// Fixed overhead on top of the image read when resuming.
    pub const RESUME_OVERHEAD: Seconds = Seconds::literal(7.0);
    /// DVFS/T-state switch latency: "within tens of µsecs" (§5).
    pub const THROTTLE_SWITCH: Seconds = Seconds::literal(50e-6);

    /// Creates the latency model for a server.
    #[must_use]
    pub fn new(spec: ServerSpec) -> Self {
        Self { spec }
    }

    /// The underlying server spec.
    #[must_use]
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Effective I/O bandwidth factor when the CPU runs at `speed`.
    ///
    /// Saving state is not purely disk-bound — page-table walks, compression
    /// and device management consume cycles — so deep throttling slows the
    /// save. Linear mix calibrated on Table 8's Hibernate-L row
    /// (full-speed 230 s → half-power 385 s).
    #[must_use]
    fn io_factor(speed: Fraction) -> f64 {
        0.32 + 0.68 * speed.value()
    }

    /// Time to enter S3 while running at `speed`.
    #[must_use]
    pub fn sleep_enter(&self, speed: Fraction) -> Seconds {
        Self::SLEEP_ENTER_BASE / (0.25 + 0.75 * speed.value())
    }

    /// Time to wake from S3.
    #[must_use]
    pub fn sleep_resume(&self) -> Seconds {
        Self::SLEEP_RESUME
    }

    /// Time to write `state` to the local disk at CPU `speed`.
    #[must_use]
    pub fn hibernate_save(&self, state: Gigabytes, speed: Fraction) -> Seconds {
        state.transfer_time(self.spec.disk_write() * Self::io_factor(speed))
            + Self::HIBERNATE_OVERHEAD
    }

    /// Time to read a hibernation image of `state` back from disk.
    /// `saved_throttled` images read back slightly slower (less sequential
    /// layout when written under throttling).
    #[must_use]
    pub fn hibernate_resume(&self, state: Gigabytes, saved_throttled: bool) -> Seconds {
        let factor = if saved_throttled { 0.9 } else { 1.0 };
        state.transfer_time(self.spec.disk_read() * factor) + Self::RESUME_OVERHEAD
    }

    /// Full platform boot after power loss or shutdown.
    #[must_use]
    pub fn boot(&self) -> Seconds {
        self.spec.boot_time()
    }

    /// Aggregate DRAM-restore bandwidth of NVDIMMs (NAND flash → DRAM on
    /// power-up), across the server's DIMM channels.
    pub const NVDIMM_RESTORE_BANDWIDTH_MBPS: f64 = 1500.0;
    /// Fixed overhead of the NVDIMM whole-system resume (controller
    /// hand-off, device re-initialization).
    pub const NVDIMM_RESUME_OVERHEAD: Seconds = Seconds::literal(10.0);

    /// Time to restore `state` from NVDIMM flash and resume execution after
    /// power returns (§7's NVDIMM enhancement; the save direction is
    /// supercapacitor-powered inside the DIMM and needs no backup power at
    /// all).
    #[must_use]
    pub fn nvdimm_restore(&self, state: Gigabytes) -> Seconds {
        state.transfer_time(dcb_units::MegabytesPerSecond::new(
            Self::NVDIMM_RESTORE_BANDWIDTH_MBPS,
        )) + Self::NVDIMM_RESUME_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> TransitionTimes {
        TransitionTimes::new(ServerSpec::paper_testbed())
    }

    const SPECJBB_STATE: f64 = 18.0;

    #[test]
    fn table8_sleep_row() {
        assert_eq!(model().sleep_enter(Fraction::ONE), Seconds::new(6.0));
        assert_eq!(model().sleep_resume(), Seconds::new(8.0));
    }

    #[test]
    fn table8_sleep_l_row() {
        // Sleep-L at half power: the deepest P-state runs at 0.4 speed.
        let t = model().sleep_enter(Fraction::new(0.4));
        assert!((t.value() - 8.0).abs() < 3.0, "sleep-L enter {t}");
    }

    #[test]
    fn table8_hibernate_row() {
        let save = model().hibernate_save(Gigabytes::new(SPECJBB_STATE), Fraction::ONE);
        assert!((save.value() - 230.0).abs() < 1.0, "save {save}");
        let resume = model().hibernate_resume(Gigabytes::new(SPECJBB_STATE), false);
        assert!((resume.value() - 157.0).abs() < 1.0, "resume {resume}");
    }

    #[test]
    fn table8_hibernate_l_row() {
        let save = model().hibernate_save(Gigabytes::new(SPECJBB_STATE), Fraction::new(0.4));
        assert!((save.value() - 385.0).abs() < 10.0, "save-L {save}");
        let resume = model().hibernate_resume(Gigabytes::new(SPECJBB_STATE), true);
        assert!((resume.value() - 175.0).abs() < 5.0, "resume-L {resume}");
    }

    #[test]
    fn boot_is_two_minutes() {
        assert_eq!(model().boot(), Seconds::new(120.0));
    }

    proptest! {
        #[test]
        fn save_monotone_in_state(gb in 0.0f64..128.0, extra in 0.0f64..64.0, s in 0.1f64..=1.0) {
            let m = model();
            let speed = Fraction::new(s);
            prop_assert!(
                m.hibernate_save(Gigabytes::new(gb + extra), speed)
                    >= m.hibernate_save(Gigabytes::new(gb), speed)
            );
        }

        #[test]
        fn deeper_throttle_never_saves_faster(gb in 0.0f64..128.0, s in 0.1f64..1.0) {
            let m = model();
            prop_assert!(
                m.hibernate_save(Gigabytes::new(gb), Fraction::new(s))
                    >= m.hibernate_save(Gigabytes::new(gb), Fraction::ONE)
            );
        }
    }
}
