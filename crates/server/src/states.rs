//! Processor throttling states and the server power-state machine.

use core::fmt;
use dcb_units::Fraction;

/// A voltage/frequency P-state (index 0 is full speed).
///
/// The paper's testbed exposes 7 P-states; we model their frequency as a
/// linear ladder from 100 % down to 40 % of nominal, the usual span of
/// server DVFS ranges.
///
/// ```
/// use dcb_server::PState;
/// assert_eq!(PState::full().frequency().value(), 1.0);
/// assert_eq!(PState::slowest().frequency().value(), 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PState(u8);

impl PState {
    /// Number of P-states on the paper's testbed.
    pub const COUNT: u8 = 7;
    /// Frequency fraction of the deepest P-state.
    pub const MIN_FREQUENCY: f64 = 0.4;
    /// Exponent relating frequency to dynamic power under DVFS (frequency
    /// and voltage scale together, so dynamic power falls superlinearly).
    pub const POWER_EXPONENT: f64 = 2.2;

    /// The P-state at `index` (0 = fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= PState::COUNT`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < Self::COUNT, "P-state index out of range");
        Self(index)
    }

    /// Full-speed P0.
    #[must_use]
    pub fn full() -> Self {
        Self(0)
    }

    /// The deepest (slowest) P-state.
    #[must_use]
    pub fn slowest() -> Self {
        Self(Self::COUNT - 1)
    }

    /// All P-states, fastest first.
    pub fn all() -> impl Iterator<Item = Self> {
        (0..Self::COUNT).map(Self)
    }

    /// The state's index (0 = fastest).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Core frequency as a fraction of nominal.
    #[must_use]
    pub fn frequency(self) -> Fraction {
        let step = (1.0 - Self::MIN_FREQUENCY) / f64::from(Self::COUNT - 1);
        Fraction::new(1.0 - step * f64::from(self.0))
    }

    /// Dynamic-power multiplier of this state relative to P0.
    #[must_use]
    pub fn dynamic_power_factor(self) -> f64 {
        self.frequency().value().powf(Self::POWER_EXPONENT)
    }
}

/// A clock-throttling T-state (index 0 is no throttling).
///
/// T-states gate the clock for a duty-cycle fraction; both performance and
/// dynamic power scale linearly with the duty cycle.
///
/// ```
/// use dcb_server::TState;
/// assert_eq!(TState::new(0).duty_cycle().value(), 1.0);
/// assert_eq!(TState::new(7).duty_cycle().value(), 0.125);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TState(u8);

impl TState {
    /// Number of T-states on the paper's testbed.
    pub const COUNT: u8 = 8;

    /// The T-state at `index` (0 = no gating).
    ///
    /// # Panics
    ///
    /// Panics if `index >= TState::COUNT`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < Self::COUNT, "T-state index out of range");
        Self(index)
    }

    /// No clock gating.
    #[must_use]
    pub fn full() -> Self {
        Self(0)
    }

    /// All T-states, full duty first.
    pub fn all() -> impl Iterator<Item = Self> {
        (0..Self::COUNT).map(Self)
    }

    /// The state's index.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Fraction of cycles the clock runs.
    #[must_use]
    pub fn duty_cycle(self) -> Fraction {
        Fraction::new(1.0 - f64::from(self.0) / f64::from(Self::COUNT))
    }
}

/// A combined DVFS + duty-cycle operating point.
///
/// The outage-handling techniques think in terms of a *throttle level*; the
/// discrete P/T states quantize it. `effective_speed` is the CPU speed seen
/// by the workload, `dynamic_power_factor` the corresponding scaling of
/// dynamic power.
///
/// ```
/// use dcb_server::ThrottleLevel;
/// // Find the deepest level that still delivers >= 50% CPU speed.
/// let level = ThrottleLevel::cheapest_with_speed(0.5);
/// assert!(level.effective_speed().value() >= 0.5);
/// assert!(level.dynamic_power_factor() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ThrottleLevel {
    /// DVFS state.
    pub p: PState,
    /// Clock-gating state.
    pub t: TState,
}

impl ThrottleLevel {
    /// No throttling: P0, T0.
    pub const NONE: Self = Self {
        p: PState(0),
        t: TState(0),
    };

    /// The deepest throttle: slowest P-state, deepest T-state.
    #[must_use]
    pub fn deepest() -> Self {
        Self {
            p: PState::slowest(),
            t: TState::new(TState::COUNT - 1),
        }
    }

    /// All `(P, T)` combinations.
    pub fn all() -> impl Iterator<Item = Self> {
        PState::all().flat_map(|p| TState::all().map(move |t| Self { p, t }))
    }

    /// CPU speed delivered to the workload, as a fraction of nominal.
    #[must_use]
    pub fn effective_speed(self) -> Fraction {
        Fraction::new(self.p.frequency().value() * self.t.duty_cycle().value())
    }

    /// Dynamic-power multiplier relative to unthrottled operation.
    #[must_use]
    pub fn dynamic_power_factor(self) -> f64 {
        self.p.dynamic_power_factor() * self.t.duty_cycle().value()
    }

    /// The most power-frugal level whose effective speed is at least
    /// `min_speed` (clamped to `[0, 1]`). Falls back to [`Self::NONE`] when
    /// `min_speed` is 1 or higher.
    #[must_use]
    pub fn cheapest_with_speed(min_speed: f64) -> Self {
        let min_speed = min_speed.clamp(0.0, 1.0);
        Self::all()
            .filter(|l| l.effective_speed().value() + 1e-12 >= min_speed)
            .min_by(|a, b| {
                a.dynamic_power_factor()
                    .total_cmp(&b.dynamic_power_factor())
            })
            .unwrap_or(Self::NONE)
    }
}

impl Default for ThrottleLevel {
    fn default() -> Self {
        Self::NONE
    }
}

impl fmt::Display for ThrottleLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}/T{}", self.p.index(), self.t.index())
    }
}

/// The server's operational power state.
///
/// The states correspond to the mechanisms of §5: active execution
/// (optionally throttled), S3 suspend-to-RAM ("Sleep"), suspend-to-disk
/// ("Hibernation"), and a full power-off; plus the transitional states the
/// simulator needs (saving, resuming, booting).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PowerState {
    /// Executing the workload at some throttle level.
    Active(ThrottleLevel),
    /// Suspending to RAM (brief; CPU flushing context).
    EnteringSleep,
    /// S3: DRAM in self-refresh, everything else off (~5 W).
    Sleeping,
    /// Writing memory state to local disk, optionally throttled.
    SavingToDisk(ThrottleLevel),
    /// Suspend-to-disk complete; drawing no power.
    Hibernated,
    /// Off without saving anything (crash or deliberate shutdown).
    Off,
    /// Waking from S3 (fast: caches reload).
    ResumingFromSleep,
    /// Reading the hibernation image back from disk.
    ResumingFromDisk,
    /// Full platform boot after a shutdown or crash.
    Booting,
}

impl PowerState {
    /// Active and unthrottled.
    #[must_use]
    pub fn active_full() -> Self {
        Self::Active(ThrottleLevel::NONE)
    }

    /// Active at the given throttle.
    #[must_use]
    pub fn active(level: ThrottleLevel) -> Self {
        Self::Active(level)
    }

    /// Whether the workload makes forward progress in this state.
    #[must_use]
    pub fn is_serving(&self) -> bool {
        matches!(self, Self::Active(_))
    }

    /// Whether volatile (DRAM) state survives this state.
    ///
    /// Active, sleeping, and the save/resume transitions keep DRAM powered;
    /// hibernated state survives on disk; `Off` and `Booting` imply the
    /// volatile state is gone unless it was previously persisted.
    #[must_use]
    pub fn preserves_memory(&self) -> bool {
        !matches!(self, Self::Off | Self::Booting)
    }
}

impl fmt::Display for PowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Active(l) if *l == ThrottleLevel::NONE => f.write_str("active"),
            Self::Active(l) => write!(f, "active@{l}"),
            Self::EnteringSleep => f.write_str("entering-sleep"),
            Self::Sleeping => f.write_str("sleeping"),
            Self::SavingToDisk(l) if *l == ThrottleLevel::NONE => f.write_str("saving-to-disk"),
            Self::SavingToDisk(l) => write!(f, "saving-to-disk@{l}"),
            Self::Hibernated => f.write_str("hibernated"),
            Self::Off => f.write_str("off"),
            Self::ResumingFromSleep => f.write_str("resuming-from-sleep"),
            Self::ResumingFromDisk => f.write_str("resuming-from-disk"),
            Self::Booting => f.write_str("booting"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pstate_ladder_endpoints() {
        assert_eq!(PState::full().frequency().value(), 1.0);
        assert!((PState::slowest().frequency().value() - 0.4).abs() < 1e-12);
        assert_eq!(PState::all().count(), 7);
    }

    #[test]
    fn tstate_ladder_endpoints() {
        assert_eq!(TState::full().duty_cycle().value(), 1.0);
        assert!((TState::new(7).duty_cycle().value() - 0.125).abs() < 1e-12);
        assert_eq!(TState::all().count(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pstate_bounds_checked() {
        let _ = PState::new(7);
    }

    #[test]
    fn dvfs_power_falls_faster_than_speed() {
        for p in PState::all().skip(1) {
            assert!(p.dynamic_power_factor() < p.frequency().value());
        }
    }

    #[test]
    fn throttle_level_count() {
        assert_eq!(ThrottleLevel::all().count(), 56);
    }

    #[test]
    fn cheapest_with_full_speed_is_unthrottled() {
        assert_eq!(ThrottleLevel::cheapest_with_speed(1.0), ThrottleLevel::NONE);
    }

    #[test]
    fn serving_and_memory_flags() {
        assert!(PowerState::active_full().is_serving());
        assert!(!PowerState::Sleeping.is_serving());
        assert!(PowerState::Sleeping.preserves_memory());
        assert!(!PowerState::Off.preserves_memory());
        assert!(PowerState::Hibernated.preserves_memory());
    }

    proptest! {
        #[test]
        fn cheapest_with_speed_honors_floor(s in 0.0f64..=1.0) {
            let level = ThrottleLevel::cheapest_with_speed(s);
            prop_assert!(level.effective_speed().value() + 1e-9 >= s);
        }

        #[test]
        fn effective_speed_bounds(p in 0u8..7, t in 0u8..8) {
            let level = ThrottleLevel { p: PState::new(p), t: TState::new(t) };
            let speed = level.effective_speed().value();
            prop_assert!(speed > 0.0 && speed <= 1.0);
            prop_assert!(level.dynamic_power_factor() <= 1.0);
        }
    }
}
