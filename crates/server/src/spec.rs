//! Server hardware specification and the calibrated power model.

use crate::states::{PowerState, ThrottleLevel};
use dcb_units::{Fraction, Gigabytes, MegabytesPerSecond, Seconds, Watts};

/// Static description of a server: its power envelope, memory, and I/O
/// bandwidths.
///
/// [`ServerSpec::paper_testbed`] reproduces the machine of §6: 12 cores,
/// 64 GB DRAM, 1 Gbps NIC, 80 W idle, 250 W peak.
///
/// ```
/// use dcb_server::ServerSpec;
/// let s = ServerSpec::paper_testbed();
/// assert_eq!(s.idle_power().value(), 80.0);
/// assert_eq!(s.peak_power().value(), 250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerSpec {
    idle_power: Watts,
    peak_power: Watts,
    sleep_power: Watts,
    memory: Gigabytes,
    disk_write: MegabytesPerSecond,
    disk_read: MegabytesPerSecond,
    nic: MegabytesPerSecond,
    boot_time: Seconds,
}

impl ServerSpec {
    /// The paper's measured sleep draw: "around 5W per server" in S3 with
    /// DRAM in self-refresh (§6.2).
    pub const SLEEP_POWER: Watts = Watts::literal(5.0);

    /// Inherent power-supply capacitance ride-through after a failure
    /// (~30 ms, §3) — long enough to cover the ~10 ms offline-UPS switch.
    pub const PSU_RIDE_THROUGH: Seconds = Seconds::literal(0.030);

    /// The §6 testbed server.
    #[must_use]
    pub fn paper_testbed() -> Self {
        Self {
            idle_power: Watts::new(80.0),
            peak_power: Watts::new(250.0),
            sleep_power: Self::SLEEP_POWER,
            memory: Gigabytes::new(64.0),
            // Calibrated so Specjbb's 18 GB hibernation takes the paper's
            // measured 230 s to save and 157 s to resume (Table 8).
            disk_write: MegabytesPerSecond::new(80.0),
            disk_read: MegabytesPerSecond::new(120.0),
            nic: MegabytesPerSecond::from_gigabits_per_second(1.0),
            // "server restart time ~2 mins" (§6.2, Web-search recovery).
            boot_time: Seconds::new(120.0),
        }
    }

    /// Builder-style override of the idle/peak power envelope.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= idle <= peak`.
    #[must_use]
    pub fn with_power_envelope(mut self, idle: Watts, peak: Watts) -> Self {
        assert!(
            idle.value() >= 0.0 && peak >= idle,
            "need 0 <= idle <= peak"
        );
        self.idle_power = idle;
        self.peak_power = peak;
        self
    }

    /// Builder-style override of the installed memory.
    #[must_use]
    pub fn with_memory(mut self, memory: Gigabytes) -> Self {
        self.memory = memory;
        self
    }

    /// Builder-style override of disk bandwidths.
    #[must_use]
    pub fn with_disk(mut self, write: MegabytesPerSecond, read: MegabytesPerSecond) -> Self {
        self.disk_write = write;
        self.disk_read = read;
        self
    }

    /// Idle (active but unutilized) power.
    #[must_use]
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// Peak power at full utilization, unthrottled.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.peak_power
    }

    /// Power in S3 sleep.
    #[must_use]
    pub fn sleep_power(&self) -> Watts {
        self.sleep_power
    }

    /// Installed DRAM.
    #[must_use]
    pub fn memory(&self) -> Gigabytes {
        self.memory
    }

    /// Sequential disk write bandwidth (hibernation save path).
    #[must_use]
    pub fn disk_write(&self) -> MegabytesPerSecond {
        self.disk_write
    }

    /// Sequential disk read bandwidth (hibernation resume path).
    #[must_use]
    pub fn disk_read(&self) -> MegabytesPerSecond {
        self.disk_read
    }

    /// Network bandwidth (migration path).
    #[must_use]
    pub fn nic(&self) -> MegabytesPerSecond {
        self.nic
    }

    /// Platform boot time after power-off.
    #[must_use]
    pub fn boot_time(&self) -> Seconds {
        self.boot_time
    }

    /// Power drawn while active at `throttle` with CPU `utilization`:
    ///
    /// `idle + (peak − idle) × utilization × dynamic_power_factor(throttle)`.
    #[must_use]
    pub fn active_power(&self, throttle: ThrottleLevel, utilization: Fraction) -> Watts {
        let dynamic = self.peak_power - self.idle_power;
        self.idle_power + dynamic * (utilization.value() * throttle.dynamic_power_factor())
    }

    /// Power drawn in an arbitrary [`PowerState`].
    ///
    /// Transitional states draw what their activity implies: saving to disk
    /// is an active (possibly throttled) state doing I/O; resume and boot
    /// draw near-peak briefly.
    #[must_use]
    pub fn power_draw(&self, state: &PowerState, utilization: Fraction) -> Watts {
        match state {
            PowerState::Active(level) => self.active_power(*level, utilization),
            // Flushing context and setting DRAM to self-refresh: I/O-light,
            // CPU mostly idle.
            PowerState::EnteringSleep => self.idle_power,
            PowerState::Sleeping => self.sleep_power,
            // Streaming memory out to disk at the chosen throttle; treat the
            // I/O engine as a moderately utilized active state.
            PowerState::SavingToDisk(level) => self.active_power(*level, Fraction::new(0.6)),
            PowerState::Hibernated | PowerState::Off => Watts::ZERO,
            PowerState::ResumingFromSleep => self.idle_power,
            PowerState::ResumingFromDisk => {
                self.active_power(ThrottleLevel::NONE, Fraction::new(0.6))
            }
            PowerState::Booting => self.active_power(ThrottleLevel::NONE, Fraction::new(0.7)),
        }
    }

    /// The lowest sustained active power reachable through throttling alone
    /// (full utilization at the deepest DVFS state, no clock gating —
    /// gating also destroys performance, so "low power mode" in the paper's
    /// '-L' techniques means the deepest P-state).
    #[must_use]
    pub fn min_throttled_power(&self) -> Watts {
        self.active_power(
            ThrottleLevel {
                p: crate::PState::slowest(),
                t: crate::TState::full(),
            },
            Fraction::ONE,
        )
    }
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PState, TState};
    use proptest::prelude::*;

    #[test]
    fn envelope_endpoints() {
        let s = ServerSpec::paper_testbed();
        assert_eq!(
            s.active_power(ThrottleLevel::NONE, Fraction::ONE),
            s.peak_power()
        );
        assert_eq!(
            s.active_power(ThrottleLevel::NONE, Fraction::ZERO),
            s.idle_power()
        );
    }

    #[test]
    fn sleep_is_tiny() {
        let s = ServerSpec::paper_testbed();
        assert!(s.power_draw(&PowerState::Sleeping, Fraction::ONE).value() <= 6.0);
        assert_eq!(s.power_draw(&PowerState::Off, Fraction::ONE), Watts::ZERO);
        assert_eq!(
            s.power_draw(&PowerState::Hibernated, Fraction::ONE),
            Watts::ZERO
        );
    }

    #[test]
    fn half_power_reachable_by_dvfs() {
        // Table 8: the '-L' variants run at ~0.5 of peak power. The deepest
        // P-state at full utilization must land near or below half peak.
        let s = ServerSpec::paper_testbed();
        let frac = s.min_throttled_power() / s.peak_power();
        assert!(frac < 0.55, "deepest DVFS gives {frac} of peak");
    }

    #[test]
    fn throttled_power_between_idle_and_peak() {
        let s = ServerSpec::paper_testbed();
        for level in ThrottleLevel::all() {
            let p = s.active_power(level, Fraction::ONE);
            assert!(p >= s.idle_power() && p <= s.peak_power());
        }
    }

    #[test]
    fn builder_overrides() {
        let s = ServerSpec::paper_testbed()
            .with_power_envelope(Watts::new(60.0), Watts::new(300.0))
            .with_memory(Gigabytes::new(128.0));
        assert_eq!(s.idle_power().value(), 60.0);
        assert_eq!(s.memory().value(), 128.0);
    }

    #[test]
    #[should_panic(expected = "idle <= peak")]
    fn inverted_envelope_rejected() {
        let _ =
            ServerSpec::paper_testbed().with_power_envelope(Watts::new(300.0), Watts::new(100.0));
    }

    proptest! {
        #[test]
        fn power_monotone_in_utilization(
            u1 in 0.0f64..=1.0,
            u2 in 0.0f64..=1.0,
            p in 0u8..7,
            t in 0u8..8,
        ) {
            let s = ServerSpec::paper_testbed();
            let level = ThrottleLevel { p: PState::new(p), t: TState::new(t) };
            let (lo, hi) = if u1 < u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(
                s.active_power(level, Fraction::new(lo))
                    <= s.active_power(level, Fraction::new(hi))
            );
        }

        #[test]
        fn deeper_pstate_never_costs_more(u in 0.0f64..=1.0, p in 0u8..6) {
            let s = ServerSpec::paper_testbed();
            let shallow = ThrottleLevel { p: PState::new(p), t: TState::full() };
            let deep = ThrottleLevel { p: PState::new(p + 1), t: TState::full() };
            prop_assert!(
                s.active_power(deep, Fraction::new(u))
                    <= s.active_power(shallow, Fraction::new(u))
            );
        }
    }
}
