//! Property tests for the collapsed-stack encoding: arbitrary profiles
//! built from a safe frame-name alphabet must satisfy `render → parse →
//! encode` byte-identity, and parsed lines must tally to the same
//! per-kind totals as the profile they came from. This is the
//! determinism keystone for the profiler: byte-identical exports across
//! `DCB_THREADS` reduce to canonical per-line encoding plus the sorted
//! line order.

use dcb_prof::collapsed::{self, CollapsedLine};
use dcb_prof::{ProfNode, Profile, WorkKind};
use proptest::prelude::*;

/// Legal frame-name characters (no `;`, whitespace, or brackets).
const POOL: &[char] = &[
    'a', 'k', 'z', 'A', 'Q', '0', '7', '-', '_', '.', ':', '/', '±',
];

/// Builds a 1–10 character frame name from 64 selector bits.
fn name_from(bits: u64) -> String {
    let len = 1 + (bits % 10) as usize;
    let mut out = String::new();
    let mut cursor = bits;
    for _ in 0..len {
        cursor = cursor
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        out.push(POOL[(cursor >> 33) as usize % POOL.len()]);
    }
    out
}

/// Builds a small random attribution tree: up to `budget` nodes, each
/// with weights drawn from the selector stream.
fn tree_from(seed: u64, budget: &mut u32, depth: u32) -> ProfNode {
    let mut cursor = seed;
    let mut next = || {
        cursor = cursor
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        cursor
    };
    let mut weights = [0u64; 5];
    for w in &mut weights {
        let bits = next();
        // Mostly-zero weights exercise the "skip empty lines" path.
        *w = if bits & 3 == 0 {
            (bits >> 2) % 10_000
        } else {
            0
        };
    }
    let mut children = Vec::new();
    if depth < 4 {
        let fanout = (next() % 4) as u32;
        for _ in 0..fanout {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            children.push(tree_from(next(), budget, depth + 1));
        }
    }
    // Children must be unique by name and name-sorted, as snapshot()
    // guarantees; dedup keeps the invariant for colliding names.
    children.sort_by(|a: &ProfNode, b: &ProfNode| a.name.cmp(&b.name));
    children.dedup_by(|a, b| a.name == b.name);
    ProfNode {
        name: name_from(next()),
        weights,
        children,
    }
}

fn totals_of_lines(lines: &[CollapsedLine]) -> [u64; 5] {
    let mut totals = [0u64; 5];
    for line in lines {
        let idx = WorkKind::ALL
            .iter()
            .position(|k| *k == line.kind)
            .expect("kind in ALL");
        totals[idx] += line.weight;
    }
    totals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn render_parse_encode_is_byte_identical(seed in 0u64..=u64::MAX) {
        let mut budget = 24u32;
        let root_body = tree_from(seed, &mut budget, 0);
        let profile = Profile {
            root: ProfNode {
                name: String::new(),
                weights: root_body.weights,
                children: root_body.children,
            },
        };
        let text = collapsed::render(&profile);
        let parsed = collapsed::parse(&text);
        prop_assert!(parsed.is_ok(), "canonical render failed to parse: {:?}", parsed);
        let parsed = parsed.unwrap();
        prop_assert_eq!(collapsed::encode(&parsed), text);

        // The parsed lines must tally to the profile's per-kind totals.
        let totals = totals_of_lines(&parsed);
        for kind in WorkKind::ALL {
            let idx = WorkKind::ALL.iter().position(|k| *k == kind).unwrap();
            prop_assert_eq!(totals[idx], profile.total(kind));
        }
    }

    #[test]
    fn encode_of_parsed_lines_is_a_fixed_point(seed in 0u64..=u64::MAX) {
        let mut cursor = seed;
        let mut next = || {
            cursor = cursor
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            cursor
        };
        let count = (next() % 12) as usize;
        let lines: Vec<CollapsedLine> = (0..count)
            .map(|_| {
                let frames = (0..(next() % 4)).map(|_| name_from(next())).collect();
                CollapsedLine {
                    frames,
                    kind: WorkKind::ALL[(next() % 5) as usize],
                    weight: next() % 1_000_000,
                }
            })
            .collect();
        let text = collapsed::encode(&lines);
        let reparsed = collapsed::parse(&text);
        prop_assert!(reparsed.is_ok(), "{:?}", reparsed);
        prop_assert_eq!(collapsed::encode(&reparsed.unwrap()), text);
    }
}
