//! The hierarchical attribution tree.
//!
//! One process-global arena of nodes guarded by a mutex; each thread
//! tracks its *current* node in a thread-local. [`frame`] descends (or
//! creates) a child, [`record`] adds weight to the current node, and the
//! [`Handoff`]/[`enter`] pair carries the current path across the
//! `dcb-fleet` pool boundary: the submitting thread captures the handoff
//! in program order, each worker enters it before evaluating, so the
//! attribution path — like trace lane claims — never depends on which
//! worker ran the item or when.
//!
//! All weights are additive and commutative, so the tree's totals (and
//! its canonical, name-sorted [`snapshot`]) are invariant under any
//! interleaving of recording threads — the root of the byte-identical
//! guarantee across `DCB_THREADS`.

use crate::{enabled, WorkKind};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

const KINDS: usize = WorkKind::ALL.len();
const ROOT: usize = 0;

struct Node {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    weights: [u64; KINDS],
}

struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new() -> Self {
        Tree {
            nodes: vec![Node {
                name: "",
                children: BTreeMap::new(),
                weights: [0; KINDS],
            }],
        }
    }

    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&id) = self.nodes[parent].children.get(name) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            name,
            children: BTreeMap::new(),
            weights: [0; KINDS],
        });
        self.nodes[parent].children.insert(name, id);
        id
    }
}

static TREE: Mutex<Option<Tree>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<Tree>> {
    TREE.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(ROOT) };
}

/// RAII guard returned by [`frame`] and [`enter`]; restores the thread's
/// previous attribution node when dropped.
#[must_use = "dropping the guard immediately pops the frame"]
pub struct FrameGuard {
    prev: usize,
    active: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Pushes a named attribution frame for the current thread. A no-op
/// (beyond one relaxed load) when profiling is disabled. Frame names
/// become collapsed-stack frames, so they must avoid `;`, whitespace,
/// and brackets — the exporters reject offending names defensively.
pub fn frame(name: &'static str) -> FrameGuard {
    if !enabled() {
        return FrameGuard {
            prev: ROOT,
            active: false,
        };
    }
    let prev = CURRENT.with(Cell::get);
    let mut guard = lock();
    let tree = guard.get_or_insert_with(Tree::new);
    let parent = if prev < tree.nodes.len() { prev } else { ROOT };
    let id = tree.child(parent, name);
    drop(guard);
    CURRENT.with(|c| c.set(id));
    FrameGuard { prev, active: true }
}

/// Adds `amount` units of `kind` to the current thread's attribution
/// node (the root if no frame is open). A no-op when disabled or when
/// `amount` is zero.
pub fn record(kind: WorkKind, amount: u64) {
    if !enabled() || amount == 0 {
        return;
    }
    let node = CURRENT.with(Cell::get);
    let mut guard = lock();
    let tree = guard.get_or_insert_with(Tree::new);
    // A stale thread-local after reset() points past the arena; fall back
    // to the root rather than panicking inside model code.
    let id = if node < tree.nodes.len() { node } else { ROOT };
    tree.nodes[id].weights[kind.index()] += amount;
}

/// A captured attribution path, used to carry the submitting thread's
/// current frame across a thread-pool boundary (mirroring trace-lane
/// claiming). Capture with [`handoff`] in program order on the
/// submitting thread; [`enter`] it on whichever worker runs the item.
#[derive(Debug, Clone, Copy)]
pub struct Handoff {
    node: usize,
}

/// Captures the current thread's attribution node for handoff to a
/// worker thread. `None` when profiling is disabled, so the fleet pool
/// pays nothing in the common case.
#[must_use]
pub fn handoff() -> Option<Handoff> {
    if !enabled() {
        return None;
    }
    Some(Handoff {
        node: CURRENT.with(Cell::get),
    })
}

/// Makes a captured [`Handoff`] the current attribution node on this
/// thread, returning a guard that restores the previous node.
pub fn enter(h: &Handoff) -> FrameGuard {
    if !enabled() {
        return FrameGuard {
            prev: ROOT,
            active: false,
        };
    }
    let prev = CURRENT.with(Cell::get);
    let node = {
        let mut guard = lock();
        let tree = guard.get_or_insert_with(Tree::new);
        if h.node < tree.nodes.len() {
            h.node
        } else {
            ROOT
        }
    };
    CURRENT.with(|c| c.set(node));
    FrameGuard { prev, active: true }
}

/// One node of a captured [`Profile`]: a frame name, its *self* weights
/// per [`WorkKind`] (in [`WorkKind::ALL`] order), and its children
/// sorted by name. The sort plus the additive weights make the whole
/// structure canonical: equal work → equal profile, bytes included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Frame name (empty for the root).
    pub name: String,
    /// Self weights, indexed in [`WorkKind::ALL`] order.
    pub weights: [u64; 5],
    /// Child frames, sorted by name.
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    /// Self weight of one kind at this node (children excluded).
    #[must_use]
    pub fn self_weight(&self, kind: WorkKind) -> u64 {
        self.weights[kind.index()]
    }

    /// Inclusive weight of one kind: self plus all descendants.
    #[must_use]
    pub fn inclusive_weight(&self, kind: WorkKind) -> u64 {
        self.self_weight(kind)
            + self
                .children
                .iter()
                .map(|c| c.inclusive_weight(kind))
                .sum::<u64>()
    }

    /// Inclusive weight summed over every kind — the flamegraph's
    /// horizontal extent for this node.
    #[must_use]
    pub fn inclusive_total(&self) -> u64 {
        WorkKind::ALL
            .into_iter()
            .map(|k| self.inclusive_weight(k))
            .sum()
    }
}

/// A canonical point-in-time copy of the attribution tree, produced by
/// [`snapshot`]. This is the fenced read surface: only report edges may
/// take one (`prof-in-result` lint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// The root node; its own weights hold work recorded outside any
    /// frame.
    pub root: ProfNode,
}

impl Profile {
    /// Total weight of one kind across the whole tree — the number that
    /// must reconcile exactly with the mirrored telemetry counter.
    #[must_use]
    pub fn total(&self, kind: WorkKind) -> u64 {
        self.root.inclusive_weight(kind)
    }

    /// True when no work at all has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.root.inclusive_total() == 0 && self.root.children.is_empty()
    }
}

fn copy_node(tree: &Tree, id: usize) -> ProfNode {
    let node = &tree.nodes[id];
    ProfNode {
        name: node.name.to_string(),
        weights: node.weights,
        // BTreeMap iteration is already name-sorted — canonical order.
        children: node
            .children
            .values()
            .map(|&child| copy_node(tree, child))
            .collect(),
    }
}

/// Captures the attribution tree as a canonical [`Profile`]. Report
/// edges only (read fence).
#[must_use]
pub fn snapshot() -> Profile {
    let guard = lock();
    match guard.as_ref() {
        Some(tree) => Profile {
            root: copy_node(tree, ROOT),
        },
        None => Profile {
            root: ProfNode {
                name: String::new(),
                weights: [0; KINDS],
                children: Vec::new(),
            },
        },
    }
}

/// Discards all recorded attribution. Report edges and tests only.
/// Threads still inside a frame fall back to root attribution (ids are
/// validated against the fresh arena) rather than misattributing.
pub fn reset() {
    *lock() = None;
    CURRENT.with(|c| c.set(ROOT));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, test_guard};

    #[test]
    fn frames_nest_and_weights_attribute_to_current_node() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        {
            let _a = frame("alpha");
            record(WorkKind::Cycles, 10);
            {
                let _b = frame("beta");
                record(WorkKind::Cycles, 5);
                record(WorkKind::Segments, 2);
            }
            record(WorkKind::Cycles, 1);
        }
        record(WorkKind::NodeSteps, 4); // outside any frame → root self
        set_enabled(false);
        let p = snapshot();
        assert_eq!(p.total(WorkKind::Cycles), 16);
        assert_eq!(p.total(WorkKind::Segments), 2);
        assert_eq!(p.root.self_weight(WorkKind::NodeSteps), 4);
        let alpha = &p.root.children[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.self_weight(WorkKind::Cycles), 11);
        let beta = &alpha.children[0];
        assert_eq!(beta.name, "beta");
        assert_eq!(beta.self_weight(WorkKind::Cycles), 5);
        assert_eq!(beta.self_weight(WorkKind::Segments), 2);
        reset();
    }

    #[test]
    fn children_are_name_sorted_regardless_of_creation_order() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        for name in ["zeta", "alpha", "mid"] {
            let _f = frame(name);
            record(WorkKind::Cycles, 1);
        }
        set_enabled(false);
        let p = snapshot();
        let names: Vec<&str> = p.root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        reset();
    }

    #[test]
    fn handoff_carries_path_across_threads() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        let h = {
            let _lane = frame("lane-7");
            handoff().expect("enabled → handoff")
        };
        let worker = std::thread::spawn(move || {
            let _in = enter(&h);
            let _phase = frame("worker-phase");
            record(WorkKind::Segments, 3);
        });
        worker.join().unwrap();
        set_enabled(false);
        let p = snapshot();
        let lane = &p.root.children[0];
        assert_eq!(lane.name, "lane-7");
        assert_eq!(lane.children[0].name, "worker-phase");
        assert_eq!(lane.children[0].self_weight(WorkKind::Segments), 3);
        reset();
    }

    #[test]
    fn totals_are_invariant_under_thread_interleaving() {
        let _g = test_guard();
        for threads in [1usize, 4] {
            reset();
            set_enabled(true);
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    std::thread::spawn(|| {
                        let _f = frame("shared");
                        for _ in 0..1000 {
                            record(WorkKind::LocateIters, 1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            set_enabled(false);
            let p = snapshot();
            assert_eq!(p.total(WorkKind::LocateIters), 1000 * threads as u64);
            assert_eq!(p.root.children.len(), 1);
        }
        reset();
    }

    #[test]
    fn stale_current_after_reset_falls_back_to_root() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        let deep = frame("gone");
        reset(); // arena discarded while a frame guard is still live
        record(WorkKind::Cycles, 2); // must not panic; lands on root
        drop(deep);
        set_enabled(false);
        let p = snapshot();
        assert_eq!(p.root.self_weight(WorkKind::Cycles), 2);
        reset();
    }

    #[test]
    fn snapshot_of_untouched_tree_is_empty() {
        let _g = test_guard();
        reset();
        assert!(snapshot().is_empty());
    }
}
