//! Brendan-Gregg collapsed-stack export and parse.
//!
//! One line per (stack, work-kind) pair with nonzero self weight:
//!
//! ```text
//! fig5;sim-kernel;outage_end;[segments] 1742
//! ```
//!
//! Frames are joined with `;`, the leaf is the bracketed [`WorkKind`]
//! label, and the weight follows a single space — loadable by any
//! flamegraph tooling that speaks the collapsed format. Lines are sorted
//! lexicographically, so equal profiles render to equal bytes: the
//! export is the unit the determinism tests compare across
//! `DCB_THREADS`.

use crate::{ProfNode, Profile, WorkKind};
use std::fmt::Write as _;

/// Characters a frame name must avoid to keep the format unambiguous.
const FORBIDDEN: [char; 6] = [';', ' ', '\t', '\n', '[', ']'];

fn name_ok(name: &str) -> bool {
    !name.is_empty() && !name.contains(FORBIDDEN)
}

/// Replaces any forbidden character with `_` so a hostile frame name
/// degrades the display instead of corrupting the format.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if FORBIDDEN.contains(&c) { '_' } else { c })
        .collect()
}

fn walk(node: &ProfNode, path: &mut Vec<String>, lines: &mut Vec<String>) {
    for kind in WorkKind::ALL {
        let w = node.self_weight(kind);
        if w == 0 {
            continue;
        }
        let mut line = String::new();
        for frame in path.iter() {
            line.push_str(frame);
            line.push(';');
        }
        let _ = write!(line, "[{}] {w}", kind.label());
        lines.push(line);
    }
    for child in &node.children {
        path.push(sanitize(&child.name));
        walk(child, path, lines);
        path.pop();
    }
}

/// Renders a [`Profile`] as sorted collapsed-stack lines. Deterministic:
/// equal profiles yield equal bytes. Root-attributed work (recorded
/// outside any frame) renders with a bare `[kind] w` stack.
#[must_use]
pub fn render(profile: &Profile) -> String {
    let mut lines = Vec::new();
    let mut path = Vec::new();
    walk(&profile.root, &mut path, &mut lines);
    lines.sort_unstable();
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// One parsed collapsed-stack line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapsedLine {
    /// The frame path, outermost first (empty for root-attributed work).
    pub frames: Vec<String>,
    /// Which work unit the weight counts.
    pub kind: WorkKind,
    /// The self weight.
    pub weight: u64,
}

/// Parses collapsed-stack text back into lines, validating the format
/// strictly (the proptest round-trip leans on this being exact).
///
/// # Errors
///
/// Returns a message naming the first offending line when a line lacks
/// the bracketed kind leaf, carries an unknown kind label, has a
/// malformed weight, or contains an illegal frame name.
pub fn parse(text: &str) -> Result<Vec<CollapsedLine>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let n = lineno + 1;
        if raw.is_empty() {
            return Err(format!("line {n}: empty line"));
        }
        let (stack, weight_str) = raw
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: missing weight separator"))?;
        let weight: u64 = weight_str
            .parse()
            .map_err(|e| format!("line {n}: bad weight {weight_str:?}: {e}"))?;
        let mut frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        let leaf = frames
            .pop()
            .ok_or_else(|| format!("line {n}: empty stack"))?;
        let label = leaf
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("line {n}: leaf {leaf:?} is not a [kind] frame"))?;
        let kind = WorkKind::parse_label(label)
            .ok_or_else(|| format!("line {n}: unknown work kind {label:?}"))?;
        for frame in &frames {
            if !name_ok(frame) {
                return Err(format!("line {n}: illegal frame name {frame:?}"));
            }
        }
        out.push(CollapsedLine {
            frames,
            kind,
            weight,
        });
    }
    Ok(out)
}

/// Re-encodes parsed lines, sorted, in the exact [`render`] format —
/// the other half of the round-trip contract.
#[must_use]
pub fn encode(lines: &[CollapsedLine]) -> String {
    let mut rendered: Vec<String> = lines
        .iter()
        .map(|l| {
            let mut s = String::new();
            for frame in &l.frames {
                s.push_str(frame);
                s.push(';');
            }
            let _ = write!(s, "[{}] {}", l.kind.label(), l.weight);
            s
        })
        .collect();
    rendered.sort_unstable();
    let mut out = String::new();
    for line in rendered {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfNode;

    fn leaf(name: &str, weights: [u64; 5]) -> ProfNode {
        ProfNode {
            name: name.to_string(),
            weights,
            children: Vec::new(),
        }
    }

    fn sample() -> Profile {
        Profile {
            root: ProfNode {
                name: String::new(),
                weights: [0, 0, 0, 7, 0],
                children: vec![ProfNode {
                    name: "fig5".to_string(),
                    weights: [0; 5],
                    children: vec![
                        leaf("locate", [0, 0, 30, 0, 0]),
                        leaf("sim-kernel", [0, 1742, 0, 0, 0]),
                    ],
                }],
            },
        }
    }

    #[test]
    fn render_is_sorted_and_round_trips() {
        let text = render(&sample());
        assert_eq!(
            text,
            "[node-steps] 7\n\
             fig5;locate;[locate-iters] 30\n\
             fig5;sim-kernel;[segments] 1742\n"
        );
        let parsed = parse(&text).unwrap();
        assert_eq!(encode(&parsed), text);
    }

    #[test]
    fn hostile_frame_names_are_sanitized_not_corrupting() {
        let profile = Profile {
            root: ProfNode {
                name: String::new(),
                weights: [0; 5],
                children: vec![leaf("a;b [x]", [1, 0, 0, 0, 0])],
            },
        };
        let text = render(&profile);
        assert_eq!(text, "a_b__x_;[cycles] 1\n");
        parse(&text).unwrap();
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("no-kind-leaf 5\n").is_err());
        assert!(parse("a;[cycles] notanumber\n").is_err());
        assert!(parse("a;[unknown-kind] 5\n").is_err());
        assert!(parse("\n").is_err());
        assert!(parse("a;[cycles]5\n").is_err());
    }
}
