//! Self-contained deterministic flamegraph SVG.
//!
//! A static (non-scripted) flamegraph: rows of rectangles, root at the
//! top, each node's horizontal extent proportional to its *inclusive*
//! model-work weight summed over every [`WorkKind`]. Hover tooltips come
//! from plain `<title>` elements, colors from an FNV-1a hash of the
//! frame name mapped into a warm palette, and all coordinates are
//! emitted at fixed two-decimal precision — so equal profiles produce
//! byte-identical SVG, the property the subprocess determinism tests
//! pin down.

use crate::{ProfNode, Profile, WorkKind};
use std::fmt::Write as _;

const WIDTH: f64 = 1200.0;
const ROW_H: f64 = 16.0;
const PAD: f64 = 10.0;
const LEGEND_H: f64 = 18.0;
/// Rectangles narrower than this are skipped (their `<title>` would be
/// unhoverable anyway); keeps pathological trees from bloating the file.
const MIN_WIDTH: f64 = 0.4;

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Warm flame palette: red 180–240, green 60–180, blue 30–70, all
/// derived from the name hash so a frame keeps its color across runs
/// and exhibits.
fn color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 180 + (h & 0x3f) % 61;
    let g = 60 + ((h >> 8) & 0xff) % 121;
    let b = 30 + ((h >> 16) & 0x3f) % 41;
    format!("rgb({r},{g},{b})")
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn depth_of(node: &ProfNode) -> usize {
    1 + node.children.iter().map(depth_of).max().unwrap_or(0)
}

fn tooltip(node: &ProfNode, total: u64) -> String {
    let inclusive = node.inclusive_total();
    let pct = if total == 0 {
        0.0
    } else {
        100.0 * inclusive as f64 / total as f64
    };
    let mut tip = format!(
        "{} — {inclusive} units ({pct:.1}%)",
        if node.name.is_empty() {
            "all"
        } else {
            &node.name
        }
    );
    for kind in WorkKind::ALL {
        let w = node.self_weight(kind);
        if w > 0 {
            let _ = write!(tip, "\nself {}: {w}", kind.label());
        }
    }
    tip
}

fn emit(node: &ProfNode, x0: f64, width: f64, depth: usize, total: u64, out: &mut String) {
    if width < MIN_WIDTH {
        return;
    }
    let y = PAD + depth as f64 * ROW_H;
    let label = if node.name.is_empty() {
        "all".to_string()
    } else {
        node.name.clone()
    };
    let fill = color(&label);
    let _ = write!(
        out,
        "<g><title>{}</title><rect x=\"{x0:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" \
         height=\"{:.2}\" fill=\"{fill}\" stroke=\"#3a2a1a\" stroke-width=\"0.5\"/>",
        xml_escape(&tooltip(node, total)),
        ROW_H - 1.0,
    );
    // Roughly 7px per glyph at font-size 12; only label what fits.
    if width >= 7.0 * label.len() as f64 + 4.0 {
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"12\" font-family=\"monospace\" \
             fill=\"#1a1008\">{}</text>",
            x0 + 3.0,
            y + ROW_H - 4.5,
            xml_escape(&label),
        );
    }
    out.push_str("</g>\n");
    let node_inclusive = node.inclusive_total();
    if node_inclusive == 0 {
        return;
    }
    let mut cursor = x0;
    for child in &node.children {
        let child_w = width * child.inclusive_total() as f64 / node_inclusive as f64;
        emit(child, cursor, child_w, depth + 1, total, out);
        cursor += child_w;
    }
}

/// Renders a [`Profile`] as a self-contained flamegraph SVG.
/// Deterministic: equal profiles yield equal bytes.
#[must_use]
pub fn render(profile: &Profile) -> String {
    let total = profile.root.inclusive_total();
    let depth = depth_of(&profile.root);
    let height = PAD * 2.0 + depth as f64 * ROW_H + LEGEND_H;
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH:.0} {height:.0}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6ec\"/>\n"
    );
    emit(&profile.root, PAD, WIDTH - 2.0 * PAD, 0, total, &mut out);
    // Legend: per-kind totals, the same numbers reconciliation checks.
    let mut legend = String::from("totals:");
    for kind in WorkKind::ALL {
        let w = profile.root.inclusive_weight(kind);
        if w > 0 {
            let _ = write!(legend, " {}={w}", kind.label());
        }
    }
    if legend == "totals:" {
        legend.push_str(" (no work recorded)");
    }
    let _ = write!(
        out,
        "<text x=\"{PAD:.2}\" y=\"{:.2}\" font-size=\"12\" font-family=\"monospace\" \
         fill=\"#5a4632\">{}</text>\n</svg>\n",
        height - 6.0,
        xml_escape(&legend),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfNode;

    fn sample() -> Profile {
        Profile {
            root: ProfNode {
                name: String::new(),
                weights: [0; 5],
                children: vec![
                    ProfNode {
                        name: "fig5".to_string(),
                        weights: [0; 5],
                        children: vec![ProfNode {
                            name: "sim-kernel".to_string(),
                            weights: [0, 900, 0, 0, 0],
                            children: Vec::new(),
                        }],
                    },
                    ProfNode {
                        name: "topo".to_string(),
                        weights: [0, 0, 0, 100, 0],
                        children: Vec::new(),
                    },
                ],
            },
        }
    }

    #[test]
    fn render_is_wellformed_and_deterministic() {
        let a = render(&sample());
        let b = render(&sample());
        assert_eq!(a, b);
        assert!(a.starts_with("<svg "));
        assert!(a.trim_end().ends_with("</svg>"));
        assert!(a.contains("sim-kernel"));
        assert!(a.contains("totals: segments=900 node-steps=100"));
        // Every <g> opened is closed, every rect has a title.
        assert_eq!(a.matches("<g>").count(), a.matches("</g>").count());
        assert_eq!(a.matches("<rect x=").count(), a.matches("<title>").count());
    }

    #[test]
    fn widths_are_proportional_to_inclusive_weight() {
        let svg = render(&sample());
        // fig5 holds 900/1000 of the work → width 0.9 × (1200 − 20).
        assert!(svg.contains("width=\"1062.00\""), "{svg}");
        assert!(svg.contains("width=\"118.00\""), "{svg}");
    }

    #[test]
    fn empty_profile_renders_placeholder_legend() {
        let empty = Profile {
            root: ProfNode {
                name: String::new(),
                weights: [0; 5],
                children: Vec::new(),
            },
        };
        let svg = render(&empty);
        assert!(svg.contains("(no work recorded)"));
    }

    #[test]
    fn tooltips_escape_xml() {
        let profile = Profile {
            root: ProfNode {
                name: String::new(),
                weights: [0; 5],
                children: vec![ProfNode {
                    name: "a<b&c".to_string(),
                    weights: [1, 0, 0, 0, 0],
                    children: Vec::new(),
                }],
            },
        };
        let svg = render(&profile);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b&c"));
    }
}
