//! The perf observatory: parses, validates, and analyzes
//! `BENCH_history.jsonl`.
//!
//! The history file is append-only JSONL written by the bench harness.
//! It has drifted once already (the oldest line predates the `"bench"`
//! key) and the topology bench writes its per-workload array under
//! `"facilities"` instead of `"workloads"` — so the parser here
//! *normalizes*: legacy lines are tagged (`legacy: true`) and defaulted
//! to the engine bench, facility arrays become workloads, and every
//! line's `min_speedup` is cross-checked against the minimum of its
//! per-workload speedups. `ci.sh` runs the validator on every append.
//!
//! On top of the normalized series the observatory computes per-workload
//! **median + MAD noise bands** over a trailing window, renders
//! sparkline trends, flags regressions (newest point below the noise
//! band *and* materially below the median), and emits **ratcheted
//! floors**: each workload must stay above
//! `max(base, RATCHET × min(prior window))`, so the floor rises as the
//! implementation gets faster but keeps enough slack for the benches'
//! real run-to-run noise (roughly ±2× in this history).

use std::fmt::Write as _;

/// Trailing window (number of history entries per workload) used for
/// noise bands, floors, and sparklines.
pub const DEFAULT_WINDOW: usize = 8;

/// Safety factor applied to the prior-window minimum when ratcheting a
/// floor. 0.35 tolerates the ±2–3× noise the recorded history actually
/// shows while still ratcheting far above the old hand-coded 5×/10×.
pub const RATCHET: f64 = 0.35;

/// Hard lower bound for engine-bench floors (the old hand-coded value).
pub const BASE_FLOOR_ENGINE: f64 = 5.0;
/// Hard lower bound for topology-bench floors (the old hand-coded value).
pub const BASE_FLOOR_TOPOLOGY: f64 = 10.0;

// ---------------------------------------------------------------------
// Minimal JSON (std-only), just enough for the history schema.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn parse_complete(mut self) -> Result<Json, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at {}", self.pos));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------
// History schema
// ---------------------------------------------------------------------

/// One validated, normalized line of `BENCH_history.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Which bench wrote the line (`engine` or `topology`); defaulted to
    /// `engine` for legacy lines that predate the key.
    pub bench: String,
    /// Optional implementation tag (e.g. `engine-v2`).
    pub tag: Option<String>,
    /// True when the line lacked the `"bench"` key (pre-drift schema).
    pub legacy: bool,
    /// Append timestamp (unix seconds).
    pub unix_s: u64,
    /// Bench mode (`smoke` or `full`).
    pub mode: String,
    /// The line's own minimum-speedup summary (cross-checked).
    pub min_speedup: f64,
    /// Per-workload `(name, speedup)` pairs; topology `facilities`
    /// entries are normalized into this field.
    pub workloads: Vec<(String, f64)>,
    /// 1-based line number in the file, the chronological key.
    pub line_no: usize,
}

fn parse_entry(line: &str, line_no: usize) -> Result<HistoryEntry, String> {
    let json = Parser::new(line)
        .parse_complete()
        .map_err(|e| format!("line {line_no}: {e}"))?;

    let (bench, legacy) = match json.get("bench") {
        Some(v) => (
            v.as_str()
                .ok_or(format!("line {line_no}: \"bench\" is not a string"))?
                .to_string(),
            false,
        ),
        // Schema drift: the oldest line predates the key. Only the
        // engine bench existed then, so tag-and-default is lossless.
        None => ("engine".to_string(), true),
    };
    let tag = match json.get("tag") {
        Some(v) => Some(
            v.as_str()
                .ok_or(format!("line {line_no}: \"tag\" is not a string"))?
                .to_string(),
        ),
        None => None,
    };
    let unix_f = json
        .get("unix_s")
        .and_then(Json::as_f64)
        .ok_or(format!("line {line_no}: missing numeric \"unix_s\""))?;
    // dcb-audit: allow(float-cmp, whole-second check is an exact integrality test)
    if unix_f < 0.0 || unix_f.fract() != 0.0 {
        return Err(format!("line {line_no}: \"unix_s\" is not a whole second"));
    }
    let mode = json
        .get("mode")
        .and_then(Json::as_str)
        .ok_or(format!("line {line_no}: missing string \"mode\""))?
        .to_string();
    let min_speedup = json
        .get("min_speedup")
        .and_then(Json::as_f64)
        .ok_or(format!("line {line_no}: missing numeric \"min_speedup\""))?;
    if !min_speedup.is_finite() || min_speedup <= 0.0 {
        return Err(format!(
            "line {line_no}: \"min_speedup\" must be finite and positive"
        ));
    }

    // The per-workload array drifted too: topology writes "facilities".
    let (array_key, array) = match (json.get("workloads"), json.get("facilities")) {
        (Some(a), None) => ("workloads", a),
        (None, Some(a)) => ("facilities", a),
        (Some(_), Some(_)) => {
            return Err(format!(
                "line {line_no}: both \"workloads\" and \"facilities\" present"
            ))
        }
        (None, None) => {
            return Err(format!(
                "line {line_no}: missing \"workloads\"/\"facilities\" array"
            ))
        }
    };
    let items = match array {
        Json::Arr(items) if !items.is_empty() => items,
        Json::Arr(_) => return Err(format!("line {line_no}: empty \"{array_key}\" array")),
        _ => return Err(format!("line {line_no}: \"{array_key}\" is not an array")),
    };
    let mut workloads = Vec::with_capacity(items.len());
    for item in items {
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("line {line_no}: workload missing string \"name\""))?;
        let speedup = item.get("speedup").and_then(Json::as_f64).ok_or(format!(
            "line {line_no}: workload missing numeric \"speedup\""
        ))?;
        if !speedup.is_finite() || speedup <= 0.0 {
            return Err(format!(
                "line {line_no}: workload {name:?} speedup must be finite and positive"
            ));
        }
        workloads.push((name.to_string(), speedup));
    }

    // Cross-check the summary field against the per-workload minimum.
    let actual_min = workloads
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let rel = (min_speedup - actual_min).abs() / actual_min.max(f64::MIN_POSITIVE);
    if rel > 1e-6 {
        return Err(format!(
            "line {line_no}: min_speedup {min_speedup} does not match \
             per-workload minimum {actual_min}"
        ));
    }

    Ok(HistoryEntry {
        bench,
        tag,
        legacy,
        unix_s: unix_f as u64,
        mode,
        min_speedup,
        workloads,
        line_no,
    })
}

/// Parses and validates a whole history file (JSONL). File order is the
/// chronology. Blank lines are rejected — the file is append-only and a
/// blank line means a botched append.
///
/// # Errors
///
/// Returns the first schema violation, naming its line.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, String> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: blank line in append-only history"));
        }
        entries.push(parse_entry(line, line_no)?);
    }
    if entries.is_empty() {
        return Err("history is empty".to_string());
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Series analysis
// ---------------------------------------------------------------------

/// One workload's chronological speedup series plus its computed noise
/// band, floor, and trend over the trailing window.
#[derive(Debug, Clone)]
pub struct SeriesStats {
    /// `bench/workload`, the stable series key.
    pub key: String,
    /// Which bench the series belongs to.
    pub bench: String,
    /// Values inside the trailing window, oldest first (newest last).
    pub window: Vec<f64>,
    /// The newest value.
    pub newest: f64,
    /// Median of the window *excluding* the newest value (the prior
    /// band the newest point is judged against); newest value itself
    /// when there is no prior.
    pub median: f64,
    /// Median absolute deviation of the prior window.
    pub mad: f64,
    /// Ratcheted floor the newest value must stay above.
    pub floor: f64,
    /// True when the newest value sits below the noise band *and*
    /// materially below the prior median.
    pub regressed: bool,
    /// Unicode sparkline of the window, oldest → newest.
    pub sparkline: String,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn median_and_mad(values: &[f64]) -> (f64, f64) {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_of(&sorted);
    let mut deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    (med, median_of(&deviations))
}

fn base_floor(bench: &str) -> f64 {
    if bench == "topology" {
        BASE_FLOOR_TOPOLOGY
    } else {
        BASE_FLOOR_ENGINE
    }
}

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|v| {
            if span > 0.0 {
                let level = ((v - min) / span * 7.0).round();
                BARS[(level as usize).min(7)]
            } else {
                BARS[3]
            }
        })
        .collect()
}

/// Computes per-workload series statistics over a trailing `window` of
/// history entries. Series are keyed `bench/workload` and returned
/// sorted by key.
#[must_use]
pub fn analyze(entries: &[HistoryEntry], window: usize) -> Vec<SeriesStats> {
    let window = window.max(2);
    let mut series: Vec<(String, String, Vec<f64>)> = Vec::new();
    for entry in entries {
        for (name, speedup) in &entry.workloads {
            let key = format!("{}/{}", entry.bench, name);
            match series.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, _, values)) => values.push(*speedup),
                None => series.push((key, entry.bench.clone(), vec![*speedup])),
            }
        }
    }
    series.sort_by(|a, b| a.0.cmp(&b.0));

    series
        .into_iter()
        .map(|(key, bench, values)| {
            let start = values.len().saturating_sub(window);
            let win = values[start..].to_vec();
            let newest = win.last().copied().unwrap_or(0.0);
            let prior = &win[..win.len() - 1];
            let (median, mad) = if prior.is_empty() {
                (newest, 0.0)
            } else {
                median_and_mad(prior)
            };
            let prior_min = prior.iter().copied().fold(f64::INFINITY, f64::min);
            let floor = if prior.len() >= 2 {
                base_floor(&bench).max(RATCHET * prior_min)
            } else {
                base_floor(&bench)
            };
            // Regressed = below the 3-MAD noise band AND materially
            // (≥35%) below the prior median, with enough history to
            // trust the band at all.
            let regressed =
                prior.len() >= 3 && newest < median - 3.0 * mad && newest < 0.65 * median;
            SeriesStats {
                sparkline: sparkline(&win),
                key,
                bench,
                newest,
                median,
                mad,
                floor,
                regressed,
                window: win,
            }
        })
        .collect()
}

/// Renders the human `repro perf` report: per-series trend sparkline,
/// noise band, floor, and any regression warnings.
#[must_use]
pub fn report(entries: &[HistoryEntry], window: usize) -> String {
    let stats = analyze(entries, window);
    let legacy = entries.iter().filter(|e| e.legacy).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf observatory: {} entries, {} series, window {}",
        entries.len(),
        stats.len(),
        window.max(2)
    );
    if legacy > 0 {
        let _ = writeln!(
            out,
            "  ({legacy} legacy pre-\"bench\"-key line(s) normalized to bench=engine)"
        );
    }
    let key_w = stats.iter().map(|s| s.key.len()).max().unwrap_or(0);
    for s in &stats {
        let _ = writeln!(
            out,
            "  {key:<key_w$}  {spark}  newest {newest:>9.2}x  median {median:>9.2}x  \
             mad {mad:>8.2}  floor {floor:>8.2}x{flag}",
            key = s.key,
            spark = s.sparkline,
            newest = s.newest,
            median = s.median,
            mad = s.mad,
            floor = s.floor,
            flag = if s.regressed { "  ⚠ REGRESSION" } else { "" },
        );
    }
    for s in &stats {
        if s.regressed {
            let _ = writeln!(
                out,
                "regression: {} fell to {:.2}x (prior median {:.2}x, noise band ±{:.2})",
                s.key,
                s.newest,
                s.median,
                3.0 * s.mad
            );
        }
    }
    out
}

/// Renders the ratcheted floors, one `key floor` line per series —
/// the machine-readable half of `repro perf floors`.
#[must_use]
pub fn floors(entries: &[HistoryEntry], window: usize) -> String {
    let stats = analyze(entries, window);
    let mut out = String::new();
    for s in &stats {
        let _ = writeln!(out, "{} {:.2}", s.key, s.floor);
    }
    out
}

/// The CI gate: every series' newest value must clear its ratcheted
/// floor. Schema violations surface earlier, in [`parse_history`].
///
/// # Errors
///
/// Returns a message naming every series below its floor.
pub fn check(entries: &[HistoryEntry], window: usize) -> Result<String, String> {
    let stats = analyze(entries, window);
    let violations: Vec<String> = stats
        .iter()
        .filter(|s| s.newest < s.floor)
        .map(|s| {
            format!(
                "{}: newest {:.2}x below ratcheted floor {:.2}x",
                s.key, s.newest, s.floor
            )
        })
        .collect();
    if violations.is_empty() {
        let mut ok = String::new();
        for s in &stats {
            let _ = writeln!(
                ok,
                "ok {}: newest {:.2}x >= floor {:.2}x",
                s.key, s.newest, s.floor
            );
        }
        Ok(ok)
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEGACY: &str = r#"{"unix_s": 100, "mode": "smoke", "min_speedup": 50.0, "workloads": [{"name": "w", "speedup": 50.0}]}"#;

    fn engine_line(unix: u64, speedup: f64) -> String {
        format!(
            r#"{{"bench": "engine", "unix_s": {unix}, "mode": "smoke", "min_speedup": {speedup}, "workloads": [{{"name": "w", "speedup": {speedup}}}]}}"#
        )
    }

    fn topo_line(unix: u64, speedup: f64) -> String {
        format!(
            r#"{{"bench": "topology", "unix_s": {unix}, "mode": "smoke", "min_speedup": {speedup}, "facilities": [{{"name": "f", "speedup": {speedup}}}]}}"#
        )
    }

    #[test]
    fn legacy_line_is_tagged_and_defaulted_to_engine() {
        let entries = parse_history(LEGACY).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].legacy);
        assert_eq!(entries[0].bench, "engine");
        assert_eq!(entries[0].workloads, vec![("w".to_string(), 50.0)]);
    }

    #[test]
    fn facilities_normalize_to_workloads() {
        let entries = parse_history(&topo_line(1, 20.0)).unwrap();
        assert!(!entries[0].legacy);
        assert_eq!(entries[0].bench, "topology");
        assert_eq!(entries[0].workloads, vec![("f".to_string(), 20.0)]);
    }

    #[test]
    fn schema_violations_are_rejected_with_line_numbers() {
        let missing_mode = r#"{"bench": "engine", "unix_s": 1, "min_speedup": 2.0, "workloads": [{"name": "w", "speedup": 2.0}]}"#;
        let err = parse_history(&format!("{}\n{missing_mode}", engine_line(1, 9.0))).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("mode"), "{err}");

        let bad_min = r#"{"bench": "engine", "unix_s": 1, "mode": "smoke", "min_speedup": 99.0, "workloads": [{"name": "w", "speedup": 2.0}]}"#;
        let err = parse_history(bad_min).unwrap_err();
        assert!(err.contains("does not match"), "{err}");

        assert!(parse_history("").is_err());
        assert!(parse_history("not json").is_err());
        let trailing = format!("{}\n\n", engine_line(1, 9.0));
        assert!(parse_history(&trailing).is_err(), "blank line accepted");
    }

    #[test]
    fn floors_ratchet_from_prior_window_and_respect_base() {
        let lines: Vec<String> = (0..5).map(|i| engine_line(i, 100.0 + i as f64)).collect();
        let entries = parse_history(&lines.join("\n")).unwrap();
        let stats = analyze(&entries, DEFAULT_WINDOW);
        assert_eq!(stats.len(), 1);
        // prior = [100..103], min 100 → floor 35; newest 104 clears it.
        assert!((stats[0].floor - 35.0).abs() < 1e-9);
        assert!(check(&entries, DEFAULT_WINDOW).is_ok());

        // With one entry there is no prior window: base floor only.
        let one = parse_history(&engine_line(0, 100.0)).unwrap();
        let stats = analyze(&one, DEFAULT_WINDOW);
        assert!((stats[0].floor - BASE_FLOOR_ENGINE).abs() < 1e-9);

        // Topology base floor is 10, even for a slow series.
        let topo = parse_history(&topo_line(0, 12.0)).unwrap();
        let stats = analyze(&topo, DEFAULT_WINDOW);
        assert!((stats[0].floor - BASE_FLOOR_TOPOLOGY).abs() < 1e-9);
    }

    #[test]
    fn regression_is_flagged_and_floor_violation_fails_check() {
        let mut lines: Vec<String> = (0..6).map(|i| engine_line(i, 100.0 + i as f64)).collect();
        lines.push(engine_line(6, 8.0)); // collapse: 100x-class → 8x
        let entries = parse_history(&lines.join("\n")).unwrap();
        let stats = analyze(&entries, DEFAULT_WINDOW);
        assert!(stats[0].regressed, "collapse not flagged: {stats:?}");
        let report = report(&entries, DEFAULT_WINDOW);
        assert!(report.contains("REGRESSION"), "{report}");
        // 8x is also below the ratcheted floor (0.35 × 100 = 35x).
        let err = check(&entries, DEFAULT_WINDOW).unwrap_err();
        assert!(err.contains("below ratcheted floor"), "{err}");
    }

    #[test]
    fn noisy_but_healthy_series_is_not_flagged() {
        // ±2x swings like the real history: no regression, check passes.
        let values = [112.0, 145.0, 66.0, 103.0, 110.0, 228.0, 224.0];
        let lines: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(i, v)| engine_line(i as u64, *v))
            .collect();
        let entries = parse_history(&lines.join("\n")).unwrap();
        let stats = analyze(&entries, DEFAULT_WINDOW);
        assert!(!stats[0].regressed);
        assert!(check(&entries, DEFAULT_WINDOW).is_ok());
    }

    #[test]
    fn sparkline_spans_window_and_handles_flat_series() {
        assert_eq!(sparkline(&[1.0, 8.0]), "▁█");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
    }

    #[test]
    fn floors_output_is_one_line_per_series() {
        let text = format!("{}\n{}", engine_line(1, 50.0), topo_line(2, 30.0));
        let entries = parse_history(&text).unwrap();
        let floors = floors(&entries, DEFAULT_WINDOW);
        assert_eq!(floors, "engine/w 5.00\ntopology/f 10.00\n");
    }
}
