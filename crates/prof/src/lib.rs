//! # dcb-prof
//!
//! A **deterministic work-attribution profiler** and a **perf-regression
//! observatory** for the underprovisioning framework.
//!
//! ## Half one: work attribution
//!
//! Wall-clock profilers answer "where did the nanoseconds go?" — an
//! inherently scheduling-dependent question. This profiler answers
//! "where did the *model work* go?": its weights are model-work units
//! ([`WorkKind`] — engine calendar cycles, committed kernel segments,
//! bisection iterations of the located-event root finder, topology
//! node-steps, evaluation-cache misses), every one of which is a pure
//! function of the evaluated workload. Cost hooks in `crates/engine`,
//! `crates/sim`, `crates/topology`, and `crates/fleet` attribute each
//! unit to a hierarchical frame path (lane → component → phase), so the
//! resulting profile — exported as Brendan-Gregg [`collapsed`]-stack text
//! or a self-contained [`svg`] flamegraph — is **byte-identical across
//! `DCB_THREADS` settings** and across repeat runs.
//!
//! Each [`WorkKind`] mirrors one stable `dcb-telemetry` counter
//! ([`WorkKind::counter_name`]); the `repro profile` subcommand asserts
//! that the profile's total tally reconciles *exactly* with the telemetry
//! snapshot, so the flamegraph can be trusted as an attribution of the
//! counted work, not a parallel estimate.
//!
//! Frames propagate across the `dcb-fleet` pool the same way trace lanes
//! do: the submitting thread captures a [`handoff`] in program order and
//! every work item [`enter`]s it on whichever worker runs it, so the
//! attribution path never depends on scheduling.
//!
//! ## Half two: the perf observatory
//!
//! [`observatory`] parses and validates `BENCH_history.jsonl` (tagging
//! schema-drifted legacy lines), computes per-workload median + MAD noise
//! bands over a trailing window, renders text sparkline trends, detects
//! regressions, and emits **ratcheted per-workload speedup floors** that
//! `ci.sh` asserts through `repro perf check` in place of a hand-coded
//! global floor.
//!
//! ## Cost when disabled
//!
//! Collection is off by default: every hook pays one relaxed atomic load
//! and a branch ([`enabled`]), mirroring the `dcb-telemetry`/`dcb-trace`
//! discipline. Enable with `DCB_PROF=text|collapsed|svg` (via
//! [`init_from_env`]) at binary edges, or programmatically with
//! [`set_enabled`].
//!
//! ## Read fence
//!
//! Model code may *record* ([`frame`], [`record`], [`handoff`],
//! [`enter`]) but never read a profile back: [`snapshot`], [`reset`], and
//! the [`collapsed`]/[`svg`]/[`observatory`] exporters are fenced to
//! report edges by the `prof-in-result` audit lint (DESIGN.md §8).
//!
//! ## Example
//!
//! ```
//! use dcb_prof as prof;
//!
//! prof::set_enabled(true);
//! {
//!     let _lane = prof::frame("doc-lane");
//!     let _component = prof::frame("doc-component");
//!     prof::record(prof::WorkKind::Segments, 3);
//! }
//! prof::set_enabled(false);
//! let profile = prof::snapshot();
//! assert_eq!(profile.total(prof::WorkKind::Segments), 3);
//! prof::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapsed;
pub mod observatory;
pub mod svg;
mod tree;

pub use tree::{
    enter, frame, handoff, record, reset, snapshot, FrameGuard, Handoff, ProfNode, Profile,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether attribution is currently enabled: the one relaxed load and
/// branch every cost hook pays when profiling is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns attribution on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Which export format (if any) the `repro profile` subcommand renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfMode {
    /// Human text report: attribution tree, reconciliation, and the
    /// volatile wall-time overlay. The default for `repro profile`.
    Text,
    /// Brendan-Gregg collapsed-stack lines (byte-reproducible).
    Collapsed,
    /// Self-contained flamegraph SVG (byte-reproducible).
    Svg,
}

/// Reads `DCB_PROF` at a binary edge: any non-empty value other than
/// `0`/`off`/`false` enables attribution, with the value also selecting
/// the export format per [`mode_from_env`]. Mirrors the
/// `dcb_telemetry::init_from_env` / `dcb_trace::init_from_env` pattern.
pub fn init_from_env() {
    match std::env::var("DCB_PROF") {
        Ok(value) => {
            let v = value.trim().to_ascii_lowercase();
            set_enabled(!(v.is_empty() || v == "0" || v == "off" || v == "false"));
        }
        Err(_) => set_enabled(false),
    }
}

/// Parses the `DCB_PROF` environment variable: `collapsed` or `svg`
/// (case-insensitive) select a reproducible exporter; anything else (or
/// unset) means the human [`ProfMode::Text`] report.
#[must_use]
pub fn mode_from_env() -> ProfMode {
    match std::env::var("DCB_PROF") {
        Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
            "collapsed" => ProfMode::Collapsed,
            "svg" => ProfMode::Svg,
            _ => ProfMode::Text,
        },
        Err(_) => ProfMode::Text,
    }
}

/// The model-work units the profiler attributes. Each kind mirrors one
/// stable `dcb-telemetry` counter; `repro profile` asserts the profile's
/// per-kind totals reconcile exactly with the telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkKind {
    /// Engine calendar cycles (fired events), attributed per component.
    Cycles,
    /// Kernel segments committed, attributed per end cause.
    Segments,
    /// Bisection iterations of the located-event root finder.
    LocateIters,
    /// Topology nodes stepped during hierarchical resolution.
    NodeSteps,
    /// Evaluation-cache misses (each one buys a full kernel run).
    CacheMisses,
}

impl WorkKind {
    /// Every kind, in canonical (rendering) order.
    pub const ALL: [WorkKind; 5] = [
        WorkKind::Cycles,
        WorkKind::Segments,
        WorkKind::LocateIters,
        WorkKind::NodeSteps,
        WorkKind::CacheMisses,
    ];

    /// Stable wire label, used as the bracketed leaf frame of collapsed
    /// stacks (`a;b;[segments] 42`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkKind::Cycles => "cycles",
            WorkKind::Segments => "segments",
            WorkKind::LocateIters => "locate-iters",
            WorkKind::NodeSteps => "node-steps",
            WorkKind::CacheMisses => "cache-misses",
        }
    }

    /// Parses a [`Self::label`] back into its kind.
    #[must_use]
    pub fn parse_label(label: &str) -> Option<WorkKind> {
        WorkKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// The stable `dcb-telemetry` counter this kind mirrors — the
    /// reconciliation contract asserted by `repro profile`.
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            WorkKind::Cycles => "engine.cycles",
            WorkKind::Segments => "sim.kernel.segments",
            WorkKind::LocateIters => "engine.locate.bisection_iters",
            WorkKind::NodeSteps => "topo.nodes.resolved",
            WorkKind::CacheMisses => "fleet.cache.misses",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            WorkKind::Cycles => 0,
            WorkKind::Segments => 1,
            WorkKind::LocateIters => 2,
            WorkKind::NodeSteps => 3,
            WorkKind::CacheMisses => 4,
        }
    }
}

/// Serializes tests that toggle the process-wide enabled flag or reset
/// the attribution tree. Mirrors the `dcb-telemetry` test discipline.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_and_are_distinct() {
        for kind in WorkKind::ALL {
            assert_eq!(WorkKind::parse_label(kind.label()), Some(kind));
            assert!(!kind.counter_name().is_empty());
        }
        let mut labels: Vec<&str> = WorkKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), WorkKind::ALL.len());
        assert_eq!(WorkKind::parse_label("nope"), None);
    }

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _g = test_guard();
        reset();
        record(WorkKind::Cycles, 7); // disabled: dropped
        set_enabled(true);
        record(WorkKind::Cycles, 2);
        set_enabled(false);
        record(WorkKind::Cycles, 9); // disabled again: dropped
        assert_eq!(snapshot().total(WorkKind::Cycles), 2);
        reset();
    }

    #[test]
    fn disabled_recording_is_cheap() {
        // A regression tripwire, not a benchmark: 10M disabled hooks must
        // stay far under a second (one load + branch each).
        let _g = test_guard();
        set_enabled(false);
        let start = std::time::Instant::now();
        for _ in 0..10_000_000u64 {
            record(WorkKind::Segments, 1);
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "disabled-path cost regressed: {:?}",
            start.elapsed()
        );
    }
}
