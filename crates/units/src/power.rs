//! Electrical power quantities.

use crate::energy::WattHours;
use crate::time::Seconds;

quantity! {
    /// Electrical power in watts.
    ///
    /// The base power unit of the framework; server draws, UPS capacities and
    /// DG ratings are all expressed in watts internally.
    ///
    /// ```
    /// use dcb_units::{Watts, Kilowatts};
    /// let rack = Watts::new(8_000.0);
    /// assert_eq!(Kilowatts::from(rack).value(), 8.0);
    /// ```
    Watts, "W"
}

quantity! {
    /// Electrical power in kilowatts, the unit the paper's cost model uses.
    ///
    /// ```
    /// use dcb_units::Kilowatts;
    /// let dc = Kilowatts::from_megawatts(10.0);
    /// assert_eq!(dc.value(), 10_000.0);
    /// ```
    Kilowatts, "kW"
}

impl Watts {
    /// Converts to kilowatts.
    #[must_use]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.value() / 1000.0)
    }

    /// Energy delivered when drawing this power for `duration`.
    #[must_use]
    pub fn for_duration(self, duration: Seconds) -> WattHours {
        WattHours::new(self.value() * duration.to_hours())
    }
}

impl Kilowatts {
    /// Creates a power quantity from megawatts.
    #[must_use]
    pub fn from_megawatts(mw: f64) -> Self {
        Self::new(mw * 1000.0)
    }

    /// Converts to watts.
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.value() * 1000.0)
    }

    /// Converts to megawatts.
    #[must_use]
    pub fn to_megawatts(self) -> f64 {
        self.value() / 1000.0
    }
}

impl From<Kilowatts> for Watts {
    fn from(kw: Kilowatts) -> Self {
        kw.to_watts()
    }
}

impl From<Watts> for Kilowatts {
    fn from(w: Watts) -> Self {
        w.to_kilowatts()
    }
}

/// Power sustained over time yields energy.
impl core::ops::Mul<Seconds> for Watts {
    type Output = WattHours;
    fn mul(self, rhs: Seconds) -> WattHours {
        self.for_duration(rhs)
    }
}

/// Power sustained over time yields energy (commutative form).
impl core::ops::Mul<Watts> for Seconds {
    type Output = WattHours;
    fn mul(self, rhs: Watts) -> WattHours {
        rhs.for_duration(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn watt_kilowatt_round_trip() {
        let w = Watts::new(2_500.0);
        assert_eq!(Watts::from(Kilowatts::from(w)), w);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(250.0) * Seconds::from_minutes(30.0);
        assert!((e.value() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_unit_suffix() {
        assert_eq!(format!("{:.1}", Watts::new(80.0)), "80.0 W");
        assert_eq!(format!("{:.2}", Kilowatts::new(1.5)), "1.50 kW");
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_rejected() {
        let _ = Watts::new(f64::NAN);
    }

    proptest! {
        #[test]
        fn conversion_round_trips(v in -1e9f64..1e9) {
            let w = Watts::new(v);
            let back = Watts::from(Kilowatts::from(w));
            prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
        }

        #[test]
        fn energy_scales_linearly_with_time(p in 0.0f64..1e6, t in 0.0f64..1e6) {
            let one = Watts::new(p) * Seconds::new(t);
            let two = Watts::new(p) * Seconds::new(2.0 * t);
            prop_assert!((two.value() - 2.0 * one.value()).abs() < 1e-6 * (1.0 + one.value().abs()));
        }
    }
}
