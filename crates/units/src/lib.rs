//! Typed physical and economic quantities used throughout `dcbackup`.
//!
//! Every quantity in the backup-power provisioning framework — power draw,
//! battery energy, outage durations, capital cost — is a thin newtype over
//! `f64` so that the compiler keeps watts, watt-hours, seconds and dollars
//! from being mixed up (C-NEWTYPE). The types implement the arithmetic that
//! is physically meaningful and nothing more: you can multiply [`Watts`] by
//! [`Seconds`] and get [`WattHours`], but you cannot add [`Watts`] to
//! [`Dollars`].
//!
//! # Examples
//!
//! ```
//! use dcb_units::{Watts, Seconds, WattHours};
//!
//! let server_draw = Watts::new(250.0);
//! let outage = Seconds::from_minutes(30.0);
//! let energy: WattHours = server_draw * outage;
//! assert!((energy.value() - 125.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod quantity;

pub mod contracts;

mod data;
mod energy;
mod fraction;
mod money;
mod power;
mod time;

pub use data::{Gigabytes, MegabytesPerSecond};
pub use energy::{KilowattHours, WattHours};
pub use fraction::Fraction;
pub use money::{Dollars, DollarsPerKwMin, DollarsPerKwYear, DollarsPerKwhYear, DollarsPerYear};
pub use power::{Kilowatts, Watts};
pub use time::{Minutes, Seconds, Years};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_energy_identity() {
        // 1 kW for one hour is exactly 1 kWh.
        let e = Watts::new(1000.0) * Seconds::from_hours(1.0);
        assert!((KilowattHours::from(e).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_rate_times_capacity() {
        // Table 1 of the paper: $83.3/kW/yr at 10 MW is $0.833M/yr.
        let dg = DollarsPerKwYear::new(83.3);
        let cost = dg * Kilowatts::new(10_000.0);
        assert!((cost.value() - 833_000.0).abs() < 1e-6);
    }

    #[test]
    fn quantities_sum_over_iterators() {
        let total: Watts = [10.0, 20.0, 30.0].map(Watts::new).into_iter().sum();
        assert_eq!(total, Watts::new(60.0));
        let by_ref: Seconds = [Seconds::new(1.0), Seconds::new(2.0)].iter().sum();
        assert_eq!(by_ref, Seconds::new(3.0));
    }

    #[test]
    fn like_quantity_division_is_dimensionless() {
        let ratio: f64 = Watts::new(125.0) / Watts::new(250.0);
        assert_eq!(ratio, 0.5);
    }

    #[test]
    fn clamp_min_max_behave() {
        let w = Watts::new(300.0);
        assert_eq!(w.clamp(Watts::ZERO, Watts::new(250.0)), Watts::new(250.0));
        assert_eq!(w.min(Watts::new(100.0)), Watts::new(100.0));
        assert_eq!(w.max(Watts::new(400.0)), Watts::new(400.0));
        assert_eq!((-w).abs(), w);
    }

    #[test]
    fn fraction_lerp_interpolates() {
        let a = Fraction::new(0.2);
        let b = Fraction::new(0.8);
        assert_eq!(a.lerp(b, Fraction::HALF), Fraction::new(0.5));
        assert_eq!(a.lerp(b, Fraction::ZERO), a);
        assert_eq!(a.lerp(b, Fraction::ONE), b);
    }
}
