//! Runtime model contracts: debug-assert invariants for the physical and
//! economic models.
//!
//! The paper's results are pure model outputs — capital-cost,
//! performability, and TCO numbers — so a silent conservation or bounds
//! violation (a battery delivering more energy than it holds, a probability
//! leaving `[0, 1]`, a negative cost) would corrupt every figure without
//! failing a single test. The model crates thread [`contract!`] checks
//! through their hot paths:
//!
//! * `dcb-battery` — energy conservation and state-of-charge bounds on
//!   every draw;
//! * `dcb-power` — diesel ramp bounds and non-negative UPS draws;
//! * `dcb-core` — probability bounds in the availability analysis and
//!   non-negativity / normalizer idempotence in the cost model.
//!
//! Checks are active in debug builds (like `debug_assert!`), and can be
//! forced on in release builds either by setting the `DCB_CONTRACTS`
//! environment variable to `1`/`true` or programmatically via
//! [`force_enable`] — `dcb-audit sweep` does the latter so CI can replay
//! the paper's sweeps under full contract checking at release speed.
//!
//! ```
//! use dcb_units::contract;
//!
//! let spent = 1.0_f64;
//! let budget = 2.0_f64;
//! contract!(spent <= budget, "spent {spent} exceeds budget {budget}");
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

static FORCED: AtomicBool = AtomicBool::new(false);
static CHECKED: AtomicU64 = AtomicU64::new(0);

/// Whether the `DCB_CONTRACTS` environment variable requests checking
/// (read once per process).
fn env_requested() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DCB_CONTRACTS")
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false)
    })
}

/// Whether contract checks run: always in debug builds, and in release
/// builds when forced ([`force_enable`]) or requested via `DCB_CONTRACTS`.
#[must_use]
pub fn enabled() -> bool {
    cfg!(debug_assertions) || FORCED.load(Ordering::Relaxed) || env_requested()
}

/// Turns contract checking on for the rest of the process, regardless of
/// build profile. Used by `dcb-audit sweep` to replay the paper's grids
/// under checking in a release build.
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// Records one evaluated contract. Called by the [`contract!`] macro; not
/// meant for direct use.
#[doc(hidden)]
pub fn note_check() {
    CHECKED.fetch_add(1, Ordering::Relaxed);
}

/// Number of contract conditions evaluated by this process so far. A sweep
/// that reports thousands of checks and no panic demonstrates the
/// invariants actually ran, not merely that nothing crashed.
#[must_use]
pub fn checked_count() -> u64 {
    CHECKED.load(Ordering::Relaxed)
}

/// Asserts a model invariant when contract checking is [`enabled`].
///
/// Behaves like `debug_assert!` in ordinary builds but can also run in
/// release builds (see the [module docs](self)). A violated contract
/// panics with the formatted message: contracts guard *model correctness*,
/// so continuing past a violation would only launder a corrupt number into
/// a result table.
#[macro_export]
macro_rules! contract {
    ($cond:expr, $($arg:tt)+) => {
        if $crate::contracts::enabled() {
            $crate::contracts::note_check();
            assert!($cond, $($arg)+);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_builds_check_by_default() {
        // The test profile compiles with debug assertions on.
        assert!(enabled());
    }

    #[test]
    fn checks_are_counted() {
        let before = checked_count();
        contract!(1 + 1 == 2, "arithmetic broke");
        contract!(true, "tautology");
        assert!(checked_count() >= before + 2);
    }

    #[test]
    #[should_panic(expected = "spent 3 exceeds budget 2")]
    fn violations_panic_with_message() {
        let (spent, budget) = (3, 2);
        contract!(spent <= budget, "spent {spent} exceeds budget {budget}");
    }

    #[test]
    fn force_enable_is_sticky() {
        force_enable();
        assert!(enabled());
    }
}
