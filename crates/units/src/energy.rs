//! Electrical energy quantities.

use crate::power::Watts;
use crate::time::Seconds;

quantity! {
    /// Electrical energy in watt-hours.
    ///
    /// Battery state-of-charge and per-outage energy budgets are tracked in
    /// watt-hours.
    ///
    /// ```
    /// use dcb_units::{WattHours, Watts, Seconds};
    /// let budget = WattHours::new(500.0);
    /// let runtime = budget.runtime_at(Watts::new(1000.0));
    /// assert_eq!(runtime, Seconds::from_minutes(30.0));
    /// ```
    WattHours, "Wh"
}

quantity! {
    /// Electrical energy in kilowatt-hours, the unit of the paper's UPS
    /// energy cost (`$50/kWh/year`, Table 1).
    ///
    /// ```
    /// use dcb_units::{KilowattHours, WattHours};
    /// assert_eq!(WattHours::from(KilowattHours::new(1.5)).value(), 1500.0);
    /// ```
    KilowattHours, "kWh"
}

/// Joules per watt-hour (1 Wh = 3600 J exactly).
const JOULES_PER_WATT_HOUR: f64 = 3600.0;

impl WattHours {
    /// Converts to kilowatt-hours.
    #[must_use]
    pub fn to_kilowatt_hours(self) -> KilowattHours {
        KilowattHours::new(self.value() / 1000.0)
    }

    /// Creates an energy from joules (1 Wh = 3600 J).
    #[must_use]
    pub fn from_joules(joules: f64) -> Self {
        Self::new(joules / JOULES_PER_WATT_HOUR)
    }

    /// Converts to joules (1 Wh = 3600 J).
    #[must_use]
    pub fn to_joules(self) -> f64 {
        self.value() * JOULES_PER_WATT_HOUR
    }

    /// How long this much energy lasts at a constant `load`, assuming an
    /// ideal (linear) store. Nonlinear battery behaviour lives in
    /// `dcb-battery`; this is the ideal-capacity baseline.
    ///
    /// Returns an effectively infinite duration when the load is zero or
    /// negative.
    #[must_use]
    pub fn runtime_at(self, load: Watts) -> Seconds {
        if load.value() <= 0.0 {
            Seconds::new(f64::INFINITY)
        } else {
            Seconds::from_hours(self.value() / load.value())
        }
    }
}

impl KilowattHours {
    /// Converts to watt-hours.
    #[must_use]
    pub fn to_watt_hours(self) -> WattHours {
        WattHours::new(self.value() * 1000.0)
    }
}

impl From<KilowattHours> for WattHours {
    fn from(kwh: KilowattHours) -> Self {
        kwh.to_watt_hours()
    }
}

impl From<WattHours> for KilowattHours {
    fn from(wh: WattHours) -> Self {
        wh.to_kilowatt_hours()
    }
}

/// Energy divided by power yields the time it lasts (ideal store).
impl core::ops::Div<Watts> for WattHours {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        self.runtime_at(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn runtime_at_zero_load_is_infinite() {
        assert!(WattHours::new(100.0)
            .runtime_at(Watts::ZERO)
            .value()
            .is_infinite());
    }

    #[test]
    fn energy_power_time_closure() {
        // E / P * P == E
        let e = WattHours::new(660.0);
        let p = Watts::new(4000.0);
        let t = e / p;
        let back = p * t;
        assert!((back.value() - e.value()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn kwh_round_trip(v in -1e9f64..1e9) {
            let e = KilowattHours::new(v);
            let back = KilowattHours::from(WattHours::from(e));
            prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
        }

        #[test]
        fn runtime_monotone_in_energy(e1 in 0.0f64..1e6, extra in 0.0f64..1e6, p in 1.0f64..1e6) {
            let load = Watts::new(p);
            let t1 = WattHours::new(e1).runtime_at(load);
            let t2 = WattHours::new(e1 + extra).runtime_at(load);
            prop_assert!(t2 >= t1);
        }
    }
}
