//! Dimensionless fractions clamped to `[0, 1]`.

use core::fmt;

/// A dimensionless value guaranteed to lie in `[0, 1]`.
///
/// Used for normalized performance, load levels, capacity fractions (the
/// "0.5" in configurations like `SmallDG-SmallPUPS`, Table 3), CPU stall
/// fractions and utilization.
///
/// ```
/// use dcb_units::Fraction;
/// let half = Fraction::new(0.5);
/// assert_eq!(half.complement().value(), 0.5);
/// assert_eq!((half * half).value(), 0.25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Fraction(f64);

impl Fraction {
    /// Zero.
    pub const ZERO: Self = Self(0.0);
    /// One.
    pub const ONE: Self = Self(1.0);
    /// One half.
    pub const HALF: Self = Self(0.5);

    /// Creates a fraction, clamping into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "Fraction cannot be NaN");
        Self(value.clamp(0.0, 1.0))
    }

    /// Creates a fraction without clamping.
    ///
    /// Returns `None` if `value` is outside `[0, 1]` or NaN.
    #[must_use]
    pub fn checked(value: f64) -> Option<Self> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            None
        } else {
            Some(Self(value))
        }
    }

    /// Creates a fraction from a percentage (e.g. `25.0` → `0.25`).
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Self::new(percent / 100.0)
    }

    /// The raw value in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The value expressed as a percentage.
    #[must_use]
    pub fn to_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// `1 - self`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// The smaller of two fractions.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// The larger of two fractions.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns `true` if exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        // dcb-audit: allow(float-cmp, exact zero sentinel test)
        self.0 == 0.0
    }

    /// Total ordering over the underlying value ([`f64::total_cmp`]).
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[must_use]
    pub fn lerp(self, other: Self, t: Self) -> Self {
        Self(self.0 + (other.0 - self.0) * t.0)
    }
}

/// Product of fractions stays in `[0, 1]`.
impl core::ops::Mul for Fraction {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl core::ops::Mul<f64> for Fraction {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl core::ops::Mul<Fraction> for f64 {
    type Output = f64;
    fn mul(self, rhs: Fraction) -> f64 {
        self * rhs.0
    }
}

impl From<Fraction> for f64 {
    fn from(f: Fraction) -> f64 {
        f.0
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}%", precision, self.to_percent())
        } else {
            write!(f, "{}%", self.to_percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamping() {
        assert_eq!(Fraction::new(1.5), Fraction::ONE);
        assert_eq!(Fraction::new(-0.5), Fraction::ZERO);
    }

    #[test]
    fn checked_rejects_out_of_range() {
        assert!(Fraction::checked(1.001).is_none());
        assert!(Fraction::checked(-0.001).is_none());
        assert_eq!(Fraction::checked(0.4), Some(Fraction::new(0.4)));
    }

    #[test]
    fn percent_round_trip() {
        assert_eq!(Fraction::from_percent(25.0).to_percent(), 25.0);
    }

    proptest! {
        #[test]
        fn always_in_unit_interval(v in -10.0f64..10.0) {
            let f = Fraction::new(v);
            prop_assert!((0.0..=1.0).contains(&f.value()));
        }

        #[test]
        fn complement_involution(v in 0.0f64..=1.0) {
            let f = Fraction::new(v);
            prop_assert!((f.complement().complement().value() - v).abs() < 1e-15);
        }

        #[test]
        fn product_closed(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let p = Fraction::new(a) * Fraction::new(b);
            prop_assert!((0.0..=1.0).contains(&p.value()));
        }
    }
}
