//! Time quantities.

quantity! {
    /// A duration (or simulation timestamp) in seconds.
    ///
    /// The simulator's clock is an `f64` number of seconds; sub-second
    /// effects like the ~10 ms offline-UPS switchover and the ~30 ms power
    /// supply ride-through are representable without a separate unit.
    ///
    /// ```
    /// use dcb_units::Seconds;
    /// let outage = Seconds::from_minutes(5.0);
    /// assert_eq!(outage.value(), 300.0);
    /// assert_eq!(outage.to_minutes(), 5.0);
    /// ```
    Seconds, "s"
}

quantity! {
    /// A duration in minutes, the unit the paper reports outage lengths and
    /// UPS runtimes in.
    ///
    /// ```
    /// use dcb_units::{Minutes, Seconds};
    /// assert_eq!(Seconds::from(Minutes::new(2.0)).value(), 120.0);
    /// ```
    Minutes, "min"
}

quantity! {
    /// A duration in years, used for amortization and yearly outage budgets.
    ///
    /// ```
    /// use dcb_units::Years;
    /// assert_eq!(Years::new(12.0).value(), 12.0);
    /// ```
    Years, "yr"
}

impl Seconds {
    /// Creates a duration from a number of minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Creates a duration from a number of hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * 3600.0)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1000.0)
    }

    /// The duration expressed in minutes.
    #[must_use]
    pub fn to_minutes(self) -> f64 {
        self.value() / 60.0
    }

    /// The duration expressed in hours.
    #[must_use]
    pub fn to_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// Returns `true` for a finite duration.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.value().is_finite()
    }
}

impl Minutes {
    /// Converts to seconds.
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::from_minutes(self.value())
    }
}

impl Years {
    /// Minutes in a (non-leap) year, used by the TCO revenue-loss model.
    pub const MINUTES_PER_YEAR: f64 = 365.0 * 24.0 * 60.0;

    /// Converts to minutes.
    #[must_use]
    pub fn to_minutes(self) -> f64 {
        self.value() * Self::MINUTES_PER_YEAR
    }
}

impl From<Minutes> for Seconds {
    fn from(m: Minutes) -> Self {
        m.to_seconds()
    }
}

impl From<Seconds> for Minutes {
    fn from(s: Seconds) -> Self {
        Minutes::new(s.to_minutes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn minute_conversions() {
        assert_eq!(Seconds::from_minutes(2.0).value(), 120.0);
        assert_eq!(Seconds::from_hours(1.0).to_minutes(), 60.0);
        assert_eq!(Seconds::from_millis(10.0).value(), 0.01);
    }

    #[test]
    fn year_minutes() {
        assert_eq!(Years::new(1.0).to_minutes(), 525_600.0);
    }

    proptest! {
        #[test]
        fn seconds_minutes_round_trip(v in 0.0f64..1e9) {
            let s = Seconds::new(v);
            let back = Seconds::from(Minutes::from(s));
            prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12 + 1e-9);
        }
    }
}
