//! Internal macro for defining `f64`-backed quantity newtypes.

/// Defines a quantity newtype with the arithmetic shared by all quantities:
/// addition and subtraction with itself, scaling by `f64`, division by
/// itself (yielding a dimensionless `f64`), ordering, `Display` with a unit
/// suffix, and serde support.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN; quantities must always be ordered.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                Self(value)
            }

            /// Creates a quantity in `const` context from a literal value.
            ///
            /// Unlike [`Self::new`] this cannot reject NaN, so reserve it
            /// for compile-time constants.
            #[must_use]
            pub const fn literal(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw numeric value in the quantity's base unit.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity to `[lo, hi]`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                // dcb-audit: allow(float-cmp, exact zero sentinel test)
                self.0 == 0.0
            }

            /// Total ordering over the underlying value
            /// ([`f64::total_cmp`]); lets callers sort or take extrema
            /// without a fallible `partial_cmp` unwrap.
            #[must_use]
            pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// Returns `true` if the value is strictly positive.
            #[must_use]
            pub fn is_positive(self) -> bool {
                self.0 > 0.0
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}
