//! Data size and bandwidth quantities for application state and migration.

use crate::time::Seconds;

quantity! {
    /// A data size in gigabytes (decimal, 10⁹ bytes).
    ///
    /// Memory footprints of the paper's workloads (Table 7: Web-search 40 GB,
    /// Specjbb 18 GB, Memcached 20 GB, SpecCPU 16 GB) and dirty-state sizes
    /// are expressed in gigabytes.
    ///
    /// ```
    /// use dcb_units::{Gigabytes, MegabytesPerSecond};
    /// let state = Gigabytes::new(18.0);
    /// let disk = MegabytesPerSecond::new(80.0);
    /// assert_eq!(state.transfer_time(disk).value(), 225.0);
    /// ```
    Gigabytes, "GB"
}

quantity! {
    /// A transfer bandwidth in megabytes per second.
    ///
    /// Models disk write/read bandwidth (hibernation) and effective network
    /// bandwidth (migration over 1 Gbps Ethernet).
    ///
    /// ```
    /// use dcb_units::MegabytesPerSecond;
    /// let gige = MegabytesPerSecond::from_gigabits_per_second(1.0);
    /// assert_eq!(gige.value(), 125.0);
    /// ```
    MegabytesPerSecond, "MB/s"
}

impl Gigabytes {
    /// The size in megabytes.
    #[must_use]
    pub fn to_megabytes(self) -> f64 {
        self.value() * 1000.0
    }

    /// Time to move this much data at `bandwidth`.
    ///
    /// Returns an infinite duration for zero or negative bandwidth: the
    /// transfer never completes.
    #[must_use]
    pub fn transfer_time(self, bandwidth: MegabytesPerSecond) -> Seconds {
        if bandwidth.value() <= 0.0 {
            Seconds::new(f64::INFINITY)
        } else {
            Seconds::new(self.to_megabytes() / bandwidth.value())
        }
    }
}

impl MegabytesPerSecond {
    /// Converts a link rate in gigabits per second to an ideal byte
    /// bandwidth (no protocol overhead).
    #[must_use]
    pub fn from_gigabits_per_second(gbps: f64) -> Self {
        Self::new(gbps * 1000.0 / 8.0)
    }

    /// Data moved in `duration` at this bandwidth.
    #[must_use]
    pub fn transferred_in(self, duration: Seconds) -> Gigabytes {
        Gigabytes::new(self.value() * duration.value() / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_time_zero_bandwidth_is_infinite() {
        assert!(Gigabytes::new(1.0)
            .transfer_time(MegabytesPerSecond::ZERO)
            .value()
            .is_infinite());
    }

    #[test]
    fn gige_is_125_mbps() {
        assert_eq!(
            MegabytesPerSecond::from_gigabits_per_second(1.0).value(),
            125.0
        );
    }

    proptest! {
        #[test]
        fn transfer_round_trip(gb in 0.0f64..1e4, bw in 1.0f64..1e4) {
            let size = Gigabytes::new(gb);
            let bandwidth = MegabytesPerSecond::new(bw);
            let t = size.transfer_time(bandwidth);
            let back = bandwidth.transferred_in(t);
            prop_assert!((back.value() - gb).abs() <= gb.abs() * 1e-12 + 1e-9);
        }

        #[test]
        fn transfer_time_monotone_in_size(a in 0.0f64..1e4, extra in 0.0f64..1e4, bw in 1.0f64..1e4) {
            let bandwidth = MegabytesPerSecond::new(bw);
            prop_assert!(
                Gigabytes::new(a + extra).transfer_time(bandwidth)
                    >= Gigabytes::new(a).transfer_time(bandwidth)
            );
        }
    }
}
