//! Economic quantities for the backup infrastructure cost model.

use crate::energy::KilowattHours;
use crate::power::Kilowatts;
use crate::time::Years;

quantity! {
    /// An absolute amount of money in US dollars.
    ///
    /// ```
    /// use dcb_units::Dollars;
    /// let server = Dollars::new(2_000.0);
    /// assert_eq!((server / 4.0).value(), 500.0);
    /// ```
    Dollars, "$"
}

quantity! {
    /// An amortized yearly cost in `$/year` — the unit of Equations (1) and
    /// (2) in the paper (linear depreciation of capital expenditure).
    ///
    /// ```
    /// use dcb_units::{DollarsPerYear, Years};
    /// let capex = DollarsPerYear::new(100_000.0);
    /// assert_eq!(capex.over(Years::new(2.0)).value(), 200_000.0);
    /// ```
    DollarsPerYear, "$/yr"
}

quantity! {
    /// A power-capacity cost rate in `$/kW/year`, e.g. the paper's
    /// `DGPowerCost = $83.3/kW/year` (Table 1).
    ///
    /// ```
    /// use dcb_units::{DollarsPerKwYear, Kilowatts};
    /// let rate = DollarsPerKwYear::new(50.0);
    /// assert_eq!((rate * Kilowatts::new(1_000.0)).value(), 50_000.0);
    /// ```
    DollarsPerKwYear, "$/kW/yr"
}

quantity! {
    /// An energy-capacity cost rate in `$/kWh/year`, e.g. the paper's
    /// `UPSEnergyCost = $50/kWh/year` (Table 1).
    ///
    /// ```
    /// use dcb_units::{DollarsPerKwhYear, KilowattHours};
    /// let rate = DollarsPerKwhYear::new(50.0);
    /// assert_eq!((rate * KilowattHours::new(100.0)).value(), 5_000.0);
    /// ```
    DollarsPerKwhYear, "$/kWh/yr"
}

quantity! {
    /// A per-capacity, per-minute money rate in `$/kW/min` — the unit of
    /// the paper's TCO analysis (§7): revenue lost and depreciation wasted
    /// per kW of capacity per minute of unavailability.
    ///
    /// ```
    /// use dcb_units::DollarsPerKwMin;
    /// let loss = DollarsPerKwMin::new(0.28);
    /// assert!((loss.value() - 0.28).abs() < 1e-12);
    /// ```
    DollarsPerKwMin, "$/kW/min"
}

impl DollarsPerKwMin {
    /// Yearly cost rate incurred by this per-minute loss rate over
    /// `minutes_per_year` minutes of downtime each year.
    #[must_use]
    pub fn over_minutes_per_year(self, minutes_per_year: f64) -> DollarsPerKwYear {
        DollarsPerKwYear::new(self.value() * minutes_per_year)
    }
}

impl Dollars {
    /// Amortizes a capital cost linearly over `lifetime`, following the
    /// paper's depreciation model ("We express cap-ex as amortized $/year,
    /// using a linear depreciation model", §3).
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is not strictly positive.
    #[must_use]
    pub fn amortize(self, lifetime: Years) -> DollarsPerYear {
        assert!(
            lifetime.is_positive(),
            "amortization lifetime must be positive"
        );
        DollarsPerYear::new(self.value() / lifetime.value())
    }
}

impl DollarsPerYear {
    /// Total money spent over `span` at this yearly rate.
    #[must_use]
    pub fn over(self, span: Years) -> Dollars {
        Dollars::new(self.value() * span.value())
    }
}

/// `$/kW/yr × kW = $/yr`.
impl core::ops::Mul<Kilowatts> for DollarsPerKwYear {
    type Output = DollarsPerYear;
    fn mul(self, rhs: Kilowatts) -> DollarsPerYear {
        DollarsPerYear::new(self.value() * rhs.value())
    }
}

/// `kW × $/kW/yr = $/yr` (commutative form).
impl core::ops::Mul<DollarsPerKwYear> for Kilowatts {
    type Output = DollarsPerYear;
    fn mul(self, rhs: DollarsPerKwYear) -> DollarsPerYear {
        rhs * self
    }
}

/// `$/kWh/yr × kWh = $/yr`.
impl core::ops::Mul<KilowattHours> for DollarsPerKwhYear {
    type Output = DollarsPerYear;
    fn mul(self, rhs: KilowattHours) -> DollarsPerYear {
        DollarsPerYear::new(self.value() * rhs.value())
    }
}

/// `kWh × $/kWh/yr = $/yr` (commutative form).
impl core::ops::Mul<DollarsPerKwhYear> for KilowattHours {
    type Output = DollarsPerYear;
    fn mul(self, rhs: DollarsPerKwhYear) -> DollarsPerYear {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn amortization_matches_paper_dg_lifetime() {
        // A $1M generator over the paper's 12-year DG lifetime.
        let yearly = Dollars::new(1_000_000.0).amortize(Years::new(12.0));
        assert!((yearly.value() - 83_333.333).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "lifetime must be positive")]
    fn zero_lifetime_rejected() {
        let _ = Dollars::new(1.0).amortize(Years::ZERO);
    }

    proptest! {
        #[test]
        fn rate_multiplication_commutes(rate in 0.0f64..1e4, kw in 0.0f64..1e7) {
            let a = DollarsPerKwYear::new(rate) * Kilowatts::new(kw);
            let b = Kilowatts::new(kw) * DollarsPerKwYear::new(rate);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn amortize_over_round_trip(capex in 0.0f64..1e9, yrs in 0.1f64..100.0) {
            let yearly = Dollars::new(capex).amortize(Years::new(yrs));
            let back = yearly.over(Years::new(yrs));
            prop_assert!((back.value() - capex).abs() <= capex.abs() * 1e-12 + 1e-9);
        }
    }
}
