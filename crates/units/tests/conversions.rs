//! Unit-conversion integration tests: exact anchor points and
//! property-tested round trips across the power, energy, and time ladders,
//! plus ordering and arithmetic-closure properties of the quantity
//! newtypes.

use dcb_units::{KilowattHours, Kilowatts, Minutes, Seconds, WattHours, Watts, Years};
use proptest::prelude::*;

#[test]
fn power_ladder_anchor_points() {
    // W ↔ kW ↔ MW with exactly representable factors of 1000.
    assert_eq!(Watts::new(1_000.0).to_kilowatts(), Kilowatts::new(1.0));
    assert_eq!(Kilowatts::new(1.0).to_watts(), Watts::new(1_000.0));
    assert_eq!(Kilowatts::from_megawatts(1.0), Kilowatts::new(1_000.0));
    assert_eq!(Kilowatts::new(2_500.0).to_megawatts(), 2.5);
    assert_eq!(
        Kilowatts::from_megawatts(10.0).to_watts(),
        Watts::new(10_000_000.0)
    );
}

#[test]
fn energy_ladder_anchor_points() {
    // J ↔ Wh ↔ kWh: 1 Wh = 3600 J exactly, 1 kWh = 1000 Wh exactly.
    assert_eq!(WattHours::from_joules(3_600.0), WattHours::new(1.0));
    assert_eq!(WattHours::new(1.0).to_joules(), 3_600.0);
    assert_eq!(
        KilowattHours::new(1.0).to_watt_hours(),
        WattHours::new(1_000.0)
    );
    assert_eq!(
        WattHours::new(500.0).to_kilowatt_hours(),
        KilowattHours::new(0.5)
    );
    assert_eq!(KilowattHours::new(1.0).to_watt_hours().to_joules(), 3.6e6);
}

#[test]
fn time_ladder_anchor_points() {
    // s ↔ min ↔ h, plus the year-to-minute constant the TCO model uses.
    assert_eq!(Seconds::from_minutes(1.0), Seconds::new(60.0));
    assert_eq!(Seconds::from_hours(1.0), Seconds::new(3_600.0));
    assert_eq!(Seconds::from_hours(1.5).to_minutes(), 90.0);
    assert_eq!(Seconds::new(7_200.0).to_hours(), 2.0);
    assert_eq!(Minutes::new(2.0).to_seconds(), Seconds::new(120.0));
    assert_eq!(Years::new(1.0).to_minutes(), 525_600.0);
    assert_eq!(Seconds::from_millis(250.0), Seconds::new(0.25));
}

#[test]
fn power_time_energy_dimensional_consistency() {
    // 250 W for 30 minutes is 125 Wh, both ways round.
    let load = Watts::new(250.0);
    let half_hour = Seconds::from_minutes(30.0);
    assert_eq!(load * half_hour, half_hour * load);
    assert!(((load * half_hour).value() - 125.0).abs() < 1e-12);
    // Energy over power recovers the duration.
    let runtime = WattHours::new(125.0) / load;
    assert!((runtime.value() - half_hour.value()).abs() < 1e-9);
}

#[test]
fn ordering_is_consistent_between_partial_and_total() {
    let mut durations = vec![
        Seconds::from_hours(1.0),
        Seconds::new(1.0),
        Seconds::from_minutes(1.0),
        Seconds::ZERO,
    ];
    durations.sort_by(Seconds::total_cmp);
    assert_eq!(
        durations,
        vec![
            Seconds::ZERO,
            Seconds::new(1.0),
            Seconds::from_minutes(1.0),
            Seconds::from_hours(1.0),
        ]
    );
    // PartialOrd agrees with total_cmp on finite values.
    for pair in durations.windows(2) {
        assert!(pair[0] <= pair[1]);
        assert_ne!(pair[0].total_cmp(&pair[1]), std::cmp::Ordering::Greater);
    }
    // min/max/clamp respect the same order.
    let lo = Seconds::new(10.0);
    let hi = Seconds::new(20.0);
    assert_eq!(lo.max(hi), hi);
    assert_eq!(lo.min(hi), lo);
    assert_eq!(Seconds::new(25.0).clamp(lo, hi), hi);
}

proptest! {
    #[test]
    fn watts_megawatt_round_trip(v in -1e9f64..1e9) {
        let w = Watts::new(v);
        let back = Kilowatts::from_megawatts(w.to_kilowatts().to_megawatts()).to_watts();
        prop_assert!((back.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn joules_kwh_round_trip(v in -1e9f64..1e9) {
        let e = WattHours::new(v);
        let via_joules = WattHours::from_joules(e.to_joules());
        prop_assert!((via_joules.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
        let via_kwh = e.to_kilowatt_hours().to_watt_hours();
        prop_assert!((via_kwh.value() - v).abs() <= v.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn seconds_hours_minutes_round_trip(v in -1e9f64..1e9) {
        let s = Seconds::new(v);
        let via_minutes = Seconds::from_minutes(s.to_minutes());
        let via_hours = Seconds::from_hours(s.to_hours());
        prop_assert!((via_minutes.value() - v).abs() <= v.abs() * 1e-12 + 1e-9);
        prop_assert!((via_hours.value() - v).abs() <= v.abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn addition_closure_and_commutativity(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let x = Watts::new(a);
        let y = Watts::new(b);
        // Same-unit arithmetic stays in the unit and behaves like f64.
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y).value(), a + b);
        prop_assert_eq!((x - y).value(), a - b);
        prop_assert_eq!((-x).value(), -a);
    }

    #[test]
    fn scaling_closure(a in -1e12f64..1e12, k in -1e3f64..1e3) {
        let x = WattHours::new(a);
        prop_assert_eq!((x * k).value(), a * k);
        if k != 0.0 {
            let scaled = (x / k).value();
            prop_assert_eq!(scaled, a / k);
        }
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless(a in -1e12f64..1e12, b in 1e-3f64..1e12) {
        // Div<Self> drops the unit and matches the raw-float ratio.
        let ratio = Seconds::new(a) / Seconds::new(b);
        prop_assert_eq!(ratio, a / b);
    }

    #[test]
    fn sum_matches_fold(a in -1e9f64..1e9, b in -1e9f64..1e9, c in -1e9f64..1e9) {
        let values = [a, b, c];
        let total: Watts = values.iter().map(|&v| Watts::new(v)).sum();
        let folded = values.iter().sum::<f64>();
        prop_assert!((total.value() - folded).abs() <= folded.abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn ordering_matches_f64(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        prop_assert_eq!(Watts::new(a) < Watts::new(b), a < b);
        prop_assert_eq!(
            Watts::new(a).total_cmp(&Watts::new(b)),
            a.total_cmp(&b)
        );
    }
}
