//! Seeded generation of synthetic yearly outage traces.

use crate::{DurationDistribution, FrequencyDistribution};
use dcb_units::Seconds;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A single utility outage: when it starts and how long it lasts.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Outage {
    /// Start time, measured from the beginning of the trace.
    pub start: Seconds,
    /// Total outage duration.
    pub duration: Seconds,
}

impl Outage {
    /// Convenience constructor from a duration in minutes, starting at t=0.
    /// Most evaluations study a single outage of a given length.
    #[must_use]
    pub fn of_minutes(minutes: f64) -> Self {
        Self {
            start: Seconds::ZERO,
            duration: Seconds::from_minutes(minutes),
        }
    }

    /// The instant utility power returns.
    #[must_use]
    pub fn end(&self) -> Seconds {
        self.start + self.duration
    }
}

/// A year's worth of outages, sorted by start time and non-overlapping.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct OutageTrace {
    outages: Vec<Outage>,
}

impl OutageTrace {
    /// Builds a trace, sorting by start time.
    ///
    /// # Panics
    ///
    /// Panics if any two outages overlap after sorting.
    #[must_use]
    pub fn new(mut outages: Vec<Outage>) -> Self {
        outages.sort_by(|a, b| a.start.total_cmp(&b.start));
        for pair in outages.windows(2) {
            assert!(
                pair[0].end() <= pair[1].start,
                "outages must not overlap: {:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
        Self { outages }
    }

    /// The outages in start order.
    #[must_use]
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Number of outages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// Whether the trace has no outages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Total time without utility power.
    #[must_use]
    pub fn total_outage_time(&self) -> Seconds {
        self.outages.iter().map(|o| o.duration).sum()
    }

    /// The longest single outage, if any.
    #[must_use]
    pub fn longest(&self) -> Option<Outage> {
        self.outages
            .iter()
            .copied()
            .max_by(|a, b| a.duration.total_cmp(&b.duration))
    }
}

impl FromIterator<Outage> for OutageTrace {
    fn from_iter<I: IntoIterator<Item = Outage>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// A deterministic, seeded sampler producing yearly [`OutageTrace`]s whose
/// frequency and duration statistics follow Figure 1.
///
/// ```
/// use dcb_outage::OutageSampler;
///
/// let a = OutageSampler::seeded(7).sample_year();
/// let b = OutageSampler::seeded(7).sample_year();
/// assert_eq!(a, b); // same seed, same trace
/// ```
#[derive(Debug)]
pub struct OutageSampler {
    rng: StdRng,
    frequency: FrequencyDistribution,
    duration: DurationDistribution,
}

impl OutageSampler {
    /// A sampler over the paper's US-business distributions.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self::with_distributions(
            seed,
            FrequencyDistribution::us_business(),
            DurationDistribution::us_business(),
        )
    }

    /// A sampler over custom distributions.
    #[must_use]
    pub fn with_distributions(
        seed: u64,
        frequency: FrequencyDistribution,
        duration: DurationDistribution,
    ) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            frequency,
            duration,
        }
    }

    /// Samples one outage duration.
    pub fn sample_duration(&mut self) -> Seconds {
        let u: f64 = self.rng.random();
        self.duration.quantile(u)
    }

    /// Samples a full year: an outage count from the frequency distribution
    /// and that many outages placed uniformly (without overlap) through the
    /// year, each with a sampled duration.
    pub fn sample_year(&mut self) -> OutageTrace {
        let u: f64 = self.rng.random();
        let v: f64 = self.rng.random();
        let count = self.frequency.quantile(u, v);
        let year = Seconds::from_hours(365.0 * 24.0);
        let mut outages = Vec::with_capacity(count as usize);
        // Place outages in disjoint slots: divide the year into `count`
        // equal windows and put one outage at a random offset in each, which
        // guarantees no overlap for realistic durations.
        for i in 0..count {
            let window = year / f64::from(count.max(1));
            let duration = self.sample_duration();
            let slack = (window - duration).max(Seconds::ZERO);
            let offset: f64 = self.rng.random();
            let start = window * f64::from(i) + slack * offset;
            let duration = duration.min(window * 0.95);
            outages.push(Outage { start, duration });
        }
        OutageTrace::new(outages)
    }

    /// Samples `years` yearly traces.
    pub fn sample_years(&mut self, years: usize) -> Vec<OutageTrace> {
        (0..years).map(|_| self.sample_year()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = OutageSampler::seeded(123);
        let mut b = OutageSampler::seeded(123);
        assert_eq!(a.sample_year(), b.sample_year());
        assert_eq!(a.sample_duration(), b.sample_duration());
    }

    #[test]
    fn different_seeds_differ() {
        let a = OutageSampler::seeded(1).sample_years(5);
        let b = OutageSampler::seeded(2).sample_years(5);
        assert_ne!(a, b);
    }

    #[test]
    fn yearly_trace_never_overlaps() {
        let mut s = OutageSampler::seeded(99);
        for trace in s.sample_years(200) {
            for pair in trace.outages().windows(2) {
                assert!(pair[0].end() <= pair[1].start);
            }
        }
    }

    #[test]
    fn long_run_duration_statistics_match_figure1() {
        let mut s = OutageSampler::seeded(7);
        let mut total = 0usize;
        let mut within_5min = 0usize;
        for _ in 0..20_000 {
            let d = s.sample_duration();
            total += 1;
            if d <= Seconds::from_minutes(5.0) {
                within_5min += 1;
            }
        }
        let frac = within_5min as f64 / total as f64;
        // Figure 1(b): 58% of outages last <= 5 minutes.
        assert!((frac - 0.58).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn long_run_frequency_statistics_match_figure1() {
        let mut s = OutageSampler::seeded(11);
        let traces = s.sample_years(20_000);
        let none = traces.iter().filter(|t| t.is_empty()).count() as f64 / traces.len() as f64;
        // Figure 1(a): 17% of businesses see no outage in a year.
        assert!((none - 0.17).abs() < 0.02, "got {none}");
    }

    #[test]
    fn trace_aggregates() {
        let trace = OutageTrace::new(vec![
            Outage {
                start: Seconds::new(100.0),
                duration: Seconds::new(50.0),
            },
            Outage {
                start: Seconds::new(500.0),
                duration: Seconds::new(200.0),
            },
        ]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.total_outage_time(), Seconds::new(250.0));
        assert_eq!(trace.longest().unwrap().duration, Seconds::new(200.0));
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlap_rejected() {
        let _ = OutageTrace::new(vec![
            Outage {
                start: Seconds::new(0.0),
                duration: Seconds::new(100.0),
            },
            Outage {
                start: Seconds::new(50.0),
                duration: Seconds::new(10.0),
            },
        ]);
    }
}
