//! Utility power outage statistics, sampling, and online duration prediction.
//!
//! The paper's motivation (§1, Figure 1) rests on the empirical shape of US
//! utility outages: 87 % of businesses see six or fewer outages a year, and
//! over 58 % of outages last five minutes or less, while multi-hour outages
//! are rare. This crate encodes those published distributions, provides a
//! seeded sampler that generates synthetic yearly outage traces with that
//! shape, and implements the online outage-duration predictor sketched in
//! §7 ("an online Markov chain based transition matrix of different
//! duration") that the adaptive controller in `dcb-core` uses to decide when
//! to escalate from throttling to sleep or hibernation.
//!
//! # Examples
//!
//! ```
//! use dcb_outage::{DurationDistribution, OutageSampler};
//! use dcb_units::Seconds;
//!
//! let dist = DurationDistribution::us_business();
//! // A majority of outages end within 5 minutes.
//! assert!(dist.probability_within(Seconds::from_minutes(5.0)) > 0.5);
//!
//! let mut sampler = OutageSampler::seeded(42);
//! let year = sampler.sample_year();
//! for outage in year.outages() {
//!     assert!(outage.duration.value() > 0.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod distribution;
mod predictor;
mod sampler;
mod weibull;

pub use bucket::DurationBucket;
pub use distribution::{DurationDistribution, FrequencyDistribution};
pub use predictor::DurationPredictor;
pub use sampler::{Outage, OutageSampler, OutageTrace};
pub use weibull::WeibullDuration;
