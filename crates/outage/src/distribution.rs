//! The empirical outage distributions of the paper's Figure 1.

use crate::DurationBucket;
use dcb_units::Seconds;

/// A bucketed probability distribution over outage durations.
///
/// [`DurationDistribution::us_business`] encodes Figure 1(b) — the duration
/// histogram for US business power outages (EPRI survey data the paper
/// cites): 31 % under a minute, 27 % in 1–5 min, 14 % in 5–30 min, 17 % in
/// 30–120 min, 6 % in 120–240 min and 5 % beyond 240 min.
///
/// Within a bucket the distribution is treated as uniform (the open tail is
/// capped at [`DurationBucket::OPEN_END_CAP_MINUTES`]), which is enough to
/// interpolate survival probabilities at arbitrary durations.
///
/// ```
/// use dcb_outage::DurationDistribution;
/// use dcb_units::Seconds;
///
/// let d = DurationDistribution::us_business();
/// // The paper: "a large majority (over 58%) of these outages are shorter
/// // than 5 minutes".
/// assert!(d.probability_within(Seconds::from_minutes(5.0)) >= 0.58);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DurationDistribution {
    buckets: Vec<(DurationBucket, f64)>,
}

impl DurationDistribution {
    /// Builds a distribution from `(bucket, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are negative, don't sum to 1 (±1e-6), buckets
    /// are empty, not contiguous, or not sorted.
    #[must_use]
    pub fn new(buckets: Vec<(DurationBucket, f64)>) -> Self {
        assert!(
            !buckets.is_empty(),
            "distribution needs at least one bucket"
        );
        let total: f64 = buckets.iter().map(|(_, p)| *p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "bucket probabilities must sum to 1, got {total}"
        );
        for (_, p) in &buckets {
            assert!(*p >= 0.0, "probabilities must be non-negative");
        }
        for pair in buckets.windows(2) {
            assert_eq!(
                pair[0].0.hi(),
                pair[1].0.lo(),
                "buckets must be contiguous and sorted"
            );
        }
        Self { buckets }
    }

    /// Figure 1(b): the duration distribution of US business power outages.
    #[must_use]
    pub fn us_business() -> Self {
        Self::new(vec![
            (DurationBucket::new_minutes(0.0, 1.0), 0.31),
            (DurationBucket::new_minutes(1.0, 5.0), 0.27),
            (DurationBucket::new_minutes(5.0, 30.0), 0.14),
            (DurationBucket::new_minutes(30.0, 120.0), 0.17),
            (DurationBucket::new_minutes(120.0, 240.0), 0.06),
            (DurationBucket::open_ended_minutes(240.0), 0.05),
        ])
    }

    /// The buckets and their probabilities.
    #[must_use]
    pub fn buckets(&self) -> &[(DurationBucket, f64)] {
        &self.buckets
    }

    /// `P(duration <= d)`, interpolating uniformly within buckets.
    #[must_use]
    pub fn probability_within(&self, d: Seconds) -> f64 {
        let mut acc = 0.0;
        for (bucket, p) in &self.buckets {
            if d >= bucket.capped_hi() {
                acc += p;
            } else if bucket.contains(d) || (d >= bucket.lo() && !bucket.hi().is_finite()) {
                let frac = (d - bucket.lo()) / bucket.width();
                acc += p * frac.clamp(0.0, 1.0);
                break;
            } else {
                break;
            }
        }
        acc.clamp(0.0, 1.0)
    }

    /// Survival function `P(duration > d)`.
    #[must_use]
    pub fn survival(&self, d: Seconds) -> f64 {
        1.0 - self.probability_within(d)
    }

    /// Conditional survival: `P(duration > elapsed + ahead | duration >
    /// elapsed)` — the probability an outage already `elapsed` long lasts at
    /// least `ahead` longer. This is the quantity the §7 online predictor
    /// feeds the adaptive controller.
    #[must_use]
    pub fn conditional_survival(&self, elapsed: Seconds, ahead: Seconds) -> f64 {
        let now = self.survival(elapsed);
        if now <= 0.0 {
            return 0.0;
        }
        (self.survival(elapsed + ahead) / now).clamp(0.0, 1.0)
    }

    /// Expected remaining duration given `elapsed` time in the outage,
    /// integrating the conditional survival numerically.
    #[must_use]
    pub fn expected_remaining(&self, elapsed: Seconds) -> Seconds {
        let cap = Seconds::from_minutes(DurationBucket::OPEN_END_CAP_MINUTES);
        if elapsed >= cap {
            return Seconds::ZERO;
        }
        // Integrate S(elapsed + t)/S(elapsed) dt via trapezoid, 1-min steps.
        let step = Seconds::from_minutes(1.0);
        let s0 = self.survival(elapsed);
        if s0 <= 0.0 {
            return Seconds::ZERO;
        }
        let mut t = Seconds::ZERO;
        let mut acc = 0.0;
        let mut prev = 1.0;
        while elapsed + t < cap {
            let next_t = t + step;
            let s = self.survival(elapsed + next_t) / s0;
            acc += (prev + s) / 2.0 * step.value();
            prev = s;
            t = next_t;
        }
        Seconds::new(acc)
    }

    /// Mean outage duration (open tail capped).
    #[must_use]
    pub fn mean(&self) -> Seconds {
        self.buckets.iter().map(|(b, p)| b.midpoint() * *p).sum()
    }

    /// Samples a duration from the distribution using uniform randoms
    /// `u_bucket, u_within ∈ [0, 1)`.
    ///
    /// Deterministic given the inputs; the RNG plumbing lives in
    /// [`crate::OutageSampler`].
    #[must_use]
    pub fn quantile(&self, u: f64) -> Seconds {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        let mut acc = 0.0;
        for (bucket, p) in &self.buckets {
            if u < acc + p {
                let frac = if *p > 0.0 { (u - acc) / p } else { 0.0 };
                return bucket.lo() + bucket.width() * frac;
            }
            acc += p;
        }
        self.buckets
            .last()
            .map(|(b, _)| b.capped_hi())
            .unwrap_or(Seconds::ZERO)
    }
}

/// The yearly outage *frequency* distribution of Figure 1(a): 17 % of
/// businesses see no outage, 40 % one or two, 30 % three to six, 13 % seven
/// or more.
///
/// ```
/// use dcb_outage::FrequencyDistribution;
/// let f = FrequencyDistribution::us_business();
/// // "6 or fewer outages are the overwhelming majority (in 87% of the
/// // businesses)".
/// assert!((f.probability_at_most(6) - 0.87).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrequencyDistribution {
    /// `(min_count, max_count, probability)` rows.
    rows: Vec<(u32, u32, f64)>,
}

impl FrequencyDistribution {
    /// Cap used for the open-ended "7+" row when sampling.
    pub const OPEN_END_CAP: u32 = 12;

    /// Builds a distribution from `(min, max, probability)` rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty, probabilities don't sum to 1 (±1e-6), or a
    /// row has `max < min`.
    #[must_use]
    pub fn new(rows: Vec<(u32, u32, f64)>) -> Self {
        assert!(!rows.is_empty(), "distribution needs at least one row");
        let total: f64 = rows.iter().map(|(_, _, p)| *p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "row probabilities must sum to 1, got {total}"
        );
        for (lo, hi, p) in &rows {
            assert!(hi >= lo, "row range inverted");
            assert!(*p >= 0.0, "probabilities must be non-negative");
        }
        Self { rows }
    }

    /// Figure 1(a): yearly outage counts for US businesses.
    #[must_use]
    pub fn us_business() -> Self {
        Self::new(vec![
            (0, 0, 0.17),
            (1, 2, 0.40),
            (3, 6, 0.30),
            (7, Self::OPEN_END_CAP, 0.13),
        ])
    }

    /// The `(min, max, probability)` rows.
    #[must_use]
    pub fn rows(&self) -> &[(u32, u32, f64)] {
        &self.rows
    }

    /// `P(count <= n)` assuming whole rows are either in or out (row
    /// granularity matches the published histogram).
    #[must_use]
    pub fn probability_at_most(&self, n: u32) -> f64 {
        self.rows
            .iter()
            .filter(|(_, hi, _)| *hi <= n)
            .map(|(_, _, p)| *p)
            .sum()
    }

    /// Maps a uniform random `u ∈ [0,1)` to an outage count, uniform within
    /// the selected row.
    #[must_use]
    pub fn quantile(&self, u: f64, u_within: f64) -> u32 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        let mut acc = 0.0;
        for (lo, hi, p) in &self.rows {
            if u < acc + p {
                let span = (hi - lo + 1) as f64;
                let offset = (u_within.clamp(0.0, 1.0 - 1e-12) * span) as u32;
                return lo + offset.min(hi - lo);
            }
            acc += p;
        }
        self.rows.last().map(|(_, hi, _)| *hi).unwrap_or(0)
    }

    /// Expected yearly outage count (row midpoints).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.rows
            .iter()
            .map(|(lo, hi, p)| (f64::from(*lo) + f64::from(*hi)) / 2.0 * p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn us_business_duration_sums_to_one() {
        let d = DurationDistribution::us_business();
        let total: f64 = d.buckets().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn survival_at_zero_is_one() {
        let d = DurationDistribution::us_business();
        assert!((d.survival(Seconds::ZERO) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forty_minute_claim_holds() {
        // The paper: outages up to 40 minutes constitute "bulk of the
        // outages" — our encoding puts ~74% of outages within 40 min.
        let d = DurationDistribution::us_business();
        assert!(d.probability_within(Seconds::from_minutes(40.0)) > 0.70);
    }

    #[test]
    fn thirty_percent_within_dg_startup() {
        // §3: "even before starting to use the DG, the datacenter would have
        // restored utility power for more than 30% of the power outages"
        // (DG transition ~2 min).
        let d = DurationDistribution::us_business();
        assert!(d.probability_within(Seconds::from_minutes(2.0)) > 0.30);
    }

    #[test]
    fn conditional_survival_of_long_outage_rises() {
        // An outage that has already lasted 30 min is far more likely to
        // last 30 more than a fresh outage is to reach 30 min.
        let d = DurationDistribution::us_business();
        let fresh = d.survival(Seconds::from_minutes(30.0));
        let aged = d.conditional_survival(Seconds::from_minutes(30.0), Seconds::from_minutes(30.0));
        assert!(aged > fresh);
    }

    #[test]
    fn expected_remaining_zero_after_cap() {
        let d = DurationDistribution::us_business();
        assert_eq!(
            d.expected_remaining(Seconds::from_hours(8.0)),
            Seconds::ZERO
        );
    }

    #[test]
    fn frequency_mean_is_plausible() {
        let f = FrequencyDistribution::us_business();
        let m = f.mean();
        assert!(m > 1.0 && m < 4.0, "mean yearly outages {m} out of range");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_rejected() {
        let _ = DurationDistribution::new(vec![(DurationBucket::new_minutes(0.0, 1.0), 0.5)]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gap_rejected() {
        let _ = DurationDistribution::new(vec![
            (DurationBucket::new_minutes(0.0, 1.0), 0.5),
            (DurationBucket::new_minutes(2.0, 3.0), 0.5),
        ]);
    }

    proptest! {
        #[test]
        fn cdf_monotone(a in 0.0f64..500.0, extra in 0.0f64..500.0) {
            let d = DurationDistribution::us_business();
            let pa = d.probability_within(Seconds::from_minutes(a));
            let pb = d.probability_within(Seconds::from_minutes(a + extra));
            prop_assert!(pb >= pa - 1e-12);
        }

        #[test]
        fn quantile_inverts_cdf(u in 0.0f64..1.0) {
            let d = DurationDistribution::us_business();
            let x = d.quantile(u);
            let back = d.probability_within(x);
            prop_assert!((back - u).abs() < 1e-6);
        }

        #[test]
        fn conditional_survival_in_unit_interval(
            e in 0.0f64..480.0,
            a in 0.0f64..480.0,
        ) {
            let d = DurationDistribution::us_business();
            let c = d.conditional_survival(Seconds::from_minutes(e), Seconds::from_minutes(a));
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn frequency_quantile_in_declared_range(u in 0.0f64..1.0, w in 0.0f64..1.0) {
            let f = FrequencyDistribution::us_business();
            let n = f.quantile(u, w);
            prop_assert!(n <= FrequencyDistribution::OPEN_END_CAP);
        }
    }
}
