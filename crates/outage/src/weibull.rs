//! Parametric (Weibull) outage-duration models.
//!
//! The bucketed Figure 1(b) histogram is the paper's ground truth, but
//! robustness questions — *what if the local utility's outages follow a
//! different law than the predictor was trained on?* — call for a smooth
//! parametric family. The Weibull distribution with shape `k < 1` is the
//! standard heavy-tailed model for repair/outage durations: its hazard
//! rate decreases with elapsed time, which is exactly the
//! "the longer it has been out, the longer it will stay out" behaviour the
//! §7 controller exploits.

use crate::{DurationBucket, DurationDistribution};
use dcb_units::Seconds;

/// A Weibull outage-duration distribution.
///
/// ```
/// use dcb_outage::WeibullDuration;
/// use dcb_units::Seconds;
///
/// let w = WeibullDuration::fit_us_business();
/// // Median close to the Figure 1(b) shape (a few minutes).
/// let median = w.quantile(0.5);
/// assert!(median > Seconds::new(30.0) && median < Seconds::from_minutes(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WeibullDuration {
    shape: f64,
    scale: Seconds,
}

impl WeibullDuration {
    /// Creates a Weibull model.
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 0` and `scale > 0`.
    #[must_use]
    pub fn new(shape: f64, scale: Seconds) -> Self {
        assert!(shape > 0.0, "shape must be positive");
        assert!(scale.value() > 0.0, "scale must be positive");
        Self { shape, scale }
    }

    /// A fit to the Figure 1(b) histogram: shape ≈ 0.35 (strongly
    /// decreasing hazard) and scale ≈ 9 min reproduce the histogram's two
    /// key masses — ~58 % of outages within 5 minutes and ~11 % beyond
    /// 2 hours — to within a few points.
    #[must_use]
    pub fn fit_us_business() -> Self {
        Self::new(0.35, Seconds::from_minutes(9.0))
    }

    /// The shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    #[must_use]
    pub fn scale(&self) -> Seconds {
        self.scale
    }

    /// Survival function `P(duration > d) = exp(−(d/λ)^k)`.
    #[must_use]
    pub fn survival(&self, d: Seconds) -> f64 {
        if d.value() <= 0.0 {
            return 1.0;
        }
        (-(d / self.scale).powf(self.shape)).exp()
    }

    /// Inverse CDF: the duration exceeded with probability `1 − u`.
    #[must_use]
    pub fn quantile(&self, u: f64) -> Seconds {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }

    /// Hazard rate `h(d) = (k/λ)(d/λ)^{k−1}` — decreasing for `k < 1`.
    #[must_use]
    pub fn hazard(&self, d: Seconds) -> f64 {
        let d = d.max(Seconds::new(1e-9));
        self.shape / self.scale.value() * (d / self.scale).powf(self.shape - 1.0)
    }

    /// Discretizes into the standard Figure 1(b) buckets so the result can
    /// drive the [`crate::OutageSampler`] and [`crate::DurationPredictor`].
    #[must_use]
    pub fn to_bucketed(&self) -> DurationDistribution {
        let template = DurationDistribution::us_business();
        let buckets: Vec<DurationBucket> = template.buckets().iter().map(|(b, _)| *b).collect();
        let mut probabilities: Vec<f64> = buckets
            .iter()
            .map(|b| {
                let hi = if b.hi().is_finite() {
                    self.survival(b.hi())
                } else {
                    0.0
                };
                (self.survival(b.lo()) - hi).max(0.0)
            })
            .collect();
        let total: f64 = probabilities.iter().sum();
        for p in &mut probabilities {
            *p /= total;
        }
        DurationDistribution::new(buckets.into_iter().zip(probabilities).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_reproduces_figure1_masses() {
        let w = WeibullDuration::fit_us_business();
        let within_5 = 1.0 - w.survival(Seconds::from_minutes(5.0));
        assert!((within_5 - 0.58).abs() < 0.05, "P(<=5min) = {within_5}");
        let beyond_120 = w.survival(Seconds::from_minutes(120.0));
        assert!((beyond_120 - 0.11).abs() < 0.05, "P(>2h) = {beyond_120}");
    }

    #[test]
    fn hazard_decreases_for_heavy_tail() {
        let w = WeibullDuration::fit_us_business();
        let early = w.hazard(Seconds::from_minutes(1.0));
        let late = w.hazard(Seconds::from_minutes(60.0));
        assert!(early > late);
    }

    #[test]
    fn bucketed_version_sums_to_one_and_tracks_cdf() {
        let w = WeibullDuration::fit_us_business();
        let d = w.to_bucketed();
        let total: f64 = d.buckets().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // CDF of the bucketed version approximates the continuous one at
        // bucket edges (the open tail is truncated/renormalized).
        let edge = Seconds::from_minutes(30.0);
        let continuous = 1.0 - w.survival(edge);
        let bucketed = d.probability_within(edge);
        assert!(
            (continuous - bucketed).abs() < 0.06,
            "{continuous} vs {bucketed}"
        );
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_rejected() {
        let _ = WeibullDuration::new(0.0, Seconds::new(1.0));
    }

    proptest! {
        #[test]
        fn quantile_inverts_survival(u in 0.001f64..0.999) {
            let w = WeibullDuration::fit_us_business();
            let d = w.quantile(u);
            prop_assert!((1.0 - w.survival(d) - u).abs() < 1e-9);
        }

        #[test]
        fn survival_monotone(a in 0.0f64..500.0, extra in 0.0f64..500.0) {
            let w = WeibullDuration::fit_us_business();
            prop_assert!(
                w.survival(Seconds::from_minutes(a + extra))
                    <= w.survival(Seconds::from_minutes(a)) + 1e-12
            );
        }
    }
}
