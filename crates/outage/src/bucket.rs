//! Duration buckets matching the paper's Figure 1(b) histogram.

use core::fmt;
use dcb_units::Seconds;

/// A half-open duration range `[lo, hi)` used to bucket outage durations.
///
/// The canonical buckets are those of Figure 1(b): `<1`, `1–5`, `5–30`,
/// `30–120`, `120–240` and `>240` minutes. The final bucket is open-ended;
/// for sampling and expectation purposes it is capped at
/// [`DurationBucket::OPEN_END_CAP_MINUTES`].
///
/// ```
/// use dcb_outage::DurationBucket;
/// use dcb_units::Seconds;
///
/// let b = DurationBucket::new_minutes(5.0, 30.0);
/// assert!(b.contains(Seconds::from_minutes(10.0)));
/// assert!(!b.contains(Seconds::from_minutes(30.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DurationBucket {
    lo: Seconds,
    hi: Seconds,
}

impl DurationBucket {
    /// Cap applied to the open-ended `>240 min` bucket when a finite upper
    /// bound is needed (sampling, means). Eight hours: consistent with the
    /// paper treating `>4 h` outages as the geo-replication regime.
    pub const OPEN_END_CAP_MINUTES: f64 = 480.0;

    /// Creates a bucket `[lo, hi)` from minute bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo < 0`, or `hi <= lo`.
    #[must_use]
    pub fn new_minutes(lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0, "bucket lower bound must be >= 0");
        assert!(hi > lo, "bucket upper bound must exceed lower bound");
        Self {
            lo: Seconds::from_minutes(lo),
            hi: Seconds::from_minutes(hi),
        }
    }

    /// Creates the open-ended bucket `[lo, ∞)`.
    #[must_use]
    pub fn open_ended_minutes(lo: f64) -> Self {
        assert!(lo >= 0.0, "bucket lower bound must be >= 0");
        Self {
            lo: Seconds::from_minutes(lo),
            hi: Seconds::new(f64::INFINITY),
        }
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub fn lo(self) -> Seconds {
        self.lo
    }

    /// Upper bound (exclusive; may be infinite).
    #[must_use]
    pub fn hi(self) -> Seconds {
        self.hi
    }

    /// Upper bound with the open-ended cap applied.
    #[must_use]
    pub fn capped_hi(self) -> Seconds {
        if self.hi.is_finite() {
            self.hi
        } else {
            Seconds::from_minutes(Self::OPEN_END_CAP_MINUTES)
        }
    }

    /// Whether `d` falls in this bucket.
    #[must_use]
    pub fn contains(self, d: Seconds) -> bool {
        d >= self.lo && d < self.hi
    }

    /// Midpoint of the (capped) bucket, used for coarse expectations.
    #[must_use]
    pub fn midpoint(self) -> Seconds {
        (self.lo + self.capped_hi()) / 2.0
    }

    /// Width of the (capped) bucket.
    #[must_use]
    pub fn width(self) -> Seconds {
        self.capped_hi() - self.lo
    }
}

impl fmt::Display for DurationBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi.is_finite() {
            write!(
                f,
                "{:.0}–{:.0} min",
                self.lo.to_minutes(),
                self.hi.to_minutes()
            )
        } else {
            write!(f, "> {:.0} min", self.lo.to_minutes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_half_open() {
        let b = DurationBucket::new_minutes(1.0, 5.0);
        assert!(b.contains(Seconds::from_minutes(1.0)));
        assert!(b.contains(Seconds::from_minutes(4.999)));
        assert!(!b.contains(Seconds::from_minutes(5.0)));
        assert!(!b.contains(Seconds::from_minutes(0.5)));
    }

    #[test]
    fn open_ended_contains_everything_above() {
        let b = DurationBucket::open_ended_minutes(240.0);
        assert!(b.contains(Seconds::from_hours(100.0)));
        assert_eq!(b.capped_hi(), Seconds::from_minutes(480.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            DurationBucket::new_minutes(5.0, 30.0).to_string(),
            "5–30 min"
        );
        assert_eq!(
            DurationBucket::open_ended_minutes(240.0).to_string(),
            "> 240 min"
        );
    }

    #[test]
    #[should_panic(expected = "upper bound must exceed")]
    fn inverted_bounds_rejected() {
        let _ = DurationBucket::new_minutes(5.0, 5.0);
    }
}
