//! Online outage-duration prediction (§7 of the paper).
//!
//! "One option is for datacenters to use the historic utility outage data
//! from their utility to construct an online predictor (e.g., an online
//! Markov chain based transition matrix of different duration), and use the
//! evolving outage to make dynamic decisions."

use crate::{DurationBucket, DurationDistribution, OutageTrace};
use dcb_units::Seconds;

/// A Markov-chain outage duration predictor over the Figure 1(b) buckets.
///
/// The chain's state is "the outage has survived into bucket *i*"; the
/// transition matrix entry `T[i]` is the probability the outage survives
/// into bucket *i+1* given it reached bucket *i*, estimated either from a
/// published distribution or fitted online from observed outages. Combined
/// with within-bucket interpolation this yields the conditional-survival
/// queries the adaptive controller needs.
///
/// ```
/// use dcb_outage::{DurationDistribution, DurationPredictor};
/// use dcb_units::Seconds;
///
/// let p = DurationPredictor::from_distribution(&DurationDistribution::us_business());
/// // A fresh outage most likely ends within 5 minutes...
/// assert!(p.probability_exceeds(Seconds::ZERO, Seconds::from_minutes(5.0)) < 0.5);
/// // ...but one that has already run 30 minutes probably runs on.
/// assert!(p.probability_exceeds(Seconds::from_minutes(30.0), Seconds::from_minutes(10.0)) > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DurationPredictor {
    distribution: DurationDistribution,
    /// `survive[i]` = P(outage survives past bucket i's upper edge | it
    /// entered bucket i) — the Markov transition probabilities.
    transitions: Vec<f64>,
    /// Number of observations the predictor was fitted from (0 when built
    /// from a published distribution).
    observations: usize,
}

impl DurationPredictor {
    /// Builds the predictor from a published bucket distribution.
    #[must_use]
    pub fn from_distribution(distribution: &DurationDistribution) -> Self {
        let transitions = Self::transitions_of(distribution);
        Self {
            distribution: distribution.clone(),
            transitions,
            observations: 0,
        }
    }

    /// Fits the predictor from historic outage observations, falling back
    /// to the Figure 1(b) shape when the history is empty.
    ///
    /// Durations are histogrammed into the standard Figure 1(b) buckets with
    /// add-one (Laplace) smoothing so unseen buckets keep nonzero mass.
    #[must_use]
    pub fn fit(history: &[OutageTrace]) -> Self {
        let template = DurationDistribution::us_business();
        let durations: Vec<Seconds> = history
            .iter()
            .flat_map(|t| t.outages().iter().map(|o| o.duration))
            .collect();
        if durations.is_empty() {
            return Self::from_distribution(&template);
        }
        let buckets: Vec<DurationBucket> = template.buckets().iter().map(|(b, _)| *b).collect();
        let mut counts = vec![1.0f64; buckets.len()]; // Laplace smoothing
        for d in &durations {
            for (i, b) in buckets.iter().enumerate() {
                if b.contains(*d) || (i == buckets.len() - 1 && *d >= b.lo()) {
                    counts[i] += 1.0;
                    break;
                }
            }
        }
        let total: f64 = counts.iter().sum();
        let fitted = DurationDistribution::new(
            buckets
                .iter()
                .zip(&counts)
                .map(|(b, c)| (*b, c / total))
                .collect(),
        );
        let transitions = Self::transitions_of(&fitted);
        Self {
            distribution: fitted,
            transitions,
            observations: durations.len(),
        }
    }

    fn transitions_of(distribution: &DurationDistribution) -> Vec<f64> {
        distribution
            .buckets()
            .iter()
            .map(|(b, _)| {
                let entered = distribution.survival(b.lo());
                if entered <= 0.0 {
                    0.0
                } else {
                    (distribution.survival(b.capped_hi()) / entered).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// The fitted (or published) duration distribution.
    #[must_use]
    pub fn distribution(&self) -> &DurationDistribution {
        &self.distribution
    }

    /// The Markov transition probabilities: entry `i` is the probability an
    /// outage that entered bucket `i` survives past the bucket's upper edge.
    #[must_use]
    pub fn transitions(&self) -> &[f64] {
        &self.transitions
    }

    /// Number of historic outages the predictor was fitted from.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// `P(outage lasts more than `ahead` longer | it has lasted `elapsed`)`.
    #[must_use]
    pub fn probability_exceeds(&self, elapsed: Seconds, ahead: Seconds) -> f64 {
        self.distribution.conditional_survival(elapsed, ahead)
    }

    /// Expected remaining outage time given `elapsed`.
    #[must_use]
    pub fn expected_remaining(&self, elapsed: Seconds) -> Seconds {
        self.distribution.expected_remaining(elapsed)
    }

    /// A pessimistic remaining-duration estimate: the smallest `t` such that
    /// `P(remaining > t) <= risk`. The adaptive controller plans battery
    /// budgets against this quantile.
    #[must_use]
    pub fn remaining_quantile(&self, elapsed: Seconds, risk: f64) -> Seconds {
        let cap = Seconds::from_minutes(DurationBucket::OPEN_END_CAP_MINUTES);
        let risk = risk.clamp(1e-9, 1.0);
        // Bisect on conditional survival, which is monotone nonincreasing.
        let mut lo = Seconds::ZERO;
        let mut hi = (cap - elapsed).max(Seconds::ZERO);
        if self.probability_exceeds(elapsed, hi) > risk {
            return hi;
        }
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if self.probability_exceeds(elapsed, mid) > risk {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outage, OutageSampler};
    use proptest::prelude::*;

    #[test]
    fn transitions_are_probabilities() {
        let p = DurationPredictor::from_distribution(&DurationDistribution::us_business());
        for t in p.transitions() {
            assert!((0.0..=1.0).contains(t));
        }
        assert_eq!(p.transitions().len(), 6);
    }

    #[test]
    fn fit_on_empty_history_falls_back() {
        let p = DurationPredictor::fit(&[]);
        assert_eq!(p.observations(), 0);
        assert_eq!(p.distribution(), &DurationDistribution::us_business());
    }

    #[test]
    fn fit_recovers_sampled_distribution() {
        let mut sampler = OutageSampler::seeded(5);
        let history = sampler.sample_years(5_000);
        let p = DurationPredictor::fit(&history);
        assert!(p.observations() > 1_000);
        // Fitted P(d <= 5 min) should approximate the generating 58%.
        let within = p
            .distribution()
            .probability_within(Seconds::from_minutes(5.0));
        assert!((within - 0.58).abs() < 0.05, "got {within}");
    }

    #[test]
    fn fit_from_all_short_outages_predicts_short() {
        let trace = OutageTrace::new(
            (0..100)
                .map(|i| Outage {
                    start: Seconds::from_hours(f64::from(i)),
                    duration: Seconds::new(30.0),
                })
                .collect(),
        );
        let p = DurationPredictor::fit(&[trace]);
        // Nearly all mass in the first bucket.
        assert!(
            p.distribution()
                .probability_within(Seconds::from_minutes(1.0))
                > 0.9
        );
    }

    #[test]
    fn remaining_quantile_bounds_risk() {
        let p = DurationPredictor::from_distribution(&DurationDistribution::us_business());
        let elapsed = Seconds::from_minutes(2.0);
        let q = p.remaining_quantile(elapsed, 0.1);
        let risk = p.probability_exceeds(elapsed, q);
        assert!(risk <= 0.1 + 1e-6, "risk {risk} exceeds target");
    }

    #[test]
    fn expected_remaining_grows_with_elapsed_early_on() {
        // The heavy tail means surviving the first minutes raises the
        // conditional expectation (the "inspection paradox" the §7 policy
        // exploits).
        let p = DurationPredictor::from_distribution(&DurationDistribution::us_business());
        let fresh = p.expected_remaining(Seconds::ZERO);
        let aged = p.expected_remaining(Seconds::from_minutes(10.0));
        assert!(aged > fresh);
    }

    proptest! {
        #[test]
        fn probability_exceeds_monotone_in_ahead(
            e in 0.0f64..240.0,
            a in 0.0f64..240.0,
            extra in 0.0f64..240.0,
        ) {
            let p = DurationPredictor::from_distribution(&DurationDistribution::us_business());
            let near = p.probability_exceeds(Seconds::from_minutes(e), Seconds::from_minutes(a));
            let far = p.probability_exceeds(Seconds::from_minutes(e), Seconds::from_minutes(a + extra));
            prop_assert!(far <= near + 1e-12);
        }

        #[test]
        fn remaining_quantile_monotone_in_risk(
            e in 0.0f64..240.0,
            r1 in 0.01f64..0.99,
            r2 in 0.01f64..0.99,
        ) {
            let p = DurationPredictor::from_distribution(&DurationDistribution::us_business());
            let (lo_risk, hi_risk) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            let conservative = p.remaining_quantile(Seconds::from_minutes(e), lo_risk);
            let aggressive = p.remaining_quantile(Seconds::from_minutes(e), hi_risk);
            prop_assert!(conservative >= aggressive - Seconds::new(1e-6));
        }
    }
}
