//! Consolidation plans: pack VMs on fewer servers, shut the rest down.

use dcb_units::Fraction;

/// A consolidation plan: how many servers absorb the cluster's VMs so the
/// rest can power off.
///
/// The paper uses "a relatively aggressive consolidation by powering down
/// every alternative server, reducing the number of servers to half the
/// original size" (§6) — [`ConsolidationPlan::halve`]. Each surviving
/// server hosts `ratio` VMs, so every application keeps a `1/ratio`
/// resource share.
///
/// ```
/// use dcb_migration::ConsolidationPlan;
///
/// let plan = ConsolidationPlan::halve();
/// assert_eq!(plan.share().value(), 0.5);
/// assert_eq!(plan.survivors(10), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ConsolidationPlan {
    /// VMs per surviving server.
    ratio: u32,
}

impl ConsolidationPlan {
    /// No consolidation (identity plan).
    #[must_use]
    pub fn none() -> Self {
        Self { ratio: 1 }
    }

    /// The paper's 2-to-1 plan: power down every alternate server.
    #[must_use]
    pub fn halve() -> Self {
        Self { ratio: 2 }
    }

    /// A custom `ratio`-to-1 plan.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    #[must_use]
    pub fn pack(ratio: u32) -> Self {
        assert!(ratio > 0, "consolidation ratio must be at least 1");
        Self { ratio }
    }

    /// VMs per surviving server.
    #[must_use]
    pub fn ratio(&self) -> u32 {
        self.ratio
    }

    /// Resource share each VM keeps after consolidation.
    #[must_use]
    pub fn share(&self) -> Fraction {
        Fraction::new(1.0 / f64::from(self.ratio))
    }

    /// How many of `servers` keep running (ceiling division — every VM needs
    /// a host).
    #[must_use]
    pub fn survivors(&self, servers: u32) -> u32 {
        servers.div_ceil(self.ratio)
    }

    /// Fraction of the cluster still powered.
    #[must_use]
    pub fn surviving_fraction(&self, servers: u32) -> Fraction {
        if servers == 0 {
            return Fraction::ZERO;
        }
        Fraction::new(f64::from(self.survivors(servers)) / f64::from(servers))
    }
}

impl Default for ConsolidationPlan {
    fn default() -> Self {
        Self::halve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn halve_survivors() {
        let plan = ConsolidationPlan::halve();
        assert_eq!(plan.survivors(10), 5);
        assert_eq!(plan.survivors(11), 6); // odd cluster rounds up
        assert_eq!(plan.share(), Fraction::HALF);
    }

    #[test]
    fn none_is_identity() {
        let plan = ConsolidationPlan::none();
        assert_eq!(plan.survivors(7), 7);
        assert_eq!(plan.share(), Fraction::ONE);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ratio_rejected() {
        let _ = ConsolidationPlan::pack(0);
    }

    proptest! {
        #[test]
        fn survivors_cover_all_vms(ratio in 1u32..16, servers in 0u32..10_000) {
            let plan = ConsolidationPlan::pack(ratio);
            // Surviving hosts times capacity covers every VM.
            prop_assert!(u64::from(plan.survivors(servers)) * u64::from(ratio) >= u64::from(servers));
        }

        #[test]
        fn deeper_packing_never_keeps_more(servers in 1u32..10_000, r in 1u32..15) {
            let shallow = ConsolidationPlan::pack(r);
            let deep = ConsolidationPlan::pack(r + 1);
            prop_assert!(deep.survivors(servers) <= shallow.survivors(servers));
        }
    }
}
