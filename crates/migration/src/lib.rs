//! Live-migration and proactive state-synchronization models.
//!
//! The paper's *Migration (Consolidation and Shutdown)* technique (§5) live-
//! migrates VMs to half the servers immediately after a power failure and
//! powers the rest down; *Proactive Migration* keeps a Remus-style periodic
//! copy of dirty memory on a remote host during normal operation so that
//! only a residual needs to move after the failure. The authors use Xen
//! live migration and Remus as-is; this crate models both with the standard
//! iterative pre-copy analysis, calibrated to the paper's anchors —
//! Specjbb's 18 GB migrates in ~10 min over 1 Gbps, and its 10 GB proactive
//! residual in ~5 min (§6.2).
//!
//! # Examples
//!
//! ```
//! use dcb_migration::MigrationModel;
//! use dcb_workload::Workload;
//!
//! let model = MigrationModel::xen_default();
//! let jbb = Workload::specjbb();
//! let plan = model.plan(jbb.memory_footprint(), jbb.dirty_profile().dirty_rate);
//! // ~10 minutes to migrate Specjbb (§6.2).
//! assert!((plan.duration.to_minutes() - 10.0).abs() < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consolidation;
mod precopy;

pub use consolidation::ConsolidationPlan;
pub use precopy::{MigrationModel, MigrationPlan};
