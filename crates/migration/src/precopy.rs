//! Iterative pre-copy live migration (Xen-style).

use dcb_units::{Gigabytes, MegabytesPerSecond, Seconds};

/// Parameters of the live-migration engine.
///
/// The default reproduces the paper's setup: Xen live migration over the
/// testbed's 1 Gbps Ethernet, with an effective payload bandwidth of 80 %
/// of line rate and the usual round-count and stop-and-copy cutoffs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MigrationModel {
    bandwidth: MegabytesPerSecond,
    max_rounds: u32,
    stop_copy_threshold: Gigabytes,
}

/// The outcome of planning one migration: how long it takes and what moves.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MigrationPlan {
    /// Wall-clock time from start to cut-over.
    pub duration: Seconds,
    /// Total bytes pushed over the wire (pre-copy rounds + stop-and-copy).
    pub transferred: Gigabytes,
    /// Number of pre-copy rounds performed.
    pub rounds: u32,
    /// Length of the final stop-and-copy pause (VM frozen).
    pub pause: Seconds,
    /// Whether pre-copy converged below the threshold (false = the round
    /// limit forced a large stop-and-copy).
    pub converged: bool,
}

impl MigrationModel {
    /// Xen defaults on the paper's testbed: 1 Gbps NIC at 80 % payload
    /// efficiency, at most 29 pre-copy rounds, 100 MB stop-and-copy cutoff.
    #[must_use]
    pub fn xen_default() -> Self {
        Self {
            bandwidth: MegabytesPerSecond::new(100.0),
            max_rounds: 29,
            stop_copy_threshold: Gigabytes::new(0.1),
        }
    }

    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive.
    #[must_use]
    pub fn new(
        bandwidth: MegabytesPerSecond,
        max_rounds: u32,
        stop_copy_threshold: Gigabytes,
    ) -> Self {
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        Self {
            bandwidth,
            max_rounds,
            stop_copy_threshold,
        }
    }

    /// Effective payload bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> MegabytesPerSecond {
        self.bandwidth
    }

    /// Plans migrating `state` gigabytes of a VM whose pages dirty at
    /// `dirty_rate`.
    ///
    /// Round 0 pushes the whole state; round *i* pushes what was dirtied
    /// during round *i−1*. Pre-copy ends when a round's payload falls below
    /// the stop-and-copy threshold or the round limit is hit, after which
    /// the VM pauses for the final copy.
    #[must_use]
    pub fn plan(&self, state: Gigabytes, dirty_rate: MegabytesPerSecond) -> MigrationPlan {
        if state.value() <= 0.0 {
            return MigrationPlan {
                duration: Seconds::ZERO,
                transferred: Gigabytes::ZERO,
                rounds: 0,
                pause: Seconds::ZERO,
                converged: true,
            };
        }
        let mut to_send = state;
        let mut transferred = Gigabytes::ZERO;
        let mut duration = Seconds::ZERO;
        let mut rounds = 0;
        let mut converged = false;
        while rounds < self.max_rounds {
            if to_send <= self.stop_copy_threshold {
                converged = true;
                break;
            }
            let round_time = to_send.transfer_time(self.bandwidth);
            duration += round_time;
            transferred += to_send;
            rounds += 1;
            // Pages dirtied while this round was in flight, bounded by the
            // VM's whole writable state.
            to_send = dirty_rate.transferred_in(round_time).min(state);
        }
        let pause = to_send.transfer_time(self.bandwidth);
        let plan = MigrationPlan {
            duration: duration + pause,
            transferred: transferred + to_send,
            rounds,
            pause,
            converged,
        };
        dcb_telemetry::counter!("migration.plans").incr();
        if !plan.converged {
            dcb_telemetry::counter!("migration.plans_unconverged").incr();
        }
        // Dirty-page volume over the wire, floored to whole megabytes so
        // the counter stays integral and stable.
        dcb_telemetry::counter!("migration.transferred_mb")
            .add(plan.transferred.to_megabytes().max(0.0) as u64);
        dcb_telemetry::histogram!("migration.rounds_per_plan").observe(u64::from(plan.rounds));
        plan
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        Self::xen_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;
    use proptest::prelude::*;

    #[test]
    fn specjbb_migrates_in_about_ten_minutes() {
        let jbb = Workload::specjbb();
        let plan = MigrationModel::xen_default()
            .plan(jbb.memory_footprint(), jbb.dirty_profile().dirty_rate);
        assert!(
            (plan.duration.to_minutes() - 10.0).abs() < 1.5,
            "got {} min",
            plan.duration.to_minutes()
        );
        assert!(plan.converged);
    }

    #[test]
    fn specjbb_proactive_residual_migrates_in_about_five_minutes() {
        let jbb = Workload::specjbb();
        let plan = MigrationModel::xen_default().plan(
            jbb.dirty_profile().proactive_migration_residual,
            jbb.dirty_profile().dirty_rate,
        );
        assert!(
            (plan.duration.to_minutes() - 5.0).abs() < 1.0,
            "got {} min",
            plan.duration.to_minutes()
        );
    }

    #[test]
    fn zero_state_is_instant() {
        let plan =
            MigrationModel::xen_default().plan(Gigabytes::ZERO, MegabytesPerSecond::new(50.0));
        assert_eq!(plan.duration, Seconds::ZERO);
        assert_eq!(plan.rounds, 0);
    }

    #[test]
    fn clean_vm_needs_one_round() {
        let plan =
            MigrationModel::xen_default().plan(Gigabytes::new(10.0), MegabytesPerSecond::ZERO);
        assert_eq!(plan.rounds, 1);
        assert!(plan.converged);
        assert!((plan.transferred.value() - 10.0).abs() < 1e-9);
        assert!((plan.duration.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hot_vm_hits_round_limit_with_big_pause() {
        // Dirtying as fast as the wire: pre-copy cannot converge.
        let model = MigrationModel::xen_default();
        let plan = model.plan(Gigabytes::new(16.0), MegabytesPerSecond::new(100.0));
        assert!(!plan.converged);
        assert_eq!(plan.rounds, 29);
        assert!(plan.pause.value() > 100.0, "pause {}", plan.pause);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = MigrationModel::new(MegabytesPerSecond::ZERO, 1, Gigabytes::ZERO);
    }

    proptest! {
        #[test]
        fn duration_monotone_in_state(
            a in 0.1f64..64.0,
            extra in 0.0f64..64.0,
            dirty in 0.0f64..90.0,
        ) {
            let m = MigrationModel::xen_default();
            let rate = MegabytesPerSecond::new(dirty);
            let small = m.plan(Gigabytes::new(a), rate);
            let large = m.plan(Gigabytes::new(a + extra), rate);
            prop_assert!(large.duration >= small.duration - Seconds::new(1e-9));
        }

        #[test]
        fn higher_dirty_rate_never_migrates_faster(
            state in 0.1f64..64.0,
            d1 in 0.0f64..100.0,
            d2 in 0.0f64..100.0,
        ) {
            let m = MigrationModel::xen_default();
            let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            let calm = m.plan(Gigabytes::new(state), MegabytesPerSecond::new(lo));
            let hot = m.plan(Gigabytes::new(state), MegabytesPerSecond::new(hi));
            prop_assert!(hot.duration >= calm.duration - Seconds::new(1e-9));
        }

        #[test]
        fn transferred_at_least_state(state in 0.1f64..64.0, dirty in 0.0f64..90.0) {
            let m = MigrationModel::xen_default();
            let plan = m.plan(Gigabytes::new(state), MegabytesPerSecond::new(dirty));
            prop_assert!(plan.transferred.value() >= state - 1e-9);
        }
    }
}
