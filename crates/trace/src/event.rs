//! The structured event model and its canonical line encoding.
//!
//! Every recorded occurrence is an [`Event`]: a lane/sequence identity, an
//! optional causal parent (the sequence number of an earlier event in the
//! same lane), a virtual timestamp in simulated microseconds, and a typed
//! [`EventKind`] payload. The canonical line encoding is the crate's wire
//! format: one event per line, fields in a fixed order, strings quoted
//! with a fixed escape set — so `encode → parse → encode` is
//! byte-identical (asserted by a proptest) and traces can be diffed with
//! ordinary text tools.

use std::fmt::Write as _;

/// One flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual track the event belongs to: [`crate::ROOT_LANE`] for the
    /// calling thread's default track, or a batch-assigned lane (a pure
    /// function of the workload, never of the thread that ran it — see
    /// [`crate::claim_lanes`]).
    pub lane: u64,
    /// Position within the lane, assigned at record time.
    pub seq: u32,
    /// Sequence number of the causal parent event in the same lane, if
    /// any (e.g. a `SegmentCommit` points at its `OutageStart`).
    pub parent: Option<u32>,
    /// Virtual timestamp in simulated microseconds; `None` inherits the
    /// previous event's resolved time within the lane (0 at lane start).
    pub at_us: Option<u64>,
    /// Duration in simulated microseconds (0 for instants).
    pub dur_us: u64,
    /// The typed payload.
    pub kind: EventKind,
}

/// What happened. Numeric payloads are integers by design: milliwatts,
/// per-mille throughput, and microseconds encode exactly, so two runs that
/// simulated the same scenario serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An outage simulation began (the root of a scenario's causal tree).
    OutageStart {
        /// Backup configuration label (Table 3 name).
        config: String,
        /// Technique name.
        technique: String,
        /// Outage length in simulated microseconds.
        outage_us: u64,
    },
    /// The diesel generator crossed a ramp milestone.
    DgRampPhase {
        /// `engine_start`, `full_power`, or `fuel_exhausted`.
        phase: String,
    },
    /// The UPS battery hit exact depletion.
    BatteryDeplete,
    /// The cluster's mode changed (technique state machine step).
    TechniqueTransition {
        /// Mode before the transition.
        from: String,
        /// Mode after the transition.
        to: String,
    },
    /// The kernel committed one constant-load analytic segment.
    SegmentCommit {
        /// Wire name of the segment's end cause
        /// (see `dcb_sim::SegmentEnd::as_str`).
        end_cause: String,
        /// Constant supply load over the segment, in milliwatts.
        load_mw: u64,
        /// Normalized throughput over the segment, in per-mille.
        throughput_pm: u64,
        /// Whether the segment counts as downtime.
        in_downtime: bool,
    },
    /// A battery draw landed on the depletion boundary and floating-point
    /// dust was snapped to exactly empty.
    DustSnap,
    /// The fleet evaluation cache answered a lookup.
    CacheHit {
        /// Hex scenario digest (the cache key).
        digest: String,
    },
    /// The fleet evaluation cache had to compute.
    CacheMiss {
        /// Hex scenario digest (the cache key).
        digest: String,
    },
    /// The first-true root finder bracketed and bisected a predicate flip.
    ShortfallRoot {
        /// Bisection iterations spent converging on the root.
        bisections: u64,
    },
    /// A (config, technique, duration) point finished evaluating.
    Evaluate {
        /// Backup configuration label.
        config: String,
        /// Technique name.
        technique: String,
        /// Whether the technique executed as intended.
        feasible: bool,
    },
    /// A topology node (possibly standing for many identical copies)
    /// finished resolving.
    TopoResolve {
        /// Hierarchy level name (`datacenter`, `cluster`, `rack`, `server`).
        level: String,
        /// Display name of the node.
        name: String,
        /// Explicit copies the resolved node stood for.
        multiplicity: u64,
        /// Whether every consumer below executed its technique as planned.
        feasible: bool,
    },
    /// A deficit decision cut power to a topology consumer class.
    TopoShed {
        /// Hierarchy level name of the shed node.
        level: String,
        /// Display name of the shed node.
        name: String,
        /// Servers shed (counting multiplicities).
        servers: u64,
    },
    /// A discrete-event engine bound a lane to one of its components
    /// (emitted as the lane's first event, so viewers can label the
    /// track). The name follows the `engine/<component>` scheme
    /// (OBSERVABILITY.md).
    ComponentLane {
        /// Auto-lane name, `engine/<component>`.
        component: String,
    },
}

impl EventKind {
    /// Stable wire name of the kind.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::OutageStart { .. } => "outage_start",
            EventKind::DgRampPhase { .. } => "dg_ramp_phase",
            EventKind::BatteryDeplete => "battery_deplete",
            EventKind::TechniqueTransition { .. } => "technique_transition",
            EventKind::SegmentCommit { .. } => "segment_commit",
            EventKind::DustSnap => "dust_snap",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::ShortfallRoot { .. } => "shortfall_root",
            EventKind::Evaluate { .. } => "evaluate",
            EventKind::TopoResolve { .. } => "topo_resolve",
            EventKind::TopoShed { .. } => "topo_shed",
            EventKind::ComponentLane { .. } => "component_lane",
        }
    }

    /// The workspace layer that records this kind (the Chrome `cat` field).
    #[must_use]
    pub fn layer(&self) -> &'static str {
        match self {
            EventKind::OutageStart { .. }
            | EventKind::DgRampPhase { .. }
            | EventKind::BatteryDeplete
            | EventKind::TechniqueTransition { .. }
            | EventKind::SegmentCommit { .. }
            | EventKind::ShortfallRoot { .. } => "sim",
            EventKind::DustSnap => "battery",
            EventKind::CacheHit { .. } | EventKind::CacheMiss { .. } => "fleet",
            EventKind::Evaluate { .. } => "core",
            EventKind::TopoResolve { .. } | EventKind::TopoShed { .. } => "topology",
            EventKind::ComponentLane { .. } => "engine",
        }
    }
}

impl Event {
    /// Encodes the event as one canonical line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "lane={} seq={}", self.lane, self.seq);
        match self.parent {
            Some(p) => {
                let _ = write!(out, " parent={p}");
            }
            None => out.push_str(" parent=-"),
        }
        match self.at_us {
            Some(at) => {
                let _ = write!(out, " at={at}");
            }
            None => out.push_str(" at=-"),
        }
        let _ = write!(out, " dur={} kind={}", self.dur_us, self.kind.name());
        match &self.kind {
            EventKind::OutageStart {
                config,
                technique,
                outage_us,
            } => {
                out.push_str(" config=");
                escape_into(&mut out, config);
                out.push_str(" technique=");
                escape_into(&mut out, technique);
                let _ = write!(out, " outage_us={outage_us}");
            }
            EventKind::DgRampPhase { phase } => {
                out.push_str(" phase=");
                escape_into(&mut out, phase);
            }
            EventKind::BatteryDeplete | EventKind::DustSnap => {}
            EventKind::TechniqueTransition { from, to } => {
                out.push_str(" from=");
                escape_into(&mut out, from);
                out.push_str(" to=");
                escape_into(&mut out, to);
            }
            EventKind::SegmentCommit {
                end_cause,
                load_mw,
                throughput_pm,
                in_downtime,
            } => {
                out.push_str(" end_cause=");
                escape_into(&mut out, end_cause);
                let _ = write!(
                    out,
                    " load_mw={load_mw} throughput_pm={throughput_pm} in_downtime={in_downtime}"
                );
            }
            EventKind::CacheHit { digest } | EventKind::CacheMiss { digest } => {
                out.push_str(" digest=");
                escape_into(&mut out, digest);
            }
            EventKind::ShortfallRoot { bisections } => {
                let _ = write!(out, " bisections={bisections}");
            }
            EventKind::Evaluate {
                config,
                technique,
                feasible,
            } => {
                out.push_str(" config=");
                escape_into(&mut out, config);
                out.push_str(" technique=");
                escape_into(&mut out, technique);
                let _ = write!(out, " feasible={feasible}");
            }
            EventKind::TopoResolve {
                level,
                name,
                multiplicity,
                feasible,
            } => {
                out.push_str(" level=");
                escape_into(&mut out, level);
                out.push_str(" name=");
                escape_into(&mut out, name);
                let _ = write!(out, " multiplicity={multiplicity} feasible={feasible}");
            }
            EventKind::TopoShed {
                level,
                name,
                servers,
            } => {
                out.push_str(" level=");
                escape_into(&mut out, level);
                out.push_str(" name=");
                escape_into(&mut out, name);
                let _ = write!(out, " servers={servers}");
            }
            EventKind::ComponentLane { component } => {
                out.push_str(" component=");
                escape_into(&mut out, component);
            }
        }
        out
    }

    /// Parses one canonical line back into an event.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field. Only lines in
    /// the canonical field order produced by [`Event::encode`] parse.
    pub fn parse(line: &str) -> Result<Event, String> {
        let mut cursor = Cursor::new(line);
        let lane = cursor.field("lane")?.parse_u64()?;
        let seq = cursor.field("seq")?.parse_u32()?;
        let parent = cursor.field("parent")?.parse_opt_u32()?;
        let at_us = cursor.field("at")?.parse_opt_u64()?;
        let dur_us = cursor.field("dur")?.parse_u64()?;
        let kind_name = cursor.field("kind")?.bare()?;
        let kind = match kind_name.as_str() {
            "outage_start" => EventKind::OutageStart {
                config: cursor.field("config")?.string()?,
                technique: cursor.field("technique")?.string()?,
                outage_us: cursor.field("outage_us")?.parse_u64()?,
            },
            "dg_ramp_phase" => EventKind::DgRampPhase {
                phase: cursor.field("phase")?.string()?,
            },
            "battery_deplete" => EventKind::BatteryDeplete,
            "technique_transition" => EventKind::TechniqueTransition {
                from: cursor.field("from")?.string()?,
                to: cursor.field("to")?.string()?,
            },
            "segment_commit" => EventKind::SegmentCommit {
                end_cause: cursor.field("end_cause")?.string()?,
                load_mw: cursor.field("load_mw")?.parse_u64()?,
                throughput_pm: cursor.field("throughput_pm")?.parse_u64()?,
                in_downtime: cursor.field("in_downtime")?.parse_bool()?,
            },
            "dust_snap" => EventKind::DustSnap,
            "cache_hit" => EventKind::CacheHit {
                digest: cursor.field("digest")?.string()?,
            },
            "cache_miss" => EventKind::CacheMiss {
                digest: cursor.field("digest")?.string()?,
            },
            "shortfall_root" => EventKind::ShortfallRoot {
                bisections: cursor.field("bisections")?.parse_u64()?,
            },
            "evaluate" => EventKind::Evaluate {
                config: cursor.field("config")?.string()?,
                technique: cursor.field("technique")?.string()?,
                feasible: cursor.field("feasible")?.parse_bool()?,
            },
            "topo_resolve" => EventKind::TopoResolve {
                level: cursor.field("level")?.string()?,
                name: cursor.field("name")?.string()?,
                multiplicity: cursor.field("multiplicity")?.parse_u64()?,
                feasible: cursor.field("feasible")?.parse_bool()?,
            },
            "topo_shed" => EventKind::TopoShed {
                level: cursor.field("level")?.string()?,
                name: cursor.field("name")?.string()?,
                servers: cursor.field("servers")?.parse_u64()?,
            },
            "component_lane" => EventKind::ComponentLane {
                component: cursor.field("component")?.string()?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        cursor.finish()?;
        Ok(Event {
            lane,
            seq,
            parent,
            at_us,
            dur_us,
            kind,
        })
    }
}

/// Appends `s` as a quoted, escaped string. The escape set is fixed —
/// backslash, quote, `\n`, `\t`, and `\u{XXXX}` for remaining control
/// characters — so encoding is canonical.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{{{:04x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed `key=value` field: the raw (still possibly quoted) value.
struct FieldValue {
    key: &'static str,
    raw: String,
    quoted: bool,
}

impl FieldValue {
    fn parse_u64(&self) -> Result<u64, String> {
        self.bare()?
            .parse::<u64>()
            .map_err(|e| format!("field `{}`: {e}", self.key))
    }

    fn parse_u32(&self) -> Result<u32, String> {
        self.bare()?
            .parse::<u32>()
            .map_err(|e| format!("field `{}`: {e}", self.key))
    }

    fn parse_opt_u64(&self) -> Result<Option<u64>, String> {
        if !self.quoted && self.raw == "-" {
            Ok(None)
        } else {
            self.parse_u64().map(Some)
        }
    }

    fn parse_opt_u32(&self) -> Result<Option<u32>, String> {
        if !self.quoted && self.raw == "-" {
            Ok(None)
        } else {
            self.parse_u32().map(Some)
        }
    }

    fn parse_bool(&self) -> Result<bool, String> {
        match self.bare()?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("field `{}`: not a bool: `{other}`", self.key)),
        }
    }

    /// The value as an unquoted token.
    fn bare(&self) -> Result<String, String> {
        if self.quoted {
            Err(format!("field `{}`: unexpected quoted string", self.key))
        } else {
            Ok(self.raw.clone())
        }
    }

    /// The value as an unescaped string (must have been quoted).
    fn string(&self) -> Result<String, String> {
        if !self.quoted {
            return Err(format!("field `{}`: expected quoted string", self.key));
        }
        Ok(self.raw.clone())
    }
}

/// A sequential field reader over one encoded line.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Self {
        Self { rest: line }
    }

    /// Reads the next `key=value` field, checking the key matches.
    fn field(&mut self, key: &'static str) -> Result<FieldValue, String> {
        let rest = self.rest.trim_start_matches(' ');
        let Some(after_key) = rest.strip_prefix(key) else {
            return Err(format!("expected field `{key}` at `{rest}`"));
        };
        let Some(value_start) = after_key.strip_prefix('=') else {
            return Err(format!("expected `=` after `{key}`"));
        };
        if let Some(quoted) = value_start.strip_prefix('"') {
            let (value, consumed) = unescape(quoted, key)?;
            self.rest = &quoted[consumed..];
            Ok(FieldValue {
                key,
                raw: value,
                quoted: true,
            })
        } else {
            let end = value_start.find(' ').unwrap_or(value_start.len());
            self.rest = &value_start[end..];
            Ok(FieldValue {
                key,
                raw: value_start[..end].to_owned(),
                quoted: false,
            })
        }
    }

    /// Asserts nothing but whitespace remains.
    fn finish(&self) -> Result<(), String> {
        let rest = self.rest.trim_start_matches(' ');
        if rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing content: `{rest}`"))
        }
    }
}

/// Unescapes a quoted string starting just after the opening quote.
/// Returns the value and the byte offset just past the closing quote.
fn unescape(s: &str, key: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let rest = &s[j + 1..];
                    let Some(hex_with_tail) = rest.strip_prefix('{') else {
                        return Err(format!("field `{key}`: malformed \\u escape"));
                    };
                    let Some(close) = hex_with_tail.find('}') else {
                        return Err(format!("field `{key}`: unterminated \\u escape"));
                    };
                    let code = u32::from_str_radix(&hex_with_tail[..close], 16)
                        .map_err(|e| format!("field `{key}`: bad \\u escape: {e}"))?;
                    let Some(c) = char::from_u32(code) else {
                        return Err(format!("field `{key}`: invalid codepoint {code}"));
                    };
                    out.push(c);
                    // Skip the `{`, the hex digits, and the `}` we just
                    // consumed (all ASCII, so chars == bytes).
                    for _ in 0..close + 2 {
                        chars.next();
                    }
                }
                _ => return Err(format!("field `{key}`: bad escape")),
            },
            c => out.push(c),
        }
    }
    Err(format!("field `{key}`: unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: &Event) {
        let line = event.encode();
        let parsed = Event::parse(&line).expect("canonical line parses");
        assert_eq!(&parsed, event);
        assert_eq!(parsed.encode(), line, "re-encode must be byte-identical");
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = vec![
            EventKind::OutageStart {
                config: "MaxPerf".to_owned(),
                technique: "RideThrough".to_owned(),
                outage_us: 7_200_000_000,
            },
            EventKind::DgRampPhase {
                phase: "engine_start".to_owned(),
            },
            EventKind::BatteryDeplete,
            EventKind::TechniqueTransition {
                from: "serving".to_owned(),
                to: "crashed".to_owned(),
            },
            EventKind::SegmentCommit {
                end_cause: "outage_end".to_owned(),
                load_mw: 4_000_000,
                throughput_pm: 1000,
                in_downtime: false,
            },
            EventKind::DustSnap,
            EventKind::CacheHit {
                digest: "00ff".to_owned(),
            },
            EventKind::CacheMiss {
                digest: "abcdef".to_owned(),
            },
            EventKind::ShortfallRoot { bisections: 31 },
            EventKind::Evaluate {
                config: "MinCost".to_owned(),
                technique: "Sleep".to_owned(),
                feasible: false,
            },
            EventKind::TopoResolve {
                level: "cluster".to_owned(),
                name: "row-7".to_owned(),
                multiplicity: 100,
                feasible: true,
            },
            EventKind::TopoShed {
                level: "rack".to_owned(),
                name: "batch".to_owned(),
                servers: 1600,
            },
            EventKind::ComponentLane {
                component: "engine/battery-pack".to_owned(),
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            round_trip(&Event {
                lane: (i as u64) << 32,
                seq: i as u32,
                parent: if i % 2 == 0 { None } else { Some(0) },
                at_us: if i % 3 == 0 {
                    None
                } else {
                    Some(i as u64 * 17)
                },
                dur_us: i as u64,
                kind,
            });
        }
    }

    #[test]
    fn awkward_strings_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "control\u{1}\u{1f}chars",
            "unicode ±√ ∞",
            "trailing space ",
            "equals=sign and spaces",
        ] {
            round_trip(&Event {
                lane: 0,
                seq: 0,
                parent: None,
                at_us: Some(1),
                dur_us: 0,
                kind: EventKind::DgRampPhase {
                    phase: s.to_owned(),
                },
            });
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::parse("").is_err());
        assert!(Event::parse("lane=0 seq=0").is_err());
        assert!(Event::parse("lane=x seq=0 parent=- at=- dur=0 kind=dust_snap").is_err());
        assert!(Event::parse("lane=0 seq=0 parent=- at=- dur=0 kind=nope").is_err());
        assert!(
            Event::parse("lane=0 seq=0 parent=- at=- dur=0 kind=dust_snap extra=1").is_err(),
            "trailing fields must be rejected"
        );
        assert!(
            Event::parse("lane=0 seq=0 parent=- at=- dur=0 kind=dg_ramp_phase phase=\"open")
                .is_err(),
            "unterminated strings must be rejected"
        );
    }
}
