//! The human timeline renderer behind `repro explain`: an annotated,
//! segment-by-segment account of a recorded scenario — each committed
//! segment with its span, end cause, governing constraint, load, and
//! running downtime/energy tallies, interleaved with the instants (DG
//! ramp milestones, battery depletion, technique transitions) that
//! explain *why* each segment ended where it did.
//!
//! Rendering reads events back, so this module is a report edge: fenced
//! out of model code by the `trace-in-result` audit lint.

use crate::event::{Event, EventKind};
use dcb_units::{Seconds, WattHours, Watts};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate outcome of a recorded timeline, rebuilt purely from its
/// `SegmentCommit` events. Tests compare this against the kernel's own
/// `OutageOutcome` for the same scenario: they must agree exactly on
/// end-cause counts and to the recorder's microsecond resolution on
/// downtime.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineTally {
    /// Committed segments observed.
    pub segments: u64,
    /// Total duration of segments flagged as downtime, in microseconds.
    pub downtime_us: u64,
    /// Backup energy drawn across all segments.
    pub energy: WattHours,
    /// Segment end causes and their counts, sorted by wire name.
    pub end_causes: Vec<(String, u64)>,
}

/// Rebuilds the aggregate tally from a recorded event list.
#[must_use]
pub fn tally(events: &[Event]) -> TimelineTally {
    let mut segments = 0u64;
    let mut downtime_us = 0u64;
    let mut energy = WattHours::ZERO;
    let mut causes: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        if let EventKind::SegmentCommit {
            end_cause,
            load_mw,
            in_downtime,
            ..
        } = &event.kind
        {
            segments += 1;
            if *in_downtime {
                downtime_us += event.dur_us;
            }
            energy += Watts::new(*load_mw as f64 / 1e3)
                .for_duration(Seconds::new(event.dur_us as f64 / 1e6));
            *causes.entry(end_cause.as_str()).or_default() += 1;
        }
    }
    TimelineTally {
        segments,
        downtime_us,
        energy,
        end_causes: causes
            .into_iter()
            .map(|(name, count)| (name.to_owned(), count))
            .collect(),
    }
}

/// Maps a segment end cause (wire name) to the constraint that governed
/// it — the paper's vocabulary for why a trajectory bends at that point.
#[must_use]
pub fn constraint_for(end_cause: &str) -> &'static str {
    match end_cause {
        "battery_depleted" => "battery capacity",
        "supply_overload" => "supply capacity",
        "dg_crossover" => "DG ramp",
        "timer_expired" => "technique timer",
        "migration_pause" => "migration stop-and-copy",
        "hybrid_fallback" => "fallback deadline",
        "recovery_power" => "backup headroom",
        "outage_end" => "outage end",
        _ => "unknown",
    }
}

/// Renders the recorded events as an annotated per-lane timeline.
#[must_use]
pub fn render(events: &[Event]) -> String {
    let mut lanes: BTreeMap<u64, Vec<(u64, &Event)>> = BTreeMap::new();
    for event in events {
        lanes.entry(event.lane).or_default().push((0, event));
    }
    let mut out = String::new();
    for (&lane, lane_events) in lanes.iter_mut() {
        lane_events.sort_by_key(|(_, e)| e.seq);
        let mut last = 0u64;
        for slot in lane_events.iter_mut() {
            last = slot.1.at_us.unwrap_or(last);
            slot.0 = last;
        }
        lane_events.sort_by_key(|&(ts, e)| (ts, e.seq));

        if lane == crate::ROOT_LANE {
            out.push_str("lane main\n");
        } else {
            let _ = writeln!(out, "lane task {}.{}", lane >> 32, lane & 0xffff_ffff);
        }
        let mut down_us = 0u64;
        let mut energy = WattHours::ZERO;
        for &(ts, event) in lane_events.iter() {
            render_line(&mut out, ts, event, &mut down_us, &mut energy);
        }
        let _ = writeln!(
            out,
            "  total: downtime {}  energy {}",
            fmt_secs(down_us),
            fmt_energy(energy)
        );
    }
    out
}

/// Appends one rendered line, updating the lane's running tallies.
fn render_line(
    out: &mut String,
    ts: u64,
    event: &Event,
    down_us: &mut u64,
    energy: &mut WattHours,
) {
    if let EventKind::SegmentCommit {
        end_cause,
        load_mw,
        throughput_pm,
        in_downtime,
    } = &event.kind
    {
        if *in_downtime {
            *down_us += event.dur_us;
        }
        *energy +=
            Watts::new(*load_mw as f64 / 1e3).for_duration(Seconds::new(event.dur_us as f64 / 1e6));
        let _ = writeln!(
            out,
            "  [{} .. {}]  segment  end={end_cause} ({})  load={}  thru={}.{}%{}  | total down {}  energy {}",
            fmt_secs(ts),
            fmt_secs(ts + event.dur_us),
            constraint_for(end_cause),
            fmt_load(*load_mw),
            throughput_pm / 10,
            throughput_pm % 10,
            if *in_downtime { "  DOWN" } else { "" },
            fmt_secs(*down_us),
            fmt_energy(*energy),
        );
        return;
    }
    let _ = write!(out, "  @ {}  ", fmt_secs(ts));
    match &event.kind {
        EventKind::OutageStart {
            config,
            technique,
            outage_us,
        } => {
            let _ = writeln!(
                out,
                "outage starts  config={config}  technique={technique}  length={}",
                fmt_secs(*outage_us)
            );
        }
        EventKind::DgRampPhase { phase } => {
            let _ = writeln!(out, "dg {phase}");
        }
        EventKind::BatteryDeplete => {
            out.push_str("battery depleted\n");
        }
        EventKind::TechniqueTransition { from, to } => {
            let _ = writeln!(out, "mode {from} -> {to}");
        }
        EventKind::DustSnap => {
            out.push_str("battery dust snapped to empty\n");
        }
        EventKind::CacheHit { digest } => {
            let _ = writeln!(out, "cache hit {}", short_digest(digest));
        }
        EventKind::CacheMiss { digest } => {
            let _ = writeln!(out, "cache miss {}", short_digest(digest));
        }
        EventKind::ShortfallRoot { bisections } => {
            let _ = writeln!(out, "shortfall root located ({bisections} bisections)");
        }
        EventKind::Evaluate {
            config,
            technique,
            feasible,
        } => {
            let _ = writeln!(
                out,
                "evaluated  config={config}  technique={technique}  feasible={feasible}"
            );
        }
        EventKind::TopoResolve {
            level,
            name,
            multiplicity,
            feasible,
        } => {
            let _ = writeln!(
                out,
                "resolved {level} {name}  x{multiplicity}  feasible={feasible}"
            );
        }
        EventKind::TopoShed {
            level,
            name,
            servers,
        } => {
            let _ = writeln!(out, "shed {level} {name}  servers={servers}");
        }
        EventKind::ComponentLane { component } => {
            let _ = writeln!(out, "lane bound to {component}");
        }
        EventKind::SegmentCommit { .. } => {}
    }
}

/// Formats virtual microseconds as seconds with millisecond precision.
fn fmt_secs(us: u64) -> String {
    format!("{:.3}s", us as f64 / 1e6)
}

/// Formats a milliwatt load with an adaptive unit.
fn fmt_load(load_mw: u64) -> String {
    let watts = load_mw as f64 / 1e3;
    if watts >= 1e6 {
        format!("{:.3}MW", watts / 1e6)
    } else if watts >= 1e3 {
        format!("{:.3}kW", watts / 1e3)
    } else {
        format!("{watts:.3}W")
    }
}

/// Formats an energy tally with an adaptive unit.
fn fmt_energy(energy: WattHours) -> String {
    let wh = energy.value();
    if wh >= 1e6 {
        format!("{:.3}MWh", wh / 1e6)
    } else if wh >= 1e3 {
        format!("{:.3}kWh", wh / 1e3)
    } else {
        format!("{wh:.3}Wh")
    }
}

/// The first 8 hex digits of a scenario digest — enough to eyeball.
fn short_digest(digest: &str) -> &str {
    digest.get(..8).unwrap_or(digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(seq: u32, at: u64, dur: u64, cause: &str, down: bool) -> Event {
        Event {
            lane: 0,
            seq,
            parent: None,
            at_us: Some(at),
            dur_us: dur,
            kind: EventKind::SegmentCommit {
                end_cause: cause.to_owned(),
                load_mw: 2_000_000_000, // 2 MW
                throughput_pm: 750,
                in_downtime: down,
            },
        }
    }

    #[test]
    fn tally_counts_segments_downtime_and_energy() {
        let events = vec![
            seg(0, 0, 1_000_000, "dg_crossover", false),
            seg(1, 1_000_000, 3_000_000, "battery_depleted", true),
            seg(2, 4_000_000, 1_000_000, "outage_end", true),
        ];
        let t = tally(&events);
        assert_eq!(t.segments, 3);
        assert_eq!(t.downtime_us, 4_000_000);
        assert_eq!(
            t.end_causes,
            vec![
                ("battery_depleted".to_owned(), 1),
                ("dg_crossover".to_owned(), 1),
                ("outage_end".to_owned(), 1),
            ]
        );
        // 2 MW for 5 s total = 2e6 W * 5/3600 h.
        let expected = 2e6 * 5.0 / 3600.0;
        assert!((t.energy.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn render_shows_constraints_and_running_tallies() {
        let mut events = vec![Event {
            lane: 0,
            seq: 0,
            parent: None,
            at_us: Some(0),
            dur_us: 0,
            kind: EventKind::OutageStart {
                config: "MaxPerf".to_owned(),
                technique: "RideThrough".to_owned(),
                outage_us: 2_000_000,
            },
        }];
        events.push(seg(1, 0, 2_000_000, "battery_depleted", true));
        let text = render(&events);
        assert!(text.contains("lane main"));
        assert!(text.contains("outage starts"));
        assert!(text.contains("(battery capacity)"));
        assert!(text.contains("DOWN"));
        assert!(text.contains("total: downtime 2.000s"));
    }

    #[test]
    fn every_kernel_end_cause_has_a_constraint() {
        for cause in [
            "outage_end",
            "timer_expired",
            "migration_pause",
            "battery_depleted",
            "supply_overload",
            "dg_crossover",
            "hybrid_fallback",
            "recovery_power",
        ] {
            assert_ne!(constraint_for(cause), "unknown", "unmapped: {cause}");
        }
        assert_eq!(constraint_for("???"), "unknown");
    }
}
