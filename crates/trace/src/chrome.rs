//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Each lane becomes its own track (`tid` = lane) under one synthetic
//! process. Timestamps are the recorder's *virtual* microseconds —
//! simulated time, never the wall clock — so the same workload exports a
//! byte-identical file regardless of `DCB_THREADS` (asserted by a
//! subprocess test in `dcb-bench`). Inherit timestamps (`at = None`)
//! resolve to the previous event's time within the lane; within a track,
//! events are then stably ordered by resolved time so per-track
//! timestamps are monotone, which [`validate`] checks.
//!
//! Reading an exported trace back is a report-edge concern: this module
//! is fenced out of model code by the `trace-in-result` audit lint.

use crate::event::{Event, EventKind};
use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders events (as returned by [`crate::drain`] or [`crate::capture`])
/// into a complete Chrome trace-event JSON document.
#[must_use]
pub fn export(events: &[Event]) -> String {
    // Group per lane and resolve inherit timestamps in sequence order.
    let mut lanes: BTreeMap<u64, Vec<(u64, &Event)>> = BTreeMap::new();
    for event in events {
        lanes.entry(event.lane).or_default().push((0, event));
    }
    for lane_events in lanes.values_mut() {
        lane_events.sort_by_key(|(_, e)| e.seq);
        let mut last = 0u64;
        for slot in lane_events.iter_mut() {
            last = slot.1.at_us.unwrap_or(last);
            slot.0 = last;
        }
        // Stable order by resolved time keeps per-track timestamps
        // monotone while preserving sequence order at equal instants.
        lane_events.sort_by_key(|&(ts, e)| (ts, e.seq));
    }

    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"dcbackup\"}}",
    );
    for (&lane, lane_events) in &lanes {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\""
        );
        if lane == crate::ROOT_LANE {
            out.push_str("main");
        } else {
            let _ = write!(out, "task {}.{}", lane >> 32, lane & 0xffff_ffff);
        }
        out.push_str("\"}}");
        for &(ts, event) in lane_events {
            out.push_str(",\n");
            write_event(&mut out, lane, ts, event);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Appends one trace-event JSON object (no surrounding separators).
fn write_event(out: &mut String, lane: u64, ts: u64, event: &Event) {
    out.push_str("{\"name\":\"");
    match &event.kind {
        EventKind::SegmentCommit { end_cause, .. } => {
            out.push_str("seg:");
            escape_json_into(out, end_cause);
        }
        kind => out.push_str(kind.name()),
    }
    let _ = write!(
        out,
        "\",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{lane},\"ts\":{ts}",
        event.kind.layer(),
        if event.dur_us > 0 { 'X' } else { 'i' }
    );
    if event.dur_us > 0 {
        let _ = write!(out, ",\"dur\":{}", event.dur_us);
    } else {
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"args\":{{\"seq\":{}", event.seq);
    if let Some(parent) = event.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    match &event.kind {
        EventKind::OutageStart {
            config,
            technique,
            outage_us,
        } => {
            out.push_str(",\"config\":\"");
            escape_json_into(out, config);
            out.push_str("\",\"technique\":\"");
            escape_json_into(out, technique);
            let _ = write!(out, "\",\"outage_us\":{outage_us}");
        }
        EventKind::DgRampPhase { phase } => {
            out.push_str(",\"phase\":\"");
            escape_json_into(out, phase);
            out.push('"');
        }
        EventKind::BatteryDeplete | EventKind::DustSnap => {}
        EventKind::TechniqueTransition { from, to } => {
            out.push_str(",\"from\":\"");
            escape_json_into(out, from);
            out.push_str("\",\"to\":\"");
            escape_json_into(out, to);
            out.push('"');
        }
        EventKind::SegmentCommit {
            end_cause,
            load_mw,
            throughput_pm,
            in_downtime,
        } => {
            out.push_str(",\"end_cause\":\"");
            escape_json_into(out, end_cause);
            let _ = write!(
                out,
                "\",\"load_mw\":{load_mw},\"throughput_pm\":{throughput_pm},\"in_downtime\":{in_downtime}"
            );
        }
        EventKind::CacheHit { digest } | EventKind::CacheMiss { digest } => {
            out.push_str(",\"digest\":\"");
            escape_json_into(out, digest);
            out.push('"');
        }
        EventKind::ShortfallRoot { bisections } => {
            let _ = write!(out, ",\"bisections\":{bisections}");
        }
        EventKind::Evaluate {
            config,
            technique,
            feasible,
        } => {
            out.push_str(",\"config\":\"");
            escape_json_into(out, config);
            out.push_str("\",\"technique\":\"");
            escape_json_into(out, technique);
            let _ = write!(out, "\",\"feasible\":{feasible}");
        }
        EventKind::TopoResolve {
            level,
            name,
            multiplicity,
            feasible,
        } => {
            out.push_str(",\"level\":\"");
            escape_json_into(out, level);
            out.push_str("\",\"node\":\"");
            escape_json_into(out, name);
            let _ = write!(
                out,
                "\",\"multiplicity\":{multiplicity},\"feasible\":{feasible}"
            );
        }
        EventKind::TopoShed {
            level,
            name,
            servers,
        } => {
            out.push_str(",\"level\":\"");
            escape_json_into(out, level);
            out.push_str("\",\"node\":\"");
            escape_json_into(out, name);
            let _ = write!(out, "\",\"servers\":{servers}");
        }
        EventKind::ComponentLane { component } => {
            out.push_str(",\"component\":\"");
            escape_json_into(out, component);
            out.push('"');
        }
    }
    out.push_str("}}");
}

/// Appends `s` with JSON string escaping (quote, backslash, `\n`, `\t`,
/// `\r`, and `\uXXXX` for remaining control characters).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Checks that `document` is a well-formed Chrome trace: valid JSON with a
/// `traceEvents` array in which every non-metadata entry carries numeric
/// `pid`/`tid`/`ts`, per-track timestamps are monotone non-decreasing, and
/// complete (`ph == "X"`) events have a non-negative `dur`. Returns the
/// number of non-metadata events.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(document: &str) -> Result<usize, String> {
    let root = json::parse(document)?;
    let events = root
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut counted = 0usize;
    for (i, entry) in events.iter().enumerate() {
        let ph = entry
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if ph == "M" {
            continue;
        }
        let pid = entry
            .get("pid")
            .and_then(json::Value::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `pid`"))?;
        let tid = entry
            .get("tid")
            .and_then(json::Value::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `tid`"))?;
        let ts = entry
            .get("ts")
            .and_then(json::Value::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `ts`"))?;
        if ph == "X" {
            let dur = entry
                .get("dur")
                .and_then(json::Value::as_num)
                .ok_or_else(|| format!("event {i}: complete event missing `dur`"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative `dur` {dur}"));
            }
        }
        let track = (pid as u64, tid as u64);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(format!(
                    "event {i}: track ({},{}) timestamp went backwards ({ts} < {prev})",
                    track.0, track.1
                ));
            }
        }
        last_ts.insert(track, ts);
        counted += 1;
    }
    Ok(counted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(lane: u64, seq: u32, at_us: Option<u64>, dur_us: u64, kind: EventKind) -> Event {
        Event {
            lane,
            seq,
            parent: None,
            at_us,
            dur_us,
            kind,
        }
    }

    #[test]
    fn export_is_valid_and_resolves_inherit_timestamps() {
        let events = vec![
            event(
                0,
                0,
                Some(0),
                0,
                EventKind::OutageStart {
                    config: "MaxPerf".to_owned(),
                    technique: "RideThrough".to_owned(),
                    outage_us: 2_000_000,
                },
            ),
            event(0, 1, Some(500_000), 0, EventKind::BatteryDeplete),
            // Inherits 500_000 from the previous event.
            event(0, 2, None, 0, EventKind::DustSnap),
            // A segment recorded after its interior instants but starting
            // earlier — the exporter re-orders it by resolved time.
            event(
                0,
                3,
                Some(0),
                500_000,
                EventKind::SegmentCommit {
                    end_cause: "battery_depleted".to_owned(),
                    load_mw: 4_000_000,
                    throughput_pm: 1000,
                    in_downtime: false,
                },
            ),
            event(
                1 << 32,
                0,
                Some(7),
                0,
                EventKind::CacheHit {
                    digest: "0f".to_owned(),
                },
            ),
        ];
        let doc = export(&events);
        assert_eq!(validate(&doc).expect("valid trace"), 5);
        assert!(doc.contains("\"name\":\"seg:battery_depleted\""));
        assert!(doc.contains("\"name\":\"main\""));
        assert!(doc.contains("\"name\":\"task 1.0\""));
        let seg_pos = doc.find("seg:battery_depleted").unwrap();
        let deplete_pos = doc.find("battery_deplete\"").unwrap();
        assert!(
            seg_pos < deplete_pos,
            "segment starting at t=0 must sort before the t=500000 instant"
        );
    }

    #[test]
    fn validate_rejects_backwards_timestamps() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"i","pid":1,"tid":0,"ts":10,"s":"t","args":{}},
            {"name":"b","ph":"i","pid":1,"tid":0,"ts":9,"s":"t","args":{}}
        ]}"#;
        assert!(validate(doc).is_err());
    }

    #[test]
    fn validate_rejects_missing_fields_and_bad_json() {
        assert!(validate("{\"traceEvents\":{}}").is_err());
        assert!(validate("not json").is_err());
        let no_ts = r#"{"traceEvents":[{"name":"a","ph":"i","pid":1,"tid":0}]}"#;
        assert!(validate(no_ts).is_err());
    }

    #[test]
    fn empty_event_list_exports_a_valid_document() {
        let doc = export(&[]);
        assert_eq!(validate(&doc).expect("valid"), 0);
    }
}
