//! Bounded per-thread ring buffers and the global drain surface.
//!
//! Each recording thread owns one ring; rings register themselves in a
//! process-wide list on first use so [`drain_all`] can harvest events
//! recorded by threads that have since exited (fleet workers are scoped
//! and short-lived). A full ring drops its *oldest* event — the recorder
//! keeps the most recent history, like a real flight recorder — and
//! counts the drop so exporters can flag truncated traces.

use crate::event::Event;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Per-thread ring capacity. Far above any single exhibit's event count
/// (the Figure-5 sweep records a few thousand events total); a workload
/// that overflows it loses oldest-first and is flagged via [`dropped`].
pub(crate) const RING_CAPACITY: usize = 1 << 18;

type Ring = Arc<Mutex<VecDeque<Event>>>;

/// Locks a ring, recovering from poisoning: events are pushed whole and
/// the drain side only swaps the deque out, so a panicked holder cannot
/// leave a torn value.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide list of every thread's ring (living or orphaned).
fn rings() -> &'static Mutex<Vec<Ring>> {
    static RINGS: OnceLock<Mutex<Vec<Ring>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's ring, registered globally on first push.
    static LOCAL: RefCell<Option<Ring>> = const { RefCell::new(None) };
}

/// Appends one event to the calling thread's ring.
pub(crate) fn push(event: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring: Ring = Arc::new(Mutex::new(VecDeque::new()));
            lock(rings()).push(Arc::clone(&ring));
            ring
        });
        let mut buffer = lock(ring);
        if buffer.len() >= RING_CAPACITY {
            buffer.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        buffer.push_back(event);
    });
}

/// Takes every buffered event from every ring, sorted by `(lane, seq)` —
/// a total order that is a pure function of the recorded workload, not of
/// which thread recorded what.
pub(crate) fn drain_all() -> Vec<Event> {
    let mut events = Vec::new();
    for ring in lock(rings()).iter() {
        events.extend(std::mem::take(&mut *lock(ring)));
    }
    events.sort_by_key(|e| (e.lane, e.seq));
    events
}

/// Takes only the events recorded in `lane`, leaving everything else
/// buffered. Sorted by sequence number.
pub(crate) fn drain_lane(lane: u64) -> Vec<Event> {
    let mut events = Vec::new();
    for ring in lock(rings()).iter() {
        let mut buffer = lock(ring);
        let mut keep = VecDeque::with_capacity(buffer.len());
        for event in buffer.drain(..) {
            if event.lane == lane {
                events.push(event);
            } else {
                keep.push_back(event);
            }
        }
        *buffer = keep;
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Events discarded because a ring was full (0 in any healthy run).
pub(crate) fn dropped_count() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears every ring and the drop counter.
pub(crate) fn clear() {
    for ring in lock(rings()).iter() {
        lock(ring).clear();
    }
    DROPPED.store(0, Ordering::Relaxed);
}
