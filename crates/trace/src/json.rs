//! A minimal JSON reader used by [`crate::chrome::validate`] to check
//! exported traces without any external dependency. Parses the full JSON
//! grammar the exporter emits (objects, arrays, strings, numbers, bools,
//! null); numbers are read as `f64`, which is exact for every integer the
//! exporter writes (lanes stay below 2^53 by construction).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order is irrelevant to validation).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing content).
pub(crate) fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u16::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs never appear in exporter output
                        // (it only escapes control characters); reject them.
                        let c = char::from_u32(u32::from(code))
                            .ok_or_else(|| format!("surrogate \\u escape at byte {}", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                if let Some(c) = s.chars().next() {
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", *pos));
                    }
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_exporter_grammar() {
        let doc = r#"{"traceEvents":[{"name":"a \"b\"","ph":"i","pid":1,"tid":0,"ts":12,"args":{"ok":true,"n":-1.5e3,"z":null}}],"displayTimeUnit":"ms"}"#;
        let value = parse(doc).expect("parses");
        let events = value.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("name").and_then(Value::as_str),
            Some("a \"b\"")
        );
        assert_eq!(events[0].get("ts").and_then(Value::as_num), Some(12.0));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("n"))
                .and_then(Value::as_num),
            Some(-1500.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "tru", "\"open", "{}x"] {
            assert!(parse(doc).is_err(), "should reject: {doc}");
        }
    }
}
