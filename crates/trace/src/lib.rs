//! # dcb-trace
//!
//! A deterministic per-scenario **flight recorder** for the
//! underprovisioning framework: structured events ([`EventKind`]) with
//! causal parent links, buffered in bounded per-thread rings and exported
//! either as Chrome trace-event JSON ([`chrome`], Perfetto-loadable) or as
//! a human timeline ([`timeline`], the `repro explain` subcommand).
//!
//! Where `dcb-telemetry` counts work in aggregate, this crate records one
//! scenario's *causal interleaving* — DG ramp milestones, the battery
//! depletion instant, technique transitions, each committed kernel
//! segment with its end cause — which is exactly the structure the
//! paper's cost/performance/availability arguments hang on (why a point
//! is infeasible at 2 h is always "which event fired first").
//!
//! ## Determinism contract
//!
//! Timestamps are **virtual**: simulated microseconds, never the wall
//! clock. Tracks ("lanes") are a pure function of the workload, not of
//! scheduling: every fleet batch claims a contiguous lane block on the
//! *calling* thread (serial program order), and item `i` of the batch
//! records into lane `base + i` whichever worker runs it. Draining sorts
//! by `(lane, seq)`, so the exported trace is byte-identical across
//! `DCB_THREADS` settings for a fixed workload (asserted by a subprocess
//! test in `dcb-bench`).
//!
//! Events recorded *outside* any lane land in [`ROOT_LANE`], which is
//! only deterministic for single-threaded recording (the main thread);
//! instrumented model code always runs inside a batch lane or a
//! [`capture`] scope.
//!
//! ## Cost when disabled
//!
//! Recording is off by default. Every record site pays one relaxed atomic
//! load and a branch ([`enabled`]); event payloads are built inside
//! closures that never run while disabled. Enable with
//! `DCB_TRACE=chrome|timeline` (via [`init_from_env`]) at binary edges,
//! or programmatically with [`set_enabled`].
//!
//! ## Read fence
//!
//! Like telemetry, trace state lives outside result paths: model code may
//! *record* (the free functions here) but never read events back —
//! [`drain`], [`capture`], [`reset`], and the [`chrome`]/[`timeline`]
//! exporters are fenced to report edges by the `trace-in-result` audit
//! lint (DESIGN.md §8).
//!
//! ## Example
//!
//! ```
//! use dcb_trace as trace;
//!
//! trace::set_enabled(true);
//! let (sum, events) = trace::capture(|| {
//!     let root = trace::instant(Some(0), None, || trace::EventKind::OutageStart {
//!         config: "MaxPerf".to_owned(),
//!         technique: "RideThrough".to_owned(),
//!         outage_us: 1_000_000,
//!     });
//!     trace::complete(0, 1_000_000, root, || trace::EventKind::SegmentCommit {
//!         end_cause: "outage_end".to_owned(),
//!         load_mw: 4_000_000,
//!         throughput_pm: 1000,
//!         in_downtime: false,
//!     });
//!     2 + 2
//! });
//! trace::set_enabled(false);
//! assert_eq!(sum, 4);
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[1].parent, Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
mod json;
mod ring;
pub mod timeline;

pub use event::{Event, EventKind};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is currently enabled: the one relaxed load and
/// branch every record site pays when tracing is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Which exporter (if any) the binary should run at exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Recording disabled; no export.
    Off,
    /// Record and export Chrome trace-event JSON (Perfetto-loadable).
    Chrome,
    /// Record and render the human timeline to stdout.
    Timeline,
}

/// Parses the `DCB_TRACE` environment variable: `chrome` or `timeline`
/// (case-insensitive) select an exporter; anything else (or unset) is
/// [`TraceMode::Off`].
#[must_use]
pub fn mode_from_env() -> TraceMode {
    match std::env::var("DCB_TRACE") {
        Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
            "chrome" => TraceMode::Chrome,
            "timeline" => TraceMode::Timeline,
            _ => TraceMode::Off,
        },
        Err(_) => TraceMode::Off,
    }
}

/// Configures recording from `DCB_TRACE` and returns the selected mode.
/// Binaries call this once at startup.
pub fn init_from_env() -> TraceMode {
    let mode = mode_from_env();
    set_enabled(!matches!(mode, TraceMode::Off));
    mode
}

/// The default lane for events recorded outside any batch or capture
/// scope. Only deterministic for single-threaded recording.
pub const ROOT_LANE: u64 = 0;

/// Lanes per claimed batch block: batch `b`, item `i` → lane
/// `(b << 32) | i`.
const LANE_STRIDE: u64 = 1 << 32;

/// Monotone batch-block allocator; block 0 is [`ROOT_LANE`]'s.
static NEXT_BATCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's `(current lane, next sequence number)`.
    static LANE: Cell<(u64, u32)> = const { Cell::new((ROOT_LANE, 0)) };
}

/// The lane the calling thread currently records into.
#[must_use]
pub fn current_lane() -> u64 {
    LANE.with(|lane| lane.get().0)
}

/// Claims a contiguous block of `count` lanes for a batch and returns its
/// base lane, or `None` when tracing is disabled, the batch is empty or
/// oversized, or the caller is already inside a non-root lane (nested
/// batches inherit their enclosing lane instead of claiming).
///
/// Determinism rests on claims happening on one thread in program order —
/// which they do, because batch entry points (`run_all`, `monte_carlo`,
/// [`capture`]) claim *before* fanning out.
#[must_use]
pub fn claim_lanes(count: usize) -> Option<u64> {
    if !enabled() || count == 0 || count as u64 >= LANE_STRIDE {
        return None;
    }
    if current_lane() != ROOT_LANE {
        return None;
    }
    let batch = NEXT_BATCH.fetch_add(1, Ordering::Relaxed);
    batch.checked_mul(LANE_STRIDE)
}

/// Restores the previous lane (and its sequence cursor) on drop.
#[derive(Debug)]
pub struct LaneGuard {
    prev: Option<(u64, u32)>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            LANE.with(|lane| lane.set(prev));
        }
    }
}

/// Enters `lane` on the calling thread until the guard drops. Each unique
/// lane must be entered at most once per trace (sequence numbers restart
/// at 0 on entry); batch lanes satisfy this by construction.
#[must_use]
pub fn lane_scope(lane: u64) -> LaneGuard {
    if !enabled() {
        return LaneGuard { prev: None };
    }
    let prev = LANE.with(|cell| cell.replace((lane, 0)));
    LaneGuard { prev: Some(prev) }
}

/// Records one event in the current lane and returns its sequence number
/// (usable as a later event's `parent`), or `None` when disabled.
fn record(
    at_us: Option<u64>,
    dur_us: u64,
    parent: Option<u32>,
    make: impl FnOnce() -> EventKind,
) -> Option<u32> {
    if !enabled() {
        return None;
    }
    let (lane, seq) = LANE.with(|cell| {
        let (lane, seq) = cell.get();
        cell.set((lane, seq.wrapping_add(1)));
        (lane, seq)
    });
    ring::push(Event {
        lane,
        seq,
        parent,
        at_us,
        dur_us,
        kind: make(),
    });
    Some(seq)
}

/// Records an instantaneous event. `at_us` is the virtual timestamp in
/// simulated microseconds; `None` inherits the previous event's time in
/// the lane. The payload closure only runs while recording is enabled.
pub fn instant(
    at_us: Option<u64>,
    parent: Option<u32>,
    make: impl FnOnce() -> EventKind,
) -> Option<u32> {
    record(at_us, 0, parent, make)
}

/// Records a spanning event (`dur_us` of simulated time starting at
/// `at_us`). The payload closure only runs while recording is enabled.
pub fn complete(
    at_us: u64,
    dur_us: u64,
    parent: Option<u32>,
    make: impl FnOnce() -> EventKind,
) -> Option<u32> {
    record(Some(at_us), dur_us, parent, make)
}

/// Converts simulated seconds to the recorder's microsecond timestamps
/// (round-to-nearest; saturates at zero for negative inputs).
#[must_use]
pub fn micros(seconds: dcb_units::Seconds) -> u64 {
    let us = (seconds.value() * 1e6).round();
    if us.is_finite() && us > 0.0 {
        us as u64
    } else {
        0
    }
}

/// Takes every buffered event, sorted by `(lane, seq)`. A report-edge
/// read: fenced out of model code by the `trace-in-result` audit lint.
#[must_use]
pub fn drain() -> Vec<Event> {
    ring::drain_all()
}

/// Runs `f` inside a freshly claimed single-lane scope and returns its
/// result together with the events that lane recorded (everything else
/// stays buffered). The backbone of `repro explain`: capture one
/// scenario's causal timeline without disturbing the rest of the trace.
///
/// With tracing disabled — or when called from inside another lane — `f`
/// still runs, but the event list comes back empty. A report-edge read:
/// fenced out of model code by the `trace-in-result` audit lint.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let Some(base) = claim_lanes(1) else {
        return (f(), Vec::new());
    };
    let result = {
        let _guard = lane_scope(base);
        f()
    };
    (result, ring::drain_lane(base))
}

/// Events discarded because a ring filled up (0 in any healthy run).
#[must_use]
pub fn dropped() -> u64 {
    ring::dropped_count()
}

/// Clears every buffer, the drop counter, the calling thread's lane
/// state, and the batch allocator. A test/report edge helper — fenced out
/// of model code by the `trace-in-result` audit lint.
pub fn reset() {
    ring::clear();
    LANE.with(|lane| lane.set((ROOT_LANE, 0)));
    NEXT_BATCH.store(1, Ordering::Relaxed);
}

/// Serializes tests that toggle the process-wide enabled flag or reset
/// the recorder. Mirrors the `dcb-telemetry` test discipline.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_payloads_stay_lazy() {
        let _g = test_guard();
        set_enabled(false);
        let seq = instant(Some(0), None, || {
            unreachable!("payload built while disabled")
        });
        assert_eq!(seq, None);
        assert!(drain().is_empty());
    }

    #[test]
    fn sequence_numbers_and_parents_link_up() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        let root = instant(Some(0), None, || EventKind::DustSnap);
        let child = instant(None, root, || EventKind::BatteryDeplete);
        set_enabled(false);
        let events = drain();
        assert_eq!(root, Some(0));
        assert_eq!(child, Some(1));
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].parent, Some(0));
        assert_eq!(events[1].at_us, None, "inherit timestamps stay unresolved");
        reset();
    }

    #[test]
    fn lanes_isolate_and_capture_filters() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        instant(Some(5), None, || EventKind::DustSnap); // ROOT_LANE
        let (value, captured) = capture(|| {
            instant(Some(7), None, || EventKind::BatteryDeplete);
            42
        });
        set_enabled(false);
        assert_eq!(value, 42);
        assert_eq!(captured.len(), 1, "capture returns only its lane");
        assert!(matches!(captured[0].kind, EventKind::BatteryDeplete));
        assert_ne!(captured[0].lane, ROOT_LANE);
        let rest = drain();
        assert_eq!(rest.len(), 1, "root-lane event stays buffered");
        assert_eq!(rest[0].lane, ROOT_LANE);
        reset();
    }

    #[test]
    fn claims_are_contiguous_blocks_and_nested_claims_inherit() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        let a = claim_lanes(3).expect("top-level claim");
        let b = claim_lanes(1).expect("second claim");
        assert_ne!(a, b);
        {
            let _guard = lane_scope(a);
            assert_eq!(current_lane(), a);
            assert_eq!(claim_lanes(2), None, "nested claims inherit");
        }
        assert_eq!(current_lane(), ROOT_LANE);
        set_enabled(false);
        assert_eq!(claim_lanes(2), None, "disabled claims are free");
        reset();
    }

    #[test]
    fn micros_rounds_and_saturates() {
        let s = dcb_units::Seconds::new;
        assert_eq!(micros(s(0.0)), 0);
        assert_eq!(micros(s(-1.0)), 0);
        assert_eq!(micros(s(1.5e-6)), 2);
        assert_eq!(micros(s(25.0)), 25_000_000);
    }
}
