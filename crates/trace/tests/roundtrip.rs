//! Property tests for the canonical event line encoding: for arbitrary
//! events — including payload strings drawn from a hostile character pool
//! (quotes, backslashes, control characters, `=`, unicode) — `encode →
//! parse → re-encode` must reproduce the original event and the original
//! bytes exactly. This is the determinism keystone: byte-identical traces
//! across `DCB_THREADS` settings reduce to byte-identical per-event lines.

use dcb_trace::{chrome, Event, EventKind};
use proptest::prelude::*;

/// Characters the escaper must handle: every escape class plus benign
/// text, field-syntax look-alikes (`=`, space, `-`), and multi-byte
/// unicode.
const POOL: &[char] = &[
    'a', 'Z', '7', ' ', '"', '\\', '\n', '\t', '\u{1}', '\u{1f}', '=', '-', '{', '}', '±', '∞',
];

/// Builds a string of up to 12 pool characters from 64 selector bits.
fn string_from(bits: u64) -> String {
    let len = (bits % 13) as usize;
    let mut out = String::new();
    let mut cursor = bits;
    for _ in 0..len {
        cursor = cursor
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        out.push(POOL[(cursor >> 33) as usize % POOL.len()]);
    }
    out
}

/// Builds one of the event kinds from a selector and payload bits.
fn kind_from(selector: u8, bits: u64, number: u64) -> EventKind {
    match selector {
        0 => EventKind::OutageStart {
            config: string_from(bits),
            technique: string_from(bits.rotate_left(17)),
            outage_us: number,
        },
        1 => EventKind::DgRampPhase {
            phase: string_from(bits),
        },
        2 => EventKind::BatteryDeplete,
        3 => EventKind::TechniqueTransition {
            from: string_from(bits),
            to: string_from(bits.rotate_left(29)),
        },
        4 => EventKind::SegmentCommit {
            end_cause: string_from(bits),
            load_mw: number,
            throughput_pm: number % 1001,
            in_downtime: bits & 1 == 1,
        },
        5 => EventKind::DustSnap,
        6 => EventKind::CacheHit {
            digest: string_from(bits),
        },
        7 => EventKind::CacheMiss {
            digest: string_from(bits),
        },
        8 => EventKind::ShortfallRoot { bisections: number },
        9 => EventKind::Evaluate {
            config: string_from(bits),
            technique: string_from(bits.rotate_left(41)),
            feasible: bits & 1 == 0,
        },
        10 => EventKind::TopoResolve {
            level: string_from(bits),
            name: string_from(bits.rotate_left(11)),
            multiplicity: number,
            feasible: bits & 1 == 1,
        },
        11 => EventKind::TopoShed {
            level: string_from(bits),
            name: string_from(bits.rotate_left(23)),
            servers: number,
        },
        _ => EventKind::ComponentLane {
            component: string_from(bits),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    #[test]
    fn encode_parse_reencode_is_byte_identical(
        lane in 0u64..=u64::MAX,
        seq in 0u32..=u32::MAX,
        parent_bits in 0u64..=u64::MAX,
        at_bits in 0u64..=u64::MAX,
        dur in 0u64..=u64::MAX,
        selector in 0u8..13,
        bits in 0u64..=u64::MAX,
        number in 0u64..=u64::MAX,
    ) {
        let event = Event {
            lane,
            seq,
            parent: (parent_bits & 1 == 1).then_some((parent_bits >> 1) as u32),
            at_us: (at_bits & 1 == 1).then_some(at_bits >> 1),
            dur_us: dur,
            kind: kind_from(selector, bits, number),
        };
        let line = event.encode();
        let parsed = Event::parse(&line);
        prop_assert!(parsed.is_ok(), "canonical line failed to parse: {line:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &event);
        prop_assert_eq!(parsed.encode(), line);
    }

    #[test]
    fn arbitrary_event_sets_export_valid_chrome_traces(
        count in 0usize..40,
        seed in 0u64..=u64::MAX,
    ) {
        let mut cursor = seed;
        let mut next = || {
            cursor = cursor.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1442695040888963407);
            cursor
        };
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let bits = next();
            let number = next();
            let at = next();
            events.push(Event {
                // A few lanes so the exporter exercises multiple tracks.
                lane: (next() % 3) << 32,
                seq: i as u32,
                parent: (bits & 2 == 2).then_some((bits >> 2) as u32),
                // Bounded timestamps keep f64 round-trips in the validator exact.
                at_us: (at & 1 == 1).then_some((at >> 1) % (1 << 50)),
                dur_us: next() % (1 << 50),
                kind: kind_from((bits % 13) as u8, bits, number),
            });
        }
        let document = chrome::export(&events);
        let validated = chrome::validate(&document);
        prop_assert!(validated.is_ok(), "invalid trace: {:?}", validated);
        prop_assert_eq!(validated.unwrap(), events.len());
    }
}
