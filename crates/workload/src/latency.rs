//! Latency-constrained throughput (the metric of Table 7's interactive
//! workloads).
//!
//! Web-search and Specjbb don't report raw throughput: they report the
//! highest rate achievable "within a high-percentile latency constraint"
//! (§6). Under throttling, service times inflate by the stall-aware
//! slowdown, and queueing theory says the sustainable rate collapses
//! *faster* than the slowdown itself — an M/M/1 effect this module makes
//! explicit, complementing [`crate::Workload::throughput_at`]'s bare
//! capacity view.

use dcb_units::{Fraction, Seconds};

/// An M/M/1 latency model: exponential service at a rate scaled by the CPU
/// speed, a mean-response-time SLO.
///
/// ```
/// use dcb_workload::LatencyModel;
/// use dcb_units::{Fraction, Seconds};
///
/// // 2 ms service time against a 10 ms mean-latency SLO.
/// let m = LatencyModel::new(Seconds::new(0.002), Seconds::new(0.010));
/// // Full speed sustains 80% utilization within the SLO...
/// assert!((m.max_utilization_at(Fraction::ONE) - 0.8).abs() < 1e-9);
/// // ...and the SLO-constrained throughput collapses under halved speed.
/// assert!(m.constrained_throughput(Fraction::new(0.5)).value() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencyModel {
    service_time: Seconds,
    slo: Seconds,
}

impl LatencyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < service_time < slo` (otherwise even an idle
    /// system misses the SLO).
    #[must_use]
    pub fn new(service_time: Seconds, slo: Seconds) -> Self {
        assert!(
            service_time.value() > 0.0 && slo > service_time,
            "need 0 < service_time < slo"
        );
        Self { service_time, slo }
    }

    /// Web-search preset: 5 ms mean service, 25 ms mean-latency target.
    #[must_use]
    pub fn web_search() -> Self {
        Self::new(Seconds::new(0.005), Seconds::new(0.025))
    }

    /// Specjbb preset: 1 ms transactions, 4 ms target.
    #[must_use]
    pub fn specjbb() -> Self {
        Self::new(Seconds::new(0.001), Seconds::new(0.004))
    }

    /// Mean service time at full speed.
    #[must_use]
    pub fn service_time(&self) -> Seconds {
        self.service_time
    }

    /// The mean-response-time SLO.
    #[must_use]
    pub fn slo(&self) -> Seconds {
        self.slo
    }

    /// Mean M/M/1 response time at `speed` with arrival rate `load` given
    /// as a fraction of the full-speed service rate. Infinite when the
    /// queue is unstable.
    #[must_use]
    pub fn response_time(&self, speed: Fraction, load: Fraction) -> Seconds {
        if speed.is_zero() {
            return Seconds::new(f64::INFINITY);
        }
        let mu = speed.value() / self.service_time.value();
        let lambda = load.value() / self.service_time.value();
        if lambda >= mu {
            Seconds::new(f64::INFINITY)
        } else {
            Seconds::new(1.0 / (mu - lambda))
        }
    }

    /// Highest server utilization (`λ/μ`) that still meets the SLO at the
    /// given speed: `ρ ≤ 1 − service_time / (speed × slo)` — at full speed
    /// this is the familiar `1 − s/W` headroom rule.
    #[must_use]
    pub fn max_utilization_at(&self, speed: Fraction) -> f64 {
        if speed.is_zero() {
            return 0.0;
        }
        (1.0 - self.service_time.value() / (speed.value() * self.slo.value())).max(0.0)
    }

    /// SLO-constrained throughput at `speed`, normalized to the constrained
    /// throughput at full speed — the quantity the paper's
    /// "latency-constrained queries/sec" axis plots.
    #[must_use]
    pub fn constrained_throughput(&self, speed: Fraction) -> Fraction {
        let at = |s: f64| -> f64 {
            // λ_max = μ' − 1/slo, with μ' = speed / service_time.
            (s / self.service_time.value() - 1.0 / self.slo.value()).max(0.0)
        };
        let full = at(1.0);
        if full <= 0.0 {
            return Fraction::ZERO;
        }
        Fraction::new(at(speed.value()) / full)
    }

    /// The speed below which *no* load meets the SLO (service alone blows
    /// the budget): `speed < service_time / slo`.
    #[must_use]
    pub fn collapse_speed(&self) -> Fraction {
        Fraction::new(self.service_time.value() / self.slo.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn presets_are_sane() {
        for m in [LatencyModel::web_search(), LatencyModel::specjbb()] {
            assert!(m.max_utilization_at(Fraction::ONE) > 0.5);
            assert_eq!(m.constrained_throughput(Fraction::ONE), Fraction::ONE);
        }
    }

    #[test]
    fn latency_constraint_is_harsher_than_capacity() {
        // At 40% speed the SLO-constrained throughput must fall below the
        // raw capacity scaling (queueing amplifies the slowdown).
        let m = LatencyModel::web_search();
        let speed = Fraction::new(0.4);
        assert!(m.constrained_throughput(speed).value() < 0.4);
    }

    #[test]
    fn collapse_below_service_budget() {
        let m = LatencyModel::specjbb(); // collapse at 1/4 speed
        assert!((m.collapse_speed().value() - 0.25).abs() < 1e-12);
        assert_eq!(m.constrained_throughput(Fraction::new(0.2)), Fraction::ZERO);
        assert_eq!(m.max_utilization_at(Fraction::new(0.2)), 0.0);
    }

    #[test]
    fn response_time_unstable_queue_is_infinite() {
        let m = LatencyModel::web_search();
        assert!(m
            .response_time(Fraction::new(0.5), Fraction::new(0.6))
            .value()
            .is_infinite());
        assert!(m
            .response_time(Fraction::ZERO, Fraction::new(0.1))
            .value()
            .is_infinite());
    }

    #[test]
    #[should_panic(expected = "service_time < slo")]
    fn impossible_slo_rejected() {
        let _ = LatencyModel::new(Seconds::new(0.01), Seconds::new(0.005));
    }

    proptest! {
        #[test]
        fn constrained_throughput_monotone_in_speed(
            s1 in 0.0f64..=1.0,
            s2 in 0.0f64..=1.0,
        ) {
            let m = LatencyModel::web_search();
            let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(
                m.constrained_throughput(Fraction::new(hi))
                    >= m.constrained_throughput(Fraction::new(lo))
            );
        }

        #[test]
        fn response_time_meets_slo_at_max_utilization(speed in 0.3f64..=1.0) {
            let m = LatencyModel::web_search();
            let speed = Fraction::new(speed);
            let rho = m.max_utilization_at(speed);
            prop_assume!(rho > 0.0);
            // Load at the admissible boundary: λ = ρ·μ'.
            let load = Fraction::new(rho * speed.value());
            let w = m.response_time(speed, load);
            prop_assert!(w <= m.slo() + Seconds::new(1e-9), "W={w} at speed {speed:?}");
        }
    }
}
