//! Page-dirtying behaviour, driving migration and proactive techniques.

use dcb_units::{Gigabytes, MegabytesPerSecond};

/// How fast an application dirties memory, and how much dirty state remains
/// after the proactive (periodic-flush) techniques have been running.
///
/// * `dirty_rate` drives the convergence of pre-copy live migration: each
///   copy round must re-send pages dirtied during the previous round.
/// * `proactive_migration_residual` is the volatile state still unsynced at
///   the instant of a power failure under Remus-style periodic flushing to
///   a remote host (§5) — e.g. 10 GB of Specjbb's 18 GB (§6.2).
/// * `proactive_hibernate_residual` is the analogous residual for periodic
///   flushing to local disk; the paper measures a 22 % save-time reduction
///   for Specjbb (230 s → 179 s, Table 8), i.e. ~13.9 GB left to write.
///
/// ```
/// use dcb_workload::Workload;
/// let jbb = Workload::specjbb();
/// let p = jbb.dirty_profile();
/// assert!(p.proactive_migration_residual < jbb.memory_footprint());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DirtyProfile {
    /// Sustained page-dirtying rate during normal execution.
    pub dirty_rate: MegabytesPerSecond,
    /// Dirty state left to transfer at failure under proactive migration.
    pub proactive_migration_residual: Gigabytes,
    /// Dirty state left to persist at failure under proactive hibernation.
    pub proactive_hibernate_residual: Gigabytes,
}

impl DirtyProfile {
    /// Creates a profile, validating that residuals are non-negative.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative.
    #[must_use]
    pub fn new(
        dirty_rate: MegabytesPerSecond,
        proactive_migration_residual: Gigabytes,
        proactive_hibernate_residual: Gigabytes,
    ) -> Self {
        assert!(dirty_rate.value() >= 0.0, "dirty rate must be >= 0");
        assert!(
            proactive_migration_residual.value() >= 0.0
                && proactive_hibernate_residual.value() >= 0.0,
            "residuals must be >= 0"
        );
        Self {
            dirty_rate,
            proactive_migration_residual,
            proactive_hibernate_residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let p = DirtyProfile::new(
            MegabytesPerSecond::new(70.0),
            Gigabytes::new(10.0),
            Gigabytes::new(13.9),
        );
        assert_eq!(p.dirty_rate.value(), 70.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_rate_rejected() {
        let _ = DirtyProfile::new(
            MegabytesPerSecond::new(-1.0),
            Gigabytes::ZERO,
            Gigabytes::ZERO,
        );
    }
}
