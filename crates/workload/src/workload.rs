//! The workload parameter model and the paper's four calibrated instances.

use crate::{DirtyProfile, DowntimeRange, LoadProfile, RecoveryModel};
use core::fmt;
use dcb_units::{Fraction, Gigabytes, MegabytesPerSecond, Seconds};

/// Identifies one of the paper's benchmark workloads (Table 7), or a custom
/// parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadKind {
    /// SPECjbb2005 three-tier business logic with an in-memory database.
    Specjbb,
    /// Index-search component of a production search engine.
    WebSearch,
    /// In-memory key-value cache, read-only client mix.
    Memcached,
    /// SpecCPU2006 `mcf` × 8 instances — memory-intensive HPC.
    SpecCpu,
    /// A user-defined workload.
    Custom,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Specjbb => f.write_str("Specjbb"),
            Self::WebSearch => f.write_str("Web-search"),
            Self::Memcached => f.write_str("Memcached"),
            Self::SpecCpu => f.write_str("SpecCPU (mcf*8)"),
            Self::Custom => f.write_str("custom"),
        }
    }
}

/// A datacenter application model: everything the outage simulator needs to
/// know about how an application behaves under throttling, consolidation,
/// state saving, and state loss.
///
/// Construct the paper's workloads with [`Workload::specjbb`],
/// [`Workload::web_search`], [`Workload::memcached`] and
/// [`Workload::spec_cpu`]; derive variants with the `with_*` builders (used
/// by the §6.2 memory-size sensitivity study).
///
/// ```
/// use dcb_workload::Workload;
/// use dcb_units::Gigabytes;
///
/// // The §6.2 sensitivity study shrinks Specjbb's state.
/// let small = Workload::specjbb().with_memory_footprint(Gigabytes::new(6.0));
/// assert!(small.memory_footprint() < Workload::specjbb().memory_footprint());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    kind: WorkloadKind,
    memory_footprint: Gigabytes,
    hibernate_image: Gigabytes,
    hibernate_io_efficiency: Fraction,
    stall_fraction: Fraction,
    utilization: Fraction,
    dirty: DirtyProfile,
    recovery: RecoveryModel,
    remote_serve_fraction: Fraction,
    load_profile: Option<LoadProfile>,
}

impl Workload {
    /// All four paper workloads.
    #[must_use]
    pub fn paper_suite() -> Vec<Workload> {
        vec![
            Self::web_search(),
            Self::specjbb(),
            Self::memcached(),
            Self::spec_cpu(),
        ]
    }

    /// SPECjbb2005 (Table 7: 18 GB, latency-constrained ops/sec).
    ///
    /// Calibration: crash downtime ≈ 400 s for a 30 s outage (§6.1);
    /// hibernation save/resume 230 s / 157 s (Table 8); live migration
    /// ~10 min, proactive-migration residual 10 GB → ~5 min (§6.2).
    #[must_use]
    pub fn specjbb() -> Self {
        Self {
            kind: WorkloadKind::Specjbb,
            memory_footprint: Gigabytes::new(18.0),
            hibernate_image: Gigabytes::new(18.0),
            hibernate_io_efficiency: Fraction::ONE,
            // Mostly CPU-bound business logic: throttling hurts nearly 1:1.
            stall_fraction: Fraction::new(0.15),
            utilization: Fraction::new(0.9),
            dirty: DirtyProfile::new(
                MegabytesPerSecond::new(70.0),
                Gigabytes::new(10.0),
                Gigabytes::new(13.9),
            ),
            // Transactional logic cannot run against remote memory alone.
            remote_serve_fraction: Fraction::new(0.05),
            load_profile: None,
            recovery: RecoveryModel {
                // Process tree + tier re-creation.
                app_start: Seconds::new(60.0),
                // In-memory DB rebuild from persisted tables.
                reload: Gigabytes::new(18.0),
                reload_bandwidth: MegabytesPerSecond::new(120.0),
                // Throughput catch-up to the latency-constrained target.
                warmup: Seconds::new(40.0),
                recompute: DowntimeRange::exact(Seconds::ZERO),
            },
        }
    }

    /// Web-search index serving (Table 7: 40 GB in-memory index cache).
    ///
    /// Calibration: crash downtime ≈ 600 s for a 30 s outage — ~2 min
    /// restart, ~3.5 min index pre-population, 4–5 min warm-up (§6.2) —
    /// while hibernation achieves ≈ 400 s because the clean, file-backed
    /// index pages are *not* part of the hibernation image; only the ~18 GB
    /// anonymous heap is written and read back.
    #[must_use]
    pub fn web_search() -> Self {
        Self {
            kind: WorkloadKind::WebSearch,
            memory_footprint: Gigabytes::new(40.0),
            hibernate_image: Gigabytes::new(18.5),
            hibernate_io_efficiency: Fraction::ONE,
            // Pointer-chasing over the index: moderate memory stalls.
            stall_fraction: Fraction::new(0.35),
            utilization: Fraction::new(0.65),
            dirty: DirtyProfile::new(
                MegabytesPerSecond::new(30.0),
                Gigabytes::new(8.0),
                Gigabytes::new(6.0),
            ),
            // Read-only index lookups can be served from remote memory at
            // reduced rate (§7, RDMA over Sleep).
            remote_serve_fraction: Fraction::new(0.25),
            load_profile: None,
            recovery: RecoveryModel {
                app_start: Seconds::new(10.0),
                // Hot-index pre-population before the service opens.
                reload: Gigabytes::new(25.0),
                reload_bandwidth: MegabytesPerSecond::new(125.0),
                // "queries suffer poor performance ... during the first 4-5
                // minutes (warmup duration) which we report as additional
                // down time" (§6.2).
                warmup: Seconds::new(240.0),
                recompute: DowntimeRange::exact(Seconds::ZERO),
            },
        }
    }

    /// Memcached (Table 7: 20 GB, read-only client mix).
    ///
    /// Calibration: crash downtime ≈ 480 s for a 30 s outage, while
    /// hibernation takes ≈ 1140 s (§6.2) — the fully-resident, randomly
    /// touched slab heap hibernates with poor I/O efficiency, so losing the
    /// state and reloading from disk is *cheaper* than persisting it.
    #[must_use]
    pub fn memcached() -> Self {
        Self {
            kind: WorkloadKind::Memcached,
            memory_footprint: Gigabytes::new(20.0),
            hibernate_image: Gigabytes::new(20.0),
            // Scattered slab pages: the suspend image writes far below
            // sequential bandwidth.
            hibernate_io_efficiency: Fraction::new(0.37),
            // Dominated by random DRAM access latency: throttling is cheap
            // ("high memory-related CPU stalls for Memcached", §6.2).
            stall_fraction: Fraction::new(0.6),
            utilization: Fraction::new(0.5),
            dirty: DirtyProfile::new(
                MegabytesPerSecond::new(20.0),
                Gigabytes::new(3.0),
                Gigabytes::new(15.0),
            ),
            // GET-dominated traffic is the best case for remote memory
            // access over RDMA.
            remote_serve_fraction: Fraction::new(0.35),
            load_profile: None,
            recovery: RecoveryModel {
                app_start: Seconds::new(10.0),
                // KV reload from disk at random-read effective bandwidth.
                reload: Gigabytes::new(20.0),
                reload_bandwidth: MegabytesPerSecond::new(62.5),
                warmup: Seconds::ZERO,
                recompute: DowntimeRange::exact(Seconds::ZERO),
            },
        }
    }

    /// SpecCPU2006 `mcf` × 8 (Table 7: 16 GB, completion time).
    ///
    /// Calibration: on a crash the run loses everything since its start —
    /// "the impact on down time can span a large range for MinCost" (§6.2,
    /// Figure 9). We model a representative two-hour run segment, so the
    /// recompute range is 0–2 h.
    #[must_use]
    pub fn spec_cpu() -> Self {
        Self {
            kind: WorkloadKind::SpecCpu,
            memory_footprint: Gigabytes::new(16.0),
            hibernate_image: Gigabytes::new(16.0),
            hibernate_io_efficiency: Fraction::ONE,
            // mcf is notoriously memory-bound.
            stall_fraction: Fraction::new(0.5),
            utilization: Fraction::new(0.95),
            dirty: DirtyProfile::new(
                MegabytesPerSecond::new(80.0),
                Gigabytes::new(12.0),
                Gigabytes::new(14.0),
            ),
            // Batch computation cannot proceed with CPUs off.
            remote_serve_fraction: Fraction::ZERO,
            load_profile: None,
            recovery: RecoveryModel {
                app_start: Seconds::new(5.0),
                reload: Gigabytes::ZERO,
                reload_bandwidth: MegabytesPerSecond::new(100.0),
                warmup: Seconds::ZERO,
                recompute: DowntimeRange::spread(Seconds::ZERO, Seconds::from_hours(2.0)),
            },
        }
    }

    /// An *extension* workload beyond the paper's four: a write-heavy OLTP
    /// database. Included to exercise the opposite corner of the design
    /// space — a large, constantly-dirtied buffer pool that makes proactive
    /// techniques ineffective and crash recovery expensive (WAL replay).
    #[must_use]
    pub fn oltp_database() -> Self {
        Self {
            kind: WorkloadKind::Custom,
            memory_footprint: Gigabytes::new(48.0),
            hibernate_image: Gigabytes::new(48.0),
            hibernate_io_efficiency: Fraction::new(0.8),
            stall_fraction: Fraction::new(0.3),
            utilization: Fraction::new(0.8),
            dirty: DirtyProfile::new(
                // The buffer pool churns as fast as the NIC can copy:
                // pre-copy migration barely converges and proactive
                // flushing leaves most of the state dirty.
                MegabytesPerSecond::new(95.0),
                Gigabytes::new(40.0),
                Gigabytes::new(42.0),
            ),
            remote_serve_fraction: Fraction::new(0.1),
            recovery: RecoveryModel {
                app_start: Seconds::new(20.0),
                // Buffer-pool re-warm from storage.
                reload: Gigabytes::new(30.0),
                reload_bandwidth: MegabytesPerSecond::new(100.0),
                warmup: Seconds::new(120.0),
                // WAL replay of the un-checkpointed window.
                recompute: DowntimeRange::spread(Seconds::ZERO, Seconds::from_minutes(10.0)),
            },
            load_profile: None,
        }
    }

    /// Starts a custom workload from an existing one's parameters.
    #[must_use]
    pub fn custom_from(base: Workload) -> Self {
        Self {
            kind: WorkloadKind::Custom,
            ..base
        }
    }

    /// The workload's identity.
    #[must_use]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Resident volatile state (what live migration must move).
    #[must_use]
    pub fn memory_footprint(&self) -> Gigabytes {
        self.memory_footprint
    }

    /// Pages written by suspend-to-disk (may be smaller than the footprint
    /// when much of it is clean and file-backed).
    #[must_use]
    pub fn hibernate_image(&self) -> Gigabytes {
        self.hibernate_image
    }

    /// Fraction of sequential disk bandwidth the hibernation image achieves.
    #[must_use]
    pub fn hibernate_io_efficiency(&self) -> Fraction {
        self.hibernate_io_efficiency
    }

    /// The hibernation image inflated by its I/O inefficiency — feed this to
    /// [`dcb_server::TransitionTimes`]-style transfer-time models expecting
    /// sequential bandwidth.
    #[must_use]
    pub fn effective_hibernate_image(&self) -> Gigabytes {
        if self.hibernate_io_efficiency.is_zero() {
            Gigabytes::new(f64::INFINITY)
        } else {
            self.hibernate_image / self.hibernate_io_efficiency.value()
        }
    }

    /// The state volume a hibernation-style save must write: the full
    /// image, or the residual dirty set when the save was pre-staged
    /// proactively, inflated by its I/O inefficiency. This is the
    /// workload side of the simulator's save-time model — the kernel's
    /// technique controller consumes it instead of reassembling the
    /// quotient from the raw image fields.
    #[must_use]
    pub fn hibernate_write_volume(&self, proactive: bool) -> Gigabytes {
        let raw = if proactive {
            self.dirty.proactive_hibernate_residual
        } else {
            self.hibernate_image
        };
        if self.hibernate_io_efficiency.is_zero() {
            Gigabytes::new(f64::INFINITY)
        } else {
            raw / self.hibernate_io_efficiency.value()
        }
    }

    /// The state volume a live migration must move: the full resident
    /// footprint, or the residual dirty set when migration was
    /// pre-staged proactively. The workload side of the simulator's
    /// migration-plan coupling.
    #[must_use]
    pub fn migration_state(&self, proactive: bool) -> Gigabytes {
        if proactive {
            self.dirty.proactive_migration_residual
        } else {
            self.memory_footprint
        }
    }

    /// Fraction of execution time stalled on memory (insensitive to CPU
    /// frequency).
    #[must_use]
    pub fn stall_fraction(&self) -> Fraction {
        self.stall_fraction
    }

    /// Typical CPU utilization under normal load (drives power draw).
    ///
    /// With a [`LoadProfile`] attached this is the profile's *peak* — the
    /// value capacity must be sized against.
    #[must_use]
    pub fn utilization(&self) -> Fraction {
        match self.load_profile {
            Some(profile) => profile.peak(),
            None => self.utilization,
        }
    }

    /// CPU utilization at an absolute time: follows the attached
    /// [`LoadProfile`], or the constant calibrated value without one.
    #[must_use]
    pub fn utilization_at(&self, t: dcb_units::Seconds) -> Fraction {
        match self.load_profile {
            Some(profile) => profile.utilization_at(t),
            None => self.utilization,
        }
    }

    /// The attached load profile, if any.
    #[must_use]
    pub fn load_profile(&self) -> Option<LoadProfile> {
        self.load_profile
    }

    /// Builder: attach a time-varying load profile.
    #[must_use]
    pub fn with_load_profile(mut self, profile: LoadProfile) -> Self {
        self.load_profile = Some(profile);
        self
    }

    /// Builder: freeze the load at a constant utilization, dropping any
    /// attached profile (used by the simulator to resolve a diurnal profile
    /// at an outage's start time).
    #[must_use]
    pub fn with_constant_load(mut self, utilization: Fraction) -> Self {
        self.load_profile = None;
        self.utilization = utilization;
        self
    }

    /// Page-dirtying behaviour.
    #[must_use]
    pub fn dirty_profile(&self) -> DirtyProfile {
        self.dirty
    }

    /// Crash-recovery behaviour.
    #[must_use]
    pub fn recovery(&self) -> RecoveryModel {
        self.recovery
    }

    /// Fraction of normal throughput that can still be served from the
    /// application's memory by remote peers over RDMA while its CPUs sleep
    /// (the §7 "RDMA over Sleep" / barely-alive-server enhancement).
    #[must_use]
    pub fn remote_serve_fraction(&self) -> Fraction {
        self.remote_serve_fraction
    }

    /// Builder: override the remote-serve fraction.
    #[must_use]
    pub fn with_remote_serve_fraction(mut self, fraction: Fraction) -> Self {
        self.remote_serve_fraction = fraction;
        self
    }

    /// Normalized throughput when the CPU runs at `speed` and the
    /// application holds a `share` of its normal resources (consolidation).
    ///
    /// Uses the standard stall-aware slowdown model: execution time scales
    /// as `(1 − s)/speed + s` where `s` is the stall fraction, so
    /// memory-bound applications lose little to DVFS.
    #[must_use]
    pub fn throughput_at(&self, speed: Fraction, share: Fraction) -> Fraction {
        if speed.is_zero() || share.is_zero() {
            return Fraction::ZERO;
        }
        let s = self.stall_fraction.value();
        let slowdown = (1.0 - s) / speed.value() + s;
        Fraction::new(share.value() / slowdown)
    }

    /// Downtime if the application crashes `outage`-deep into a power loss
    /// on a server that takes `boot` to restart.
    #[must_use]
    pub fn crash_downtime(&self, outage: Seconds, boot: Seconds) -> DowntimeRange {
        self.recovery.crash_downtime(outage, boot)
    }

    /// Builder: override the memory footprint, scaling the hibernation
    /// image, reload volume, and proactive residuals proportionally (the
    /// §6.2 state-size sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if the current footprint is zero.
    #[must_use]
    pub fn with_memory_footprint(mut self, footprint: Gigabytes) -> Self {
        assert!(
            self.memory_footprint.is_positive(),
            "cannot scale a zero-footprint workload"
        );
        let ratio = footprint / self.memory_footprint;
        self.memory_footprint = footprint;
        self.hibernate_image = self.hibernate_image * ratio;
        self.dirty.proactive_migration_residual = self.dirty.proactive_migration_residual * ratio;
        self.dirty.proactive_hibernate_residual = self.dirty.proactive_hibernate_residual * ratio;
        self.recovery.reload = self.recovery.reload * ratio;
        self
    }

    /// Builder: override the stall fraction.
    #[must_use]
    pub fn with_stall_fraction(mut self, stall: Fraction) -> Self {
        self.stall_fraction = stall;
        self
    }

    /// Builder: override the utilization.
    #[must_use]
    pub fn with_utilization(mut self, utilization: Fraction) -> Self {
        self.utilization = utilization;
        self
    }

    /// Builder: override the dirty profile.
    #[must_use]
    pub fn with_dirty_profile(mut self, dirty: DirtyProfile) -> Self {
        self.dirty = dirty;
        self
    }

    /// Builder: override the recovery model.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryModel) -> Self {
        self.recovery = recovery;
        self
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.kind, self.memory_footprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table7_memory_footprints() {
        assert_eq!(
            Workload::web_search().memory_footprint(),
            Gigabytes::new(40.0)
        );
        assert_eq!(Workload::specjbb().memory_footprint(), Gigabytes::new(18.0));
        assert_eq!(
            Workload::memcached().memory_footprint(),
            Gigabytes::new(20.0)
        );
        assert_eq!(
            Workload::spec_cpu().memory_footprint(),
            Gigabytes::new(16.0)
        );
    }

    #[test]
    fn specjbb_crash_downtime_is_about_400s() {
        // §6.1: "as much as 400 seconds even for a short 30 seconds outage".
        let d = Workload::specjbb().crash_downtime(Seconds::new(30.0), Seconds::new(120.0));
        assert!(
            (d.expected.value() - 400.0).abs() < 10.0,
            "got {}",
            d.expected
        );
    }

    #[test]
    fn memcached_crash_downtime_is_about_480s() {
        let d = Workload::memcached().crash_downtime(Seconds::new(30.0), Seconds::new(120.0));
        assert!(
            (d.expected.value() - 480.0).abs() < 10.0,
            "got {}",
            d.expected
        );
    }

    #[test]
    fn web_search_crash_downtime_is_about_600s() {
        let d = Workload::web_search().crash_downtime(Seconds::new(30.0), Seconds::new(120.0));
        assert!(
            (d.expected.value() - 600.0).abs() < 15.0,
            "got {}",
            d.expected
        );
    }

    #[test]
    fn spec_cpu_crash_downtime_spans_large_range() {
        let d = Workload::spec_cpu().crash_downtime(Seconds::new(30.0), Seconds::new(120.0));
        assert!(!d.is_exact());
        assert!(d.max - d.min >= Seconds::from_hours(1.9));
    }

    #[test]
    fn throttling_order_matches_paper() {
        // §6.2: throttled performance Memcached > Web-search > Specjbb.
        let speed = Fraction::new(0.4);
        let mc = Workload::memcached().throughput_at(speed, Fraction::ONE);
        let ws = Workload::web_search().throughput_at(speed, Fraction::ONE);
        let jbb = Workload::specjbb().throughput_at(speed, Fraction::ONE);
        assert!(mc > ws && ws > jbb, "mc={mc:?} ws={ws:?} jbb={jbb:?}");
    }

    #[test]
    fn full_speed_full_share_is_full_throughput() {
        for w in Workload::paper_suite() {
            assert_eq!(w.throughput_at(Fraction::ONE, Fraction::ONE), Fraction::ONE);
            assert_eq!(
                w.throughput_at(Fraction::ZERO, Fraction::ONE),
                Fraction::ZERO
            );
        }
    }

    #[test]
    fn memcached_effective_image_is_inflated() {
        let mc = Workload::memcached();
        assert!(mc.effective_hibernate_image() > mc.hibernate_image());
    }

    #[test]
    fn memory_scaling_is_proportional() {
        let half = Workload::specjbb().with_memory_footprint(Gigabytes::new(9.0));
        assert_eq!(half.hibernate_image(), Gigabytes::new(9.0));
        assert_eq!(
            half.dirty_profile().proactive_migration_residual,
            Gigabytes::new(5.0)
        );
        assert_eq!(half.kind(), WorkloadKind::Specjbb);
    }

    #[test]
    fn oltp_extension_hits_the_opposite_corner() {
        let oltp = Workload::oltp_database();
        // Proactive migration buys almost nothing for OLTP...
        let ratio = oltp.dirty_profile().proactive_migration_residual / oltp.memory_footprint();
        assert!(ratio > 0.8, "residual ratio {ratio}");
        // ...while for Specjbb it cuts the state nearly in half.
        let jbb = Workload::specjbb();
        let jbb_ratio = jbb.dirty_profile().proactive_migration_residual / jbb.memory_footprint();
        assert!(jbb_ratio < 0.6);
        // Crash recovery carries a WAL-replay range.
        let crash = oltp.crash_downtime(Seconds::new(30.0), Seconds::new(120.0));
        assert!(!crash.is_exact());
    }

    #[test]
    fn load_profile_drives_time_varying_utilization() {
        use crate::LoadProfile;
        use dcb_units::Seconds;
        let w = Workload::web_search()
            .with_load_profile(LoadProfile::typical_diurnal(Fraction::new(0.65)));
        // Peak-hour utilization equals the calibrated peak...
        assert_eq!(w.utilization(), Fraction::new(0.65));
        // ...while the trough sits well below it.
        let trough = w.utilization_at(Seconds::from_hours(8.0));
        assert!(trough < Fraction::new(0.35));
        // Without a profile the value is constant.
        assert_eq!(
            Workload::web_search().utilization_at(Seconds::from_hours(8.0)),
            Workload::web_search().utilization()
        );
    }

    #[test]
    fn remote_serve_ordering_favors_read_caches() {
        assert!(
            Workload::memcached().remote_serve_fraction()
                > Workload::web_search().remote_serve_fraction()
        );
        assert_eq!(Workload::spec_cpu().remote_serve_fraction(), Fraction::ZERO);
    }

    #[test]
    fn custom_from_changes_kind_only() {
        let c = Workload::custom_from(Workload::specjbb());
        assert_eq!(c.kind(), WorkloadKind::Custom);
        assert_eq!(c.memory_footprint(), Workload::specjbb().memory_footprint());
    }

    proptest! {
        #[test]
        fn throughput_monotone_in_speed(
            s1 in 0.01f64..=1.0,
            s2 in 0.01f64..=1.0,
            share in 0.01f64..=1.0,
        ) {
            for w in Workload::paper_suite() {
                let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
                prop_assert!(
                    w.throughput_at(Fraction::new(hi), Fraction::new(share))
                        >= w.throughput_at(Fraction::new(lo), Fraction::new(share))
                );
            }
        }

        #[test]
        fn throughput_bounded_by_share(speed in 0.01f64..=1.0, share in 0.0f64..=1.0) {
            for w in Workload::paper_suite() {
                let t = w.throughput_at(Fraction::new(speed), Fraction::new(share));
                prop_assert!(t.value() <= share + 1e-12);
            }
        }
    }
}
