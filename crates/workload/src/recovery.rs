//! Crash-recovery timelines: what happens after volatile state is lost.
//!
//! §4 enumerates the overheads when servers lose power abruptly: (a)
//! re-initialization of server components, (b) consistency checks, (c)
//! reloading OS and application, (d) application-specific warm-ups, and (e)
//! re-computation of work committed to memory but not persisted. The
//! [`RecoveryModel`] composes these into a downtime estimate; where the
//! paper reports a *range* (SpecCPU's recompute depends on when in the run
//! the outage hits), the model yields a [`DowntimeRange`].

use dcb_units::{Gigabytes, MegabytesPerSecond, Seconds};

/// A downtime estimate with its best/worst-case spread.
///
/// ```
/// use dcb_workload::DowntimeRange;
/// use dcb_units::Seconds;
/// let d = DowntimeRange::exact(Seconds::new(400.0));
/// assert_eq!(d.expected, Seconds::new(400.0));
/// assert_eq!(d.min, d.max);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DowntimeRange {
    /// Best case.
    pub min: Seconds,
    /// Expected (mid) case.
    pub expected: Seconds,
    /// Worst case.
    pub max: Seconds,
}

impl DowntimeRange {
    /// A degenerate range: min = expected = max.
    #[must_use]
    pub fn exact(value: Seconds) -> Self {
        Self {
            min: value,
            expected: value,
            max: value,
        }
    }

    /// A range spanning `[min, max]` with the midpoint as expectation.
    ///
    /// # Panics
    ///
    /// Panics if `max < min`.
    #[must_use]
    pub fn spread(min: Seconds, max: Seconds) -> Self {
        assert!(max >= min, "downtime range inverted");
        Self {
            min,
            expected: (min + max) / 2.0,
            max,
        }
    }

    /// Adds a fixed offset to all three bounds.
    #[must_use]
    pub fn shift(self, offset: Seconds) -> Self {
        Self {
            min: self.min + offset,
            expected: self.expected + offset,
            max: self.max + offset,
        }
    }

    /// Whether the range is a single point.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.min == self.max
    }
}

/// The post-crash recovery behaviour of one application.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryModel {
    /// Process creation, library loading, socket re-establishment —
    /// overheads (a)–(c) of §4 beyond the OS boot itself.
    pub app_start: Seconds,
    /// Cold data re-fetched from persistent storage before the application
    /// can serve (Memcached's KV reload, Web-search's index pre-population).
    pub reload: Gigabytes,
    /// Effective reload bandwidth (often below raw disk bandwidth: random
    /// access, deserialization, index building).
    pub reload_bandwidth: MegabytesPerSecond,
    /// Application-specific warm-up after serving resumes, during which
    /// performance is so degraded the paper counts it as downtime
    /// (Web-search: 4–5 min of 30–50 % throughput loss, §6.2).
    pub warmup: Seconds,
    /// Re-computation of lost volatile work, as a best/worst range
    /// (SpecCPU may lose anywhere from nothing to its whole run so far).
    pub recompute: DowntimeRange,
}

impl RecoveryModel {
    /// A recovery model with no reload, warm-up, or recompute — just process
    /// restart.
    #[must_use]
    pub fn restart_only(app_start: Seconds) -> Self {
        Self {
            app_start,
            reload: Gigabytes::ZERO,
            reload_bandwidth: MegabytesPerSecond::new(100.0),
            warmup: Seconds::ZERO,
            recompute: DowntimeRange::exact(Seconds::ZERO),
        }
    }

    /// Time to re-fetch cold data.
    #[must_use]
    pub fn reload_time(&self) -> Seconds {
        if self.reload.is_zero() {
            Seconds::ZERO
        } else {
            self.reload.transfer_time(self.reload_bandwidth)
        }
    }

    /// Total downtime after a crash: the outage itself (no service while
    /// power is out), the OS boot once power returns, then application
    /// start, data reload, warm-up, and recompute.
    #[must_use]
    pub fn crash_downtime(&self, outage: Seconds, boot: Seconds) -> DowntimeRange {
        let fixed = outage + boot + self.app_start + self.reload_time() + self.warmup;
        let range = self.recompute.shift(fixed);
        dcb_telemetry::counter!("workload.recovery.events").incr();
        dcb_telemetry::histogram!("workload.recovery.downtime_s")
            .observe(range.expected.value().max(0.0) as u64);
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn restart_only_is_boot_plus_start() {
        let r = RecoveryModel::restart_only(Seconds::new(10.0));
        let d = r.crash_downtime(Seconds::new(30.0), Seconds::new(120.0));
        assert_eq!(d.expected, Seconds::new(160.0));
        assert!(d.is_exact());
    }

    #[test]
    fn reload_time_accounts_bandwidth() {
        let r = RecoveryModel {
            reload: Gigabytes::new(20.0),
            reload_bandwidth: MegabytesPerSecond::new(62.5),
            ..RecoveryModel::restart_only(Seconds::ZERO)
        };
        assert_eq!(r.reload_time(), Seconds::new(320.0));
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_spread_rejected() {
        let _ = DowntimeRange::spread(Seconds::new(2.0), Seconds::new(1.0));
    }

    proptest! {
        #[test]
        fn crash_downtime_exceeds_outage(
            outage in 0.0f64..7200.0,
            boot in 0.0f64..300.0,
            start in 0.0f64..300.0,
        ) {
            let r = RecoveryModel::restart_only(Seconds::new(start));
            let d = r.crash_downtime(Seconds::new(outage), Seconds::new(boot));
            prop_assert!(d.min >= Seconds::new(outage));
            prop_assert!(d.min <= d.expected && d.expected <= d.max);
        }
    }
}
