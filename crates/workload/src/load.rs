//! Time-varying load profiles.
//!
//! Datacenter load is diurnal: an outage hitting the 3 am trough stresses
//! the backup far less than one at the evening peak. The paper evaluates at
//! a fixed (peak-calibrated) load; this module adds the time dimension the
//! §7 capacity-planning discussion calls for ("Capacity planning could
//! depend on historic data about multiple application requirements").

use dcb_units::{Fraction, Seconds};

/// CPU-utilization as a function of time of day.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LoadProfile {
    /// Constant utilization (the paper's evaluation setting).
    Constant(Fraction),
    /// A sinusoidal day: `trough` at the quietest hour, `peak` twelve hours
    /// later.
    Diurnal {
        /// Utilization at the daily minimum.
        trough: Fraction,
        /// Utilization at the daily maximum.
        peak: Fraction,
        /// Hour of day (0–24) at which the peak occurs.
        peak_hour: f64,
    },
}

impl LoadProfile {
    /// Seconds per day.
    const DAY: f64 = 24.0 * 3600.0;

    /// A typical interactive-service day: 45 % at the 4 am trough rising to
    /// the given peak at 8 pm.
    #[must_use]
    pub fn typical_diurnal(peak: Fraction) -> Self {
        Self::Diurnal {
            trough: Fraction::new(peak.value() * 0.45),
            peak,
            peak_hour: 20.0,
        }
    }

    /// Utilization at an absolute time (wraps modulo 24 h).
    #[must_use]
    pub fn utilization_at(&self, t: Seconds) -> Fraction {
        match *self {
            Self::Constant(u) => u,
            Self::Diurnal {
                trough,
                peak,
                peak_hour,
            } => {
                let phase = (t.value() / Self::DAY - peak_hour / 24.0) * std::f64::consts::TAU;
                let level = (phase.cos() + 1.0) / 2.0; // 1 at peak hour, 0 at trough
                Fraction::new(trough.value() + (peak.value() - trough.value()) * level)
            }
        }
    }

    /// The profile's maximum utilization (what backup power must be sized
    /// against).
    #[must_use]
    pub fn peak(&self) -> Fraction {
        match *self {
            Self::Constant(u) => u,
            Self::Diurnal { peak, .. } => peak,
        }
    }

    /// The profile's minimum utilization.
    #[must_use]
    pub fn trough(&self) -> Fraction {
        match *self {
            Self::Constant(u) => u,
            Self::Diurnal { trough, .. } => trough,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_profile_is_flat() {
        let p = LoadProfile::Constant(Fraction::new(0.7));
        assert_eq!(p.utilization_at(Seconds::ZERO), Fraction::new(0.7));
        assert_eq!(
            p.utilization_at(Seconds::from_hours(13.0)),
            Fraction::new(0.7)
        );
        assert_eq!(p.peak(), p.trough());
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let p = LoadProfile::typical_diurnal(Fraction::new(0.9));
        let at_peak = p.utilization_at(Seconds::from_hours(20.0));
        let at_trough = p.utilization_at(Seconds::from_hours(8.0));
        assert!((at_peak.value() - 0.9).abs() < 1e-9);
        assert!((at_trough.value() - 0.405).abs() < 1e-9);
    }

    #[test]
    fn profile_wraps_across_days() {
        let p = LoadProfile::typical_diurnal(Fraction::new(0.8));
        let day1 = p.utilization_at(Seconds::from_hours(20.0));
        let day5 = p.utilization_at(Seconds::from_hours(20.0 + 4.0 * 24.0));
        assert!((day1.value() - day5.value()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn diurnal_bounded_by_trough_and_peak(hours in 0.0f64..500.0) {
            let p = LoadProfile::typical_diurnal(Fraction::new(0.9));
            let u = p.utilization_at(Seconds::from_hours(hours));
            prop_assert!(u >= p.trough() && u <= p.peak());
        }
    }
}
