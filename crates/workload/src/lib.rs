//! Analytic models of the paper's four datacenter workloads.
//!
//! The evaluation (§6) runs four applications with deliberately different
//! reliance on the backup infrastructure (Table 7):
//!
//! | workload   | memory | metric                      | character |
//! |------------|--------|-----------------------------|-----------|
//! | Web-search | 40 GB  | latency-constrained QPS     | read-only index cache; crash is very costly (reload + warm-up) |
//! | Specjbb    | 18 GB  | latency-constrained ops/s   | in-memory DB with modified data; recompute on loss |
//! | Memcached  | 20 GB  | queries/second              | read-only KV cache; crash-reload *cheaper* than hibernate |
//! | SpecCPU    | 16 GB  | completion time (mcf × 8)   | HPC; loses hours of computation on crash |
//!
//! The physical benchmarks are not rerun here; instead each workload is a
//! parameter set — memory footprint, hibernation image size and layout
//! efficiency, CPU-stall fraction (throttling sensitivity), page-dirtying
//! rate (migration convergence), and a crash-recovery timeline — calibrated
//! to every per-workload number the paper reports (§6.1–6.2, Table 8). The
//! simulator in `dcb-sim` composes these with the server and power models.
//!
//! # Examples
//!
//! ```
//! use dcb_workload::Workload;
//! use dcb_units::Fraction;
//!
//! let memcached = Workload::memcached();
//! let specjbb = Workload::specjbb();
//! // Memcached is memory-stall bound, so DVFS throttling costs it much
//! // less throughput than CPU-bound Specjbb (§6.2).
//! let speed = Fraction::new(0.4);
//! assert!(
//!     memcached.throughput_at(speed, Fraction::ONE)
//!         > specjbb.throughput_at(speed, Fraction::ONE)
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dirty;
mod latency;
mod load;
mod recovery;
mod workload;

pub use dirty::DirtyProfile;
pub use latency::LatencyModel;
pub use load::LoadProfile;
pub use recovery::{DowntimeRange, RecoveryModel};
pub use workload::{Workload, WorkloadKind};
