//! Aggregation invariance: resolving N explicit identical subtrees must be
//! **bit-identical** to resolving the collapsed 1-node × N form, results
//! must not depend on `DCB_THREADS`, and the deficit machinery (priority
//! shedding, brownout, survivor boost) must behave as specified.

use dcb_fleet::FleetPool;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, Technique};
use dcb_topology::{
    resolve, resolve_with, Aggregation, Consumer, DeficitPolicy, Level, Node, Topology,
};
use dcb_units::Seconds;
use dcb_workload::Workload;
use proptest::prelude::*;

fn workloads() -> [Workload; 4] {
    [
        Workload::specjbb(),
        Workload::web_search(),
        Workload::memcached(),
        Workload::spec_cpu(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The explicit form (every copy spelled out) and the aggregated form
    /// (multiplicity counts) of the same uniform DC resolve to the same
    /// `TopologyOutcome`, bit for bit — stats included.
    #[test]
    fn explicit_and_aggregated_forms_are_bit_identical(
        clusters in 1u32..4,
        racks in 1u32..30,
        config_ix in 0usize..9,
        technique_ix in 0usize..16,
        workload_ix in 0usize..4,
        duration in 30.0f64..7200.0,
    ) {
        let config = BackupConfig::table3().swap_remove(config_ix);
        let technique = Technique::extended_catalog().swap_remove(technique_ix);
        let aggregated = Topology::uniform(
            clusters,
            racks,
            workloads()[workload_ix],
            config,
            technique,
        );
        let explicit = aggregated.expand();
        let outage = Seconds::new(duration);
        let from_aggregated = resolve(&aggregated, outage).expect("aggregated resolves");
        let from_explicit = resolve(&explicit, outage).expect("explicit resolves");
        prop_assert_eq!(from_aggregated, from_explicit);
    }

    /// Thread count is invisible: 1, 2, and 8 workers give identical
    /// results (the fleet pool preserves submission order).
    #[test]
    fn results_are_thread_count_invariant(
        racks in 1u32..50,
        config_ix in 0usize..9,
        technique_ix in 0usize..16,
        duration in 60.0f64..3600.0,
    ) {
        let config = BackupConfig::table3().swap_remove(config_ix);
        let technique = Technique::extended_catalog().swap_remove(technique_ix);
        // Mix two workloads so several distinct leaf jobs actually fan out.
        let web = Node::consumer(
            "web",
            Level::Rack,
            Consumer::new(Cluster::rack(Workload::web_search()), technique.clone()),
        )
        .times(racks);
        let batch = Node::consumer(
            "batch",
            Level::Rack,
            Consumer::new(Cluster::rack(Workload::spec_cpu()), technique),
        )
        .times(racks);
        let root = Node::group(
            "dc",
            Level::Datacenter,
            vec![Node::group("cluster", Level::Cluster, vec![web, batch])],
        )
        .with_backup(config);
        let topology = Topology::new(root);
        let outage = Seconds::new(duration);
        let single = resolve_with(&topology, outage, &FleetPool::with_threads(1), Aggregation::Collapsed)
            .expect("resolves");
        for threads in [2, 8] {
            let pool = FleetPool::with_threads(threads);
            let multi = resolve_with(&topology, outage, &pool, Aggregation::Collapsed)
                .expect("resolves");
            prop_assert_eq!(&single, &multi, "threads={}", threads);
        }
    }
}

/// Two racks behind a feed edge that only carries one rack's demand: the
/// lower-priority rack is shed, the higher-priority rack is served, and
/// the stats account for both.
#[test]
fn deficit_sheds_lowest_priority_first() {
    let serve_first = Node::consumer(
        "frontend",
        Level::Rack,
        Consumer::new(
            Cluster::rack(Workload::web_search()),
            Technique::ride_through(),
        )
        .with_priority(0),
    );
    let shed_first = Node::consumer(
        "batch",
        Level::Rack,
        Consumer::new(
            Cluster::rack(Workload::spec_cpu()),
            Technique::ride_through(),
        )
        .with_priority(5),
    );
    let rack_demand = Cluster::rack(Workload::web_search()).peak_power();
    let cluster = Node::group("cluster", Level::Cluster, vec![shed_first, serve_first])
        .with_feed_capacity(rack_demand);
    let root =
        Node::group("dc", Level::Datacenter, vec![cluster]).with_backup(BackupConfig::max_perf());
    let outcome = resolve(&Topology::new(root), Seconds::new(600.0)).expect("resolves");

    assert_eq!(outcome.stats.served_servers, 16, "frontend survives");
    assert_eq!(outcome.stats.shed_servers, 16, "batch is shed");
    assert_eq!(outcome.stats.shed_events, 1);
    assert!(outcome.aggregate.state_lost, "shed racks crash");
    let rack_level = outcome
        .levels
        .iter()
        .find(|level| level.level == Level::Rack)
        .expect("rack level reported");
    assert_eq!(rack_level.shed_servers, 16);
}

/// A consumer with a brownout policy and an allocation above the floor
/// degrades to its fallback technique instead of being shed.
#[test]
fn brownout_policy_degrades_instead_of_shedding() {
    let rack_demand = Cluster::rack(Workload::web_search()).peak_power();
    let serve = Node::consumer(
        "frontend",
        Level::Rack,
        Consumer::new(
            Cluster::rack(Workload::web_search()),
            Technique::ride_through(),
        )
        .with_priority(0),
    );
    let brown = Node::consumer(
        "batch",
        Level::Rack,
        Consumer::new(
            Cluster::rack(Workload::web_search()),
            Technique::ride_through(),
        )
        .with_priority(5)
        .with_deficit_policy(DeficitPolicy::Brownout(Technique::throttle_deepest())),
    );
    // 1.5 racks of feed: frontend full, batch at 50% — exactly the floor.
    let cluster = Node::group("cluster", Level::Cluster, vec![serve, brown])
        .with_feed_capacity(rack_demand * 1.5);
    let root =
        Node::group("dc", Level::Datacenter, vec![cluster]).with_backup(BackupConfig::max_perf());
    let outcome = resolve(&Topology::new(root), Seconds::new(600.0)).expect("resolves");

    assert_eq!(outcome.stats.served_servers, 16);
    assert_eq!(outcome.stats.browned_out_servers, 16);
    assert_eq!(outcome.stats.shed_servers, 0);
    assert_eq!(outcome.stats.shed_events, 0);
}

/// Flat (fully expanded) and aggregated resolution agree on every boolean
/// and within float tolerance on the blended continuous metrics.
#[test]
fn flat_and_aggregated_resolutions_agree() {
    let topology = Topology::uniform(
        5,
        40,
        Workload::specjbb(),
        BackupConfig::dg_small_pups(),
        Technique::sleep(),
    );
    let outage = Seconds::new(1800.0);
    let aggregated = resolve(&topology, outage).expect("aggregated resolves");
    let flat = resolve_with(&topology, outage, &FleetPool::new(), Aggregation::Flat)
        .expect("flat resolves");

    assert_eq!(aggregated.aggregate.feasible, flat.aggregate.feasible);
    assert_eq!(aggregated.aggregate.state_lost, flat.aggregate.state_lost);
    assert_eq!(aggregated.aggregate.final_state, flat.aggregate.final_state);
    assert_eq!(aggregated.aggregate.downtime, flat.aggregate.downtime);
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-12);
    assert!(
        rel(
            aggregated.aggregate.peak_power.value(),
            flat.aggregate.peak_power.value()
        ) < 1e-9
    );
    assert!(
        rel(
            aggregated.aggregate.energy.value(),
            flat.aggregate.energy.value()
        ) < 1e-9
    );
    assert!(
        rel(
            aggregated.aggregate.perf_during_outage.value(),
            flat.aggregate.perf_during_outage.value(),
        ) < 1e-9
    );

    // Both account for the same fleet, but aggregation does far less work.
    assert_eq!(aggregated.stats.explicit_nodes, flat.stats.explicit_nodes);
    assert_eq!(
        aggregated.stats.implied_leaf_sims,
        flat.stats.implied_leaf_sims
    );
    assert!(aggregated.stats.resolved_nodes < flat.stats.resolved_nodes / 10);
    assert!(aggregated.stats.collapse_ratio() > 10.0);
}

/// The collapse ratio grows with the fleet: a 100k-rack DC resolves in a
/// handful of node-steps.
#[test]
fn collapse_ratio_scales_to_large_fleets() {
    let topology = Topology::uniform(
        100,
        1000,
        Workload::memcached(),
        BackupConfig::max_perf(),
        Technique::ride_through(),
    );
    let outcome = resolve(&topology, Seconds::new(300.0)).expect("resolves");
    assert_eq!(outcome.stats.explicit_nodes, 1 + 100 + 100_000);
    assert_eq!(outcome.stats.distinct_leaf_sims, 1);
    assert!(outcome.stats.resolved_nodes <= 10);
    assert!(outcome.stats.collapse_ratio() > 10_000.0);
    assert_eq!(outcome.stats.implied_leaf_sims, 100_000);
    let leaf = dcb_sim::OutageSim::new(
        Cluster::rack(Workload::memcached()),
        BackupConfig::max_perf(),
        Technique::ride_through(),
    )
    .run(Seconds::new(300.0));
    let expected_peak = leaf.peak_power * 100_000.0;
    let rel = (outcome.aggregate.peak_power.value() - expected_peak.value()).abs()
        / expected_peak.value().max(1e-12);
    assert!(rel < 1e-9, "fleet peak is the leaf peak times the fleet");
}

/// Validation errors surface through the resolver entry points.
#[test]
fn invalid_topologies_are_rejected_by_resolve() {
    let uncovered = Topology::new(Node::group(
        "dc",
        Level::Datacenter,
        vec![Node::consumer(
            "rack",
            Level::Rack,
            Consumer::new(
                Cluster::rack(Workload::specjbb()),
                Technique::ride_through(),
            ),
        )],
    ));
    assert!(resolve(&uncovered, Seconds::new(60.0)).is_err());
}
