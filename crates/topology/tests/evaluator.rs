//! The leaf-evaluation seam: injecting an evaluator must be transparent
//! when it is the default kernel, observable when it is not.

use std::sync::atomic::{AtomicU64, Ordering};

use dcb_fleet::FleetPool;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, SimOutcome, Technique};
use dcb_topology::{
    resolve, resolve_with_evaluator, Aggregation, Consumer, KernelEvaluator, LeafEvaluator,
    LeafRun, Level, Node, Topology,
};
use dcb_units::Seconds;
use dcb_workload::Workload;

/// A small two-workload DC: two distinct leaf classes behind one domain.
fn mixed_dc(racks: u32) -> Topology {
    let web = Node::consumer(
        "web",
        Level::Rack,
        Consumer::new(
            Cluster::rack(Workload::web_search()),
            Technique::hibernate(),
        ),
    )
    .times(racks);
    let batch = Node::consumer(
        "batch",
        Level::Rack,
        Consumer::new(
            Cluster::rack(Workload::spec_cpu()),
            Technique::ride_through(),
        ),
    )
    .times(racks);
    let root = Node::group("dc", Level::Datacenter, vec![web, batch])
        .with_backup(BackupConfig::large_e_ups());
    Topology::new(root)
}

/// Counts seam crossings while delegating to the default kernel.
struct CountingEvaluator {
    calls: AtomicU64,
}

impl LeafEvaluator for CountingEvaluator {
    fn evaluate(&self, run: &LeafRun, outage: Seconds) -> SimOutcome {
        self.calls.fetch_add(1, Ordering::Relaxed);
        KernelEvaluator.evaluate(run, outage)
    }
}

/// An evaluator whose verdict the stitcher must propagate: every leaf is
/// reported infeasible with lost state.
struct Pessimist;

impl LeafEvaluator for Pessimist {
    fn evaluate(&self, run: &LeafRun, outage: Seconds) -> SimOutcome {
        let mut outcome = KernelEvaluator.evaluate(run, outage);
        outcome.feasible = false;
        outcome.state_lost = true;
        outcome
    }
}

#[test]
fn injecting_the_kernel_evaluator_is_bit_identical_to_resolve() {
    let topology = mixed_dc(12);
    let outage = Seconds::new(1800.0);
    let default = resolve(&topology, outage).expect("default resolves");
    let injected = resolve_with_evaluator(
        &topology,
        outage,
        &FleetPool::new(),
        Aggregation::Collapsed,
        &KernelEvaluator,
    )
    .expect("injected resolves");
    assert_eq!(default, injected);
}

#[test]
fn every_distinct_leaf_class_crosses_the_seam_exactly_once() {
    let topology = mixed_dc(12);
    let evaluator = CountingEvaluator {
        calls: AtomicU64::new(0),
    };
    let outcome = resolve_with_evaluator(
        &topology,
        Seconds::new(600.0),
        &FleetPool::new(),
        Aggregation::Collapsed,
        &evaluator,
    )
    .expect("counting resolves");
    assert_eq!(
        evaluator.calls.load(Ordering::Relaxed),
        outcome.stats.distinct_leaf_sims,
        "seam crossings must equal deduplicated leaf sims"
    );
    assert!(outcome.stats.distinct_leaf_sims >= 2, "two classes planned");
}

#[test]
fn the_stitcher_consumes_the_injected_verdicts() {
    let topology = mixed_dc(4);
    let outcome = resolve_with_evaluator(
        &topology,
        Seconds::new(600.0),
        &FleetPool::new(),
        Aggregation::Collapsed,
        &Pessimist,
    )
    .expect("pessimist resolves");
    assert!(!outcome.aggregate.feasible, "AND over infeasible leaves");
    assert!(outcome.aggregate.state_lost, "OR over lost state");
}
