//! Differential guarantee: a degenerate single-path topology is the flat
//! kernel scenario, and its resolved aggregate must match
//! [`OutageSim::run`] **bit-for-bit** — every field, every float.
//!
//! Mirrors the harness shape of `crates/sim/tests/differential.rs`: an
//! exhaustive sweep over the Table-3 configuration grid × the extended
//! technique catalog × representative outage durations, plus a proptest
//! over randomly drawn grid points and durations.

use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, Technique};
use dcb_topology::{resolve, resolve_flat, Topology};
use dcb_units::Seconds;
use dcb_workload::Workload;
use proptest::prelude::*;

fn workloads() -> [Workload; 4] {
    [
        Workload::specjbb(),
        Workload::web_search(),
        Workload::memcached(),
        Workload::spec_cpu(),
    ]
}

/// The full Table-3 × extended-catalog × duration grid (9 × 16 × 3 per
/// workload): the topology aggregate equals the kernel outcome exactly.
#[test]
fn single_path_matches_kernel_bit_for_bit() {
    let durations = [30.0, 1800.0, 7200.0];
    let mut points = 0u32;
    for workload in workloads() {
        let cluster = Cluster::rack(workload);
        for config in BackupConfig::table3() {
            for technique in Technique::extended_catalog() {
                for duration in durations {
                    let outage = Seconds::new(duration);
                    let expected =
                        OutageSim::new(cluster, config.clone(), technique.clone()).run(outage);
                    let topology =
                        Topology::single_path(cluster, config.clone(), technique.clone());
                    let outcome = resolve(&topology, outage).expect("single path resolves");
                    assert_eq!(
                        outcome.aggregate,
                        expected,
                        "config={config} technique={} outage={duration}s",
                        technique.name()
                    );
                    points += 1;
                }
            }
        }
    }
    assert_eq!(points, 4 * 9 * 16 * 3, "the sweep must cover the full grid");
}

/// A single-path topology needs exactly one kernel run and no shedding.
#[test]
fn single_path_stats_are_degenerate() {
    let topology = Topology::single_path(
        Cluster::rack(Workload::specjbb()),
        BackupConfig::max_perf(),
        Technique::ride_through(),
    );
    let outcome = resolve(&topology, Seconds::new(600.0)).expect("resolves");
    assert_eq!(outcome.stats.distinct_leaf_sims, 1);
    assert_eq!(outcome.stats.implied_leaf_sims, 1);
    assert_eq!(outcome.stats.shed_events, 0);
    assert_eq!(outcome.stats.shed_servers, 0);
    assert_eq!(outcome.stats.served_servers, 16);
    assert_eq!(outcome.stats.explicit_nodes, 3);
    // Three levels reported: datacenter, cluster, rack.
    assert_eq!(outcome.levels.len(), 3);
    assert!(outcome.levels.iter().all(|level| level.shed_servers == 0));
}

/// Flat (expanded) resolution of a single path is the identity transform,
/// so it must also be bit-exact.
#[test]
fn single_path_flat_resolution_is_also_exact() {
    for technique in Technique::catalog() {
        let cluster = Cluster::rack(Workload::web_search());
        let outage = Seconds::new(900.0);
        let expected =
            OutageSim::new(cluster, BackupConfig::small_pups(), technique.clone()).run(outage);
        let topology = Topology::single_path(cluster, BackupConfig::small_pups(), technique);
        let outcome = resolve_flat(&topology, outage).expect("resolves");
        assert_eq!(outcome.aggregate, expected);
    }
}

proptest! {
    /// Random grid points: any (config, technique, workload, duration)
    /// combination agrees exactly, including off-grid durations.
    #[test]
    fn random_single_paths_agree(
        config_ix in 0usize..9,
        technique_ix in 0usize..16,
        workload_ix in 0usize..4,
        duration in 30.0f64..7200.0,
    ) {
        let config = BackupConfig::table3().swap_remove(config_ix);
        let technique = Technique::extended_catalog().swap_remove(technique_ix);
        let cluster = Cluster::rack(workloads()[workload_ix]);
        let outage = Seconds::new(duration);
        let expected = OutageSim::new(cluster, config.clone(), technique.clone()).run(outage);
        let topology = Topology::single_path(cluster, config, technique);
        let outcome = resolve(&topology, outage).expect("resolves");
        prop_assert_eq!(outcome.aggregate, expected);
    }
}
