//! The aggregated deficit-sharing resolver.
//!
//! Resolution runs in three deterministic passes:
//!
//! 1. **Plan** (top-down, no simulation): starting at each node that
//!    provisions backup (a *supply domain*), nameplate power budgets flow
//!    down the tree. A node whose grant or feed-edge capacity falls short
//!    of its subtree's nameplate demand is *in deficit*: siblings are
//!    served in priority order (ties by document order), identical copies
//!    split into fully-served / partially-served / unpowered classes, and
//!    each under-served consumer either *browns out* to its fallback
//!    technique (if the allocation covers at least [`BROWNOUT_FLOOR`] of
//!    nameplate) or is *shed*. Because allocation depends only on static
//!    nameplate demands, the plan for N identical copies is computed once.
//! 2. **Simulate**: every distinct leaf class becomes one kernel run
//!    ([`dcb_sim::OutageSim`]), deduplicated by stable digest and fanned
//!    out over a [`dcb_fleet::FleetPool`] (order-preserving, so results
//!    are `DCB_THREADS`-invariant). Served leaves run their technique
//!    against their proportional slice of the domain's backup; when a
//!    domain shed load, survivors draw the shed share of the *shared
//!    storage* too (the boosted slice — the deficit-sharing semantics);
//!    shed leaves crash with no usable backup runtime.
//! 3. **Stitch** (bottom-up): leaf outcomes scale by multiplicity
//!    (extensive metrics multiply, intensive metrics copy) and blend
//!    across heterogeneous siblings (capacity-weighted performance, worst
//!    downtime, any-state-loss, all-feasible).
//!
//! A degenerate single-path topology takes only the fast no-deficit path,
//! where the leaf job is exactly [`dcb_sim::OutageSim::run`] and every
//! stitch step is a verbatim copy — so its aggregate is bit-identical to
//! the flat kernel's [`SimOutcome`].

use crate::digest::collapse;
use crate::evaluate::{BackupShare, KernelEvaluator, LeafEvaluator, LeafRun};
use crate::node::{Body, Consumer, DeficitPolicy, Level, Node, Topology, TopologyError};
use crate::outcome::{LevelReport, ResolveStats, TopologyOutcome};
use dcb_fleet::{FleetPool, StableHasher};
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, FinalState, SimOutcome, Technique};
use dcb_trace::EventKind;
use dcb_units::{Fraction, Seconds, WattHours, Watts};
use dcb_workload::DowntimeRange;
use std::collections::BTreeMap;

/// The smallest fraction of nameplate demand a brownout allocation must
/// cover. The paper's low-power operating points sit near half of peak,
/// so below one half a degraded consumer cannot hold even its brownout
/// technique and is shed instead.
pub const BROWNOUT_FLOOR: Fraction = Fraction::HALF;

/// Which representation the resolver works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Canonicalize first ([`collapse`]): identical subtrees resolve once.
    Collapsed,
    /// Naive flat expansion: every copy resolves individually (the
    /// baseline the topology bench measures aggregation against).
    Flat,
}

/// Resolves `topology` through one outage of length `outage`, with
/// aggregation, on a default fleet pool (honours `DCB_THREADS`).
///
/// # Errors
///
/// Returns the [`TopologyError`] of the first structural invariant the
/// topology violates.
pub fn resolve(topology: &Topology, outage: Seconds) -> Result<TopologyOutcome, TopologyError> {
    resolve_with(topology, outage, &FleetPool::new(), Aggregation::Collapsed)
}

/// Resolves without aggregation: every explicit node is visited and every
/// leaf copy simulated individually. Same semantics as [`resolve`] up to
/// floating-point association order in heterogeneous blends.
///
/// # Errors
///
/// Returns the [`TopologyError`] of the first structural invariant the
/// topology violates.
pub fn resolve_flat(
    topology: &Topology,
    outage: Seconds,
) -> Result<TopologyOutcome, TopologyError> {
    resolve_with(topology, outage, &FleetPool::new(), Aggregation::Flat)
}

/// Full-control entry point: explicit pool and aggregation mode.
///
/// # Errors
///
/// Returns the [`TopologyError`] of the first structural invariant the
/// topology violates.
pub fn resolve_with(
    topology: &Topology,
    outage: Seconds,
    pool: &FleetPool,
    aggregation: Aggregation,
) -> Result<TopologyOutcome, TopologyError> {
    resolve_with_evaluator(topology, outage, pool, aggregation, &KernelEvaluator)
}

/// Resolves with an injected [`LeafEvaluator`]: the planner and stitcher
/// run unchanged, but every distinct leaf class is evaluated through the
/// given seam instead of the default engine-hosted kernel.
///
/// # Errors
///
/// Returns the [`TopologyError`] of the first structural invariant the
/// topology violates.
pub fn resolve_with_evaluator<E: LeafEvaluator + ?Sized>(
    topology: &Topology,
    outage: Seconds,
    pool: &FleetPool,
    aggregation: Aggregation,
    evaluator: &E,
) -> Result<TopologyOutcome, TopologyError> {
    topology.validate()?;
    let _span = dcb_telemetry::span("topo.resolve");
    let tree = match aggregation {
        Aggregation::Collapsed => collapse(&topology.root),
        Aggregation::Flat => topology.expand().root,
    };
    let mut planner = Planner::new();
    planner.stats.explicit_nodes = topology.root.explicit_nodes();
    let plan = planner.plan_node(&tree, None, tree.demand(), 1, 1);
    planner.materialize_jobs();
    planner.stats.distinct_leaf_sims = planner.jobs.len() as u64;

    let results: Vec<SimOutcome> =
        pool.run_all(&planner.jobs, |job| evaluator.evaluate(job, outage));

    let lanes = dcb_trace::claim_lanes(Level::ALL.len());
    let mut stitcher = Stitcher {
        planner: &planner,
        results: &results,
        outage,
        record: lanes.is_some(),
        events: Vec::new(),
        levels: BTreeMap::new(),
    };
    let root_part = stitcher.stitch(&plan);
    stitcher.emit_lanes(lanes);

    let levels = stitcher
        .levels
        .into_values()
        .map(LevelAcc::into_report)
        .collect();
    let stats = planner.stats;
    dcb_telemetry::counter!("topo.resolve.runs").incr();
    dcb_telemetry::counter!("topo.nodes.explicit").add(stats.explicit_nodes);
    dcb_telemetry::counter!("topo.nodes.resolved").add(stats.resolved_nodes);
    dcb_telemetry::counter!("topo.leaf.sims").add(stats.distinct_leaf_sims);
    dcb_telemetry::counter!("topo.shed.events").add(stats.shed_events);
    dcb_telemetry::counter!("topo.shed.servers").add(stats.shed_servers);
    dcb_telemetry::histogram!("topo.collapse.ratio_x100")
        .observe((stats.collapse_ratio() * 100.0) as u64);
    if dcb_prof::enabled() {
        let _resolve = dcb_prof::frame("topo-resolve");
        dcb_prof::record(dcb_prof::WorkKind::NodeSteps, stats.resolved_nodes);
    }

    Ok(TopologyOutcome {
        aggregate: root_part.outcome,
        levels,
        stats,
    })
}

/// Stable fingerprint of a planned leaf run, used to deduplicate
/// identical jobs within one resolve.
fn job_digest(run: &LeafRun) -> u128 {
    let mut hasher = StableHasher::new();
    hasher.write_debug(run);
    hasher.finish()
}

/// One supply domain: the subtree under a backup-provisioning node.
#[derive(Debug)]
struct Domain {
    config: Option<BackupConfig>,
    /// Nameplate demand of one copy of the domain node.
    nameplate: Watts,
    /// Nameplate demand shed within one copy (drives the survivor boost).
    shed_demand: Watts,
    pending: Vec<PendingLeaf>,
    /// Pending index → global job index, filled by `materialize_jobs`.
    job_of: Vec<usize>,
}

impl Domain {
    fn new(config: Option<BackupConfig>, nameplate: Watts) -> Self {
        Self {
            config,
            nameplate,
            shed_demand: Watts::ZERO,
            pending: Vec::new(),
            job_of: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct PendingLeaf {
    cluster: Cluster,
    technique: Technique,
    shed: bool,
}

/// The plan for one (possibly aggregated) node.
struct PlanNode<'a> {
    node: &'a Node,
    /// How many times this whole context repeats globally (product of
    /// ancestor class copies).
    scale: u64,
    classes: Vec<PlanClass<'a>>,
}

/// One allocation class: `copies` identical copies of the node sharing
/// the same per-copy allocation.
struct PlanClass<'a> {
    copies: u64,
    kind: ClassKind<'a>,
}

enum ClassKind<'a> {
    Leaf {
        domain: usize,
        pending: usize,
        shed: bool,
    },
    Group {
        children: Vec<PlanNode<'a>>,
    },
}

struct Planner {
    stats: ResolveStats,
    domains: Vec<Domain>,
    jobs: Vec<LeafRun>,
}

impl Planner {
    fn new() -> Self {
        Self {
            stats: ResolveStats::default(),
            domains: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Plans `node` given a total grant covering all its copies at this
    /// position. `scale` counts how many times the position repeats
    /// globally; `wcopies` counts repeats *within one copy of the
    /// enclosing supply domain* (the multiplier for per-copy shed
    /// accounting).
    fn plan_node<'a>(
        &mut self,
        node: &'a Node,
        domain: Option<usize>,
        grant_total: Watts,
        scale: u64,
        wcopies: u64,
    ) -> PlanNode<'a> {
        let mult = u64::from(node.multiplicity);

        // A backup node opens its own supply domain and is self-powered at
        // nameplate: grants from above describe the (now dead) grid feed.
        if let Some(config) = &node.backup {
            let domain_id = self.domains.len();
            self.domains
                .push(Domain::new(Some(config.clone()), node.unit_demand()));
            self.stats.resolved_nodes += 1;
            let kind = self.plan_body(node, domain_id, node.unit_demand(), scale * mult, 1);
            return PlanNode {
                node,
                scale,
                classes: vec![PlanClass { copies: mult, kind }],
            };
        }

        let Some(domain_id) = domain else {
            // Above all domains there is no supply to allocate: pure
            // grouping (validate guarantees no consumer lives here).
            self.stats.resolved_nodes += 1;
            let kind = self.plan_body_ungoverned(node, scale * mult);
            return PlanNode {
                node,
                scale,
                classes: vec![PlanClass { copies: mult, kind }],
            };
        };

        let unit_demand = node.unit_demand();
        let want = match node.feed_capacity {
            Some(capacity) => capacity.min(unit_demand),
            None => unit_demand,
        };

        // Fast path: the grant covers every copy. One class at `want`
        // (which still carries an interior deficit when the feed edge
        // caps below nameplate). Grants in this regime are exact copies
        // of demands, so the comparison involves no arithmetic slack.
        if grant_total >= node.demand() {
            self.stats.resolved_nodes += 1;
            let kind = self.plan_body(node, domain_id, want, scale * mult, wcopies * mult);
            return PlanNode {
                node,
                scale,
                classes: vec![PlanClass { copies: mult, kind }],
            };
        }

        // Deficit: concentrate the grant — serve as many copies fully as
        // possible, give one copy the remainder, cut the rest.
        let mut classes = Vec::new();
        let available = grant_total.min(want * mult as f64);
        let full = (mult as f64).min((available / want).floor()) as u64;
        if full > 0 {
            self.stats.resolved_nodes += 1;
            let kind = self.plan_body(node, domain_id, want, scale * full, wcopies * full);
            classes.push(PlanClass { copies: full, kind });
        }
        let leftover = available - want * full as f64;
        let mut assigned = full;
        if leftover.is_positive() && full < mult {
            self.stats.resolved_nodes += 1;
            let kind = self.plan_body(node, domain_id, leftover, scale, wcopies);
            classes.push(PlanClass { copies: 1, kind });
            assigned += 1;
        }
        if assigned < mult {
            let rest = mult - assigned;
            self.stats.resolved_nodes += 1;
            let kind = self.plan_body(node, domain_id, Watts::ZERO, scale * rest, wcopies * rest);
            classes.push(PlanClass { copies: rest, kind });
        }
        PlanNode {
            node,
            scale,
            classes,
        }
    }

    /// Plans one copy's interior under a per-copy allocation. `class_scale`
    /// is the global repeat count of this copy; `wcopies` its repeat count
    /// within one copy of the enclosing domain.
    fn plan_body<'a>(
        &mut self,
        node: &'a Node,
        domain_id: usize,
        alloc: Watts,
        class_scale: u64,
        wcopies: u64,
    ) -> ClassKind<'a> {
        match &node.body {
            Body::Consumer(consumer) => {
                self.plan_leaf(consumer, domain_id, alloc, class_scale, wcopies)
            }
            Body::Group(children) => {
                let unit_demand = node.unit_demand();
                if alloc >= unit_demand {
                    let planned = children
                        .iter()
                        .map(|child| {
                            self.plan_node(
                                child,
                                Some(domain_id),
                                child.demand(),
                                class_scale,
                                wcopies,
                            )
                        })
                        .collect();
                    return ClassKind::Group { children: planned };
                }
                // Priority-ordered grants (stable sort: ties keep document
                // order), then plan in document order so sibling layout —
                // and with it stat/trace ordering — stays representation-
                // independent.
                let mut order: Vec<usize> = (0..children.len()).collect();
                order.sort_by_key(|&i| children[i].priority());
                let mut grants = vec![Watts::ZERO; children.len()];
                let mut remaining = alloc;
                for &i in &order {
                    let grant = children[i].demand().min(remaining);
                    grants[i] = grant;
                    remaining -= grant;
                }
                let planned = children
                    .iter()
                    .zip(grants)
                    .map(|(child, grant)| {
                        self.plan_node(child, Some(domain_id), grant, class_scale, wcopies)
                    })
                    .collect();
                ClassKind::Group { children: planned }
            }
        }
    }

    /// Decides one consumer class's fate under its allocation: serve,
    /// brown out, or shed.
    fn plan_leaf<'a>(
        &mut self,
        consumer: &Consumer,
        domain_id: usize,
        alloc: Watts,
        class_scale: u64,
        wcopies: u64,
    ) -> ClassKind<'a> {
        let demand = consumer.cluster.peak_power();
        let servers = u64::from(consumer.cluster.size()) * class_scale;
        self.stats.implied_leaf_sims += class_scale;
        let (technique, shed) = if alloc >= demand {
            self.stats.served_servers += servers;
            (consumer.technique.clone(), false)
        } else {
            match &consumer.on_deficit {
                DeficitPolicy::Brownout(fallback) if alloc >= demand * BROWNOUT_FLOOR.value() => {
                    self.stats.browned_out_servers += servers;
                    (fallback.clone(), false)
                }
                _ => {
                    self.stats.shed_events += 1;
                    self.stats.shed_servers += servers;
                    // The shed nameplate feeds the survivor boost; both it
                    // and the domain nameplate are per-domain-copy values,
                    // hence the within-domain multiplier.
                    self.domains[domain_id].shed_demand += demand * wcopies as f64;
                    (Technique::crash(), true)
                }
            }
        };
        let pending = self.domains[domain_id].pending.len();
        self.domains[domain_id].pending.push(PendingLeaf {
            cluster: consumer.cluster,
            technique,
            shed,
        });
        ClassKind::Leaf {
            domain: domain_id,
            pending,
            shed,
        }
    }

    /// Plans grouping structure that sits above every supply domain.
    fn plan_body_ungoverned<'a>(&mut self, node: &'a Node, class_scale: u64) -> ClassKind<'a> {
        match &node.body {
            // Unreachable for validated topologies (a consumer above all
            // domains fails `validate`); planned as shed defensively.
            Body::Consumer(consumer) => {
                let domain_id = self.domains.len();
                self.domains
                    .push(Domain::new(None, consumer.cluster.peak_power()));
                self.plan_leaf(consumer, domain_id, Watts::ZERO, class_scale, 1)
            }
            Body::Group(children) => ClassKind::Group {
                children: children
                    .iter()
                    .map(|child| self.plan_node(child, None, child.demand(), class_scale, 1))
                    .collect(),
            },
        }
    }

    /// Converts pending leaves into deduplicated jobs, assigning each
    /// domain's survivor share (boosted when the domain shed load).
    fn materialize_jobs(&mut self) {
        let jobs = &mut self.jobs;
        let mut index: BTreeMap<u128, usize> = BTreeMap::new();
        for domain in &mut self.domains {
            let headroom = domain.nameplate - domain.shed_demand;
            let share = if domain.shed_demand.is_zero() || !headroom.is_positive() {
                BackupShare::Proportional
            } else {
                BackupShare::Boosted(domain.nameplate / headroom)
            };
            let job_of: Vec<usize> = domain
                .pending
                .iter()
                .map(|leaf| {
                    let job = if leaf.shed {
                        LeafRun::Shed {
                            cluster: leaf.cluster,
                        }
                    } else {
                        LeafRun::Serve {
                            cluster: leaf.cluster,
                            config: domain.config.clone().unwrap_or_else(BackupConfig::min_cost),
                            technique: leaf.technique.clone(),
                            share: share.clone(),
                        }
                    };
                    *index.entry(job_digest(&job)).or_insert_with(|| {
                        jobs.push(job);
                        jobs.len() - 1
                    })
                })
                .collect();
            domain.job_of = job_of;
        }
    }
}

/// The bottom-up combination pass: leaf outcomes → class parts → node
/// parts, with per-level accounting and buffered trace events.
struct Stitcher<'a> {
    planner: &'a Planner,
    results: &'a [SimOutcome],
    outage: Seconds,
    record: bool,
    /// Buffered `(level index, duration µs, event)` rows: each level's
    /// lane may only be entered once per trace, so events are emitted
    /// level by level after the walk.
    events: Vec<(usize, u64, EventKind)>,
    levels: BTreeMap<usize, LevelAcc>,
}

impl Stitcher<'_> {
    fn stitch(&mut self, plan: &PlanNode<'_>) -> Part {
        let mut class_parts = Vec::with_capacity(plan.classes.len());
        let mut shed_servers = 0u64;
        for class in &plan.classes {
            let unit = match &class.kind {
                ClassKind::Leaf {
                    domain,
                    pending,
                    shed,
                } => {
                    let leaf = &self.planner.domains[*domain].pending[*pending];
                    if *shed {
                        let servers = u64::from(leaf.cluster.size()) * plan.scale * class.copies;
                        shed_servers += servers;
                        if self.record {
                            self.events.push((
                                plan.node.level.index(),
                                0,
                                EventKind::TopoShed {
                                    level: plan.node.level.name().to_owned(),
                                    name: plan.node.name.clone(),
                                    servers,
                                },
                            ));
                        }
                    }
                    let job = self.planner.domains[*domain].job_of[*pending];
                    Part {
                        outcome: self.results[job].clone(),
                        nameplate: leaf.cluster.peak_power(),
                    }
                }
                ClassKind::Group { children } => {
                    let parts: Vec<Part> =
                        children.iter().map(|child| self.stitch(child)).collect();
                    combine(&parts)
                }
            };
            class_parts.push(scale_part(unit, class.copies));
        }
        let part = combine(&class_parts);

        if self.record {
            self.events.push((
                plan.node.level.index(),
                dcb_trace::micros(self.outage),
                EventKind::TopoResolve {
                    level: plan.node.level.name().to_owned(),
                    name: plan.node.name.clone(),
                    multiplicity: plan.scale * u64::from(plan.node.multiplicity),
                    feasible: part.outcome.feasible,
                },
            ));
        }

        let acc = self
            .levels
            .entry(plan.node.level.index())
            .or_insert_with(|| LevelAcc::new(plan.node.level));
        acc.resolved_nodes += plan.classes.len() as u64;
        acc.explicit_nodes += plan.scale * u64::from(plan.node.multiplicity);
        acc.servers += plan.node.servers() * plan.scale;
        acc.shed_servers += shed_servers;
        acc.observe(&part.outcome);
        part
    }

    /// Replays the buffered events, one lane per topology level.
    fn emit_lanes(&self, lanes: Option<u64>) {
        let Some(base) = lanes else { return };
        for level in Level::ALL {
            let rows: Vec<_> = self
                .events
                .iter()
                .filter(|(index, _, _)| *index == level.index())
                .collect();
            if rows.is_empty() {
                continue;
            }
            let _lane = dcb_trace::lane_scope(base + level.index() as u64);
            for (_, dur_us, kind) in rows {
                if *dur_us == 0 {
                    let _ = dcb_trace::instant(Some(0), None, || kind.clone());
                } else {
                    let _ = dcb_trace::complete(0, *dur_us, None, || kind.clone());
                }
            }
        }
    }
}

/// A node aggregate plus the nameplate weight it blends with.
struct Part {
    outcome: SimOutcome,
    nameplate: Watts,
}

/// Scales extensive metrics by a copy count; intensive metrics are shared
/// by every identical copy. `n == 1` is the identity (bit-exact).
fn scale_part(part: Part, n: u64) -> Part {
    if n == 1 {
        return part;
    }
    let f = n as f64;
    Part {
        outcome: SimOutcome {
            peak_power: part.outcome.peak_power * f,
            energy: part.outcome.energy * f,
            ..part.outcome
        },
        nameplate: part.nameplate * f,
    }
}

/// Blends sibling parts. A single part passes through verbatim (the
/// degenerate single-path case stays bit-exact); heterogeneous parts sum
/// extensive metrics, weight performance by nameplate capacity, take the
/// worst downtime and final state, AND feasibility, and OR state loss.
fn combine(parts: &[Part]) -> Part {
    if let [only] = parts {
        return Part {
            outcome: only.outcome.clone(),
            nameplate: only.nameplate,
        };
    }
    debug_assert!(!parts.is_empty(), "validate rejects empty groups");
    let nameplate: Watts = parts.iter().map(|p| p.nameplate).sum();
    let peak_power: Watts = parts.iter().map(|p| p.outcome.peak_power).sum();
    let energy: WattHours = parts.iter().map(|p| p.outcome.energy).sum();
    let weighted_perf: f64 = parts
        .iter()
        .map(|p| p.nameplate.value() * p.outcome.perf_during_outage.value())
        .sum();
    let worst = parts
        .iter()
        .max_by(|a, b| {
            a.outcome
                .downtime
                .expected
                .total_cmp(&b.outcome.downtime.expected)
        })
        .unwrap_or(&parts[0]);
    let final_state = parts
        .iter()
        .map(|p| p.outcome.final_state)
        .max_by_key(|state| severity(*state))
        .unwrap_or(FinalState::Serving);
    let outcome = SimOutcome {
        outage: parts[0].outcome.outage,
        feasible: parts.iter().all(|p| p.outcome.feasible),
        state_lost: parts.iter().any(|p| p.outcome.state_lost),
        peak_power,
        peak_power_fraction: Fraction::new(if nameplate.is_positive() {
            peak_power.value() / nameplate.value()
        } else {
            0.0
        }),
        energy,
        perf_during_outage: Fraction::new(if nameplate.is_positive() {
            weighted_perf / nameplate.value()
        } else {
            0.0
        }),
        downtime: worst.outcome.downtime,
        downtime_during_outage: worst.outcome.downtime_during_outage,
        final_state,
    };
    Part { outcome, nameplate }
}

/// Severity order for blending terminal states: the aggregate reports the
/// worst fate any member met.
fn severity(state: FinalState) -> u8 {
    match state {
        FinalState::Serving => 0,
        FinalState::Sleeping => 1,
        FinalState::EnteringSleep => 2,
        FinalState::Migrating => 3,
        FinalState::Saving => 4,
        FinalState::Hibernated => 5,
        FinalState::Recovering => 6,
        FinalState::Crashed => 7,
    }
}

/// Per-level accumulation during the stitch pass.
struct LevelAcc {
    level: Level,
    resolved_nodes: u64,
    explicit_nodes: u64,
    servers: u64,
    shed_servers: u64,
    worst_downtime: Option<DowntimeRange>,
    min_perf: Option<Fraction>,
}

impl LevelAcc {
    fn new(level: Level) -> Self {
        Self {
            level,
            resolved_nodes: 0,
            explicit_nodes: 0,
            servers: 0,
            shed_servers: 0,
            worst_downtime: None,
            min_perf: None,
        }
    }

    fn observe(&mut self, outcome: &SimOutcome) {
        let worse = match &self.worst_downtime {
            Some(current) => {
                outcome.downtime.expected.total_cmp(&current.expected)
                    == core::cmp::Ordering::Greater
            }
            None => true,
        };
        if worse {
            self.worst_downtime = Some(outcome.downtime);
        }
        self.min_perf = Some(match self.min_perf {
            Some(current) => current.min(outcome.perf_during_outage),
            None => outcome.perf_during_outage,
        });
    }

    fn into_report(self) -> LevelReport {
        LevelReport {
            level: self.level,
            resolved_nodes: self.resolved_nodes,
            explicit_nodes: self.explicit_nodes,
            servers: self.servers,
            shed_servers: self.shed_servers,
            worst_downtime: self
                .worst_downtime
                .unwrap_or_else(|| DowntimeRange::exact(Seconds::ZERO)),
            min_perf: self.min_perf.unwrap_or(Fraction::ONE),
        }
    }
}
