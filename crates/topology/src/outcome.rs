//! Resolution results: the aggregate outcome, per-level reports, and
//! resolver statistics.

use crate::node::Level;
use dcb_sim::SimOutcome;
use dcb_units::Fraction;
use dcb_workload::DowntimeRange;

/// Work accounting for one resolution.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ResolveStats {
    /// Nodes the fully expanded tree would have.
    pub explicit_nodes: u64,
    /// Node-steps the resolver actually took (aggregated representation).
    pub resolved_nodes: u64,
    /// Leaf simulations implied by the tree (counting multiplicities).
    pub implied_leaf_sims: u64,
    /// Distinct kernel simulations actually run after deduplication.
    pub distinct_leaf_sims: u64,
    /// Deficit events: allocation decisions that shed at least one copy.
    pub shed_events: u64,
    /// Servers served at their chosen technique.
    pub served_servers: u64,
    /// Servers degraded to their brownout technique.
    pub browned_out_servers: u64,
    /// Servers shed (crashed by the deficit policy).
    pub shed_servers: u64,
}

impl ResolveStats {
    /// How many explicit nodes each resolved node-step stood for.
    #[must_use]
    pub fn collapse_ratio(&self) -> f64 {
        if self.resolved_nodes == 0 {
            1.0
        } else {
            self.explicit_nodes as f64 / self.resolved_nodes as f64
        }
    }
}

/// Aggregated results for one hierarchy level.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LevelReport {
    /// The level this row summarizes.
    pub level: Level,
    /// Resolved node-steps at this level.
    pub resolved_nodes: u64,
    /// Explicit nodes at this level (counting multiplicities).
    pub explicit_nodes: u64,
    /// Servers below this level's nodes (each level sees the fleet at its
    /// own granularity).
    pub servers: u64,
    /// Servers shed below this level's deficit decisions.
    pub shed_servers: u64,
    /// The worst downtime range among this level's node aggregates.
    pub worst_downtime: DowntimeRange,
    /// The lowest outage-window performance among this level's nodes.
    pub min_perf: Fraction,
}

/// The full result of resolving a topology through one outage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TopologyOutcome {
    /// The facility-level aggregate, in the same terms as a flat kernel
    /// run: a degenerate single-path topology's `aggregate` is bit-equal
    /// to [`dcb_sim::OutageSim::run`] on the same scenario.
    pub aggregate: SimOutcome,
    /// Per-level summaries, outermost level first (levels with no nodes
    /// are omitted).
    pub levels: Vec<LevelReport>,
    /// Work accounting.
    pub stats: ResolveStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_ratio_guards_division() {
        let stats = ResolveStats::default();
        assert!((stats.collapse_ratio() - 1.0).abs() < 1e-12);
        let busy = ResolveStats {
            explicit_nodes: 1011,
            resolved_nodes: 3,
            ..ResolveStats::default()
        };
        assert!((busy.collapse_ratio() - 337.0).abs() < 1e-12);
    }
}
