//! `dcb-topology`: the hierarchical power-graph layer.
//!
//! The flat `dcb-sim` kernel answers "what happens to *one* homogeneous
//! cluster behind *one* backup configuration during an outage". Real
//! facilities are trees: a datacenter feeds clusters, clusters feed racks,
//! edges have capacity limits, backup is provisioned at one level and
//! shared below it, and different server groups matter differently when
//! power runs short. This crate models that tree and resolves a whole
//! facility through an outage:
//!
//! - [`Node`] / [`Topology`] — the typed graph: producer/storage context
//!   ([`dcb_power::BackupConfig`] attached at exactly one node per path),
//!   capacity-limited feed edges, and prioritized [`Consumer`] leaves
//!   with shed/brownout deficit policies ([`DeficitPolicy`]).
//! - [`digest`] — structural fingerprints ([`unit_digest`]) and the
//!   [`collapse`] transform that merges identical sibling subtrees into
//!   one node × multiplicity, so a million-server DC resolves in
//!   thousands of node-steps instead of millions.
//! - [`resolve`](fn@resolve) — the aggregated deficit-sharing resolver:
//!   plans allocations top-down, runs one `dcb-sim` kernel per *distinct*
//!   leaf class (fanned out over [`dcb_fleet::FleetPool`]), and stitches
//!   outcomes bottom-up into a [`TopologyOutcome`] with per-level
//!   [`LevelReport`]s and [`ResolveStats`].
//! - [`evaluate`] — the leaf-evaluation seam: the planner emits
//!   [`LeafRun`] descriptions and an injectable [`LeafEvaluator`] turns
//!   them into outcomes ([`KernelEvaluator`], the engine-hosted kernel,
//!   by default).
//! - [`parse_spec`] — a small text spec format for `repro topo`.
//!
//! A degenerate single-path topology ([`Topology::single_path`]) is
//! bit-identical to running [`dcb_sim::OutageSim`] directly — asserted
//! exhaustively over the Table-3 × technique-catalog grid by this crate's
//! differential test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod evaluate;
pub mod node;
pub mod outcome;
pub mod resolve;
pub mod spec;

pub use digest::{collapse, unit_digest};
pub use evaluate::{BackupShare, KernelEvaluator, LeafEvaluator, LeafRun};
pub use node::{Body, Consumer, DeficitPolicy, Level, Node, Topology, TopologyError};
pub use outcome::{LevelReport, ResolveStats, TopologyOutcome};
pub use resolve::{
    resolve, resolve_flat, resolve_with, resolve_with_evaluator, Aggregation, BROWNOUT_FLOOR,
};
pub use spec::{parse_spec, SpecError};
