//! The leaf-evaluation seam: how the resolver turns a planned leaf into
//! a [`SimOutcome`].
//!
//! Resolution's plan and stitch passes are pure graph arithmetic; only
//! the middle pass touches a simulator. This module makes that boundary
//! explicit: the planner emits [`LeafRun`] descriptions (data, not
//! calls), and a [`LeafEvaluator`] turns each description into an
//! outcome. The default [`KernelEvaluator`] hosts the engine-backed
//! `dcb-sim` kernel — the same [`OutageSim::run`] every production path
//! uses — but tests and future scenario layers can inject their own
//! evaluator (counting stubs, cached sweeps, alternative solvers)
//! without re-plumbing the resolver.

use dcb_power::BackupConfig;
use dcb_sim::{Cluster, OutageSim, SimOutcome, Technique};
use dcb_units::Seconds;

/// How a served leaf's backup slice is sized.
#[derive(Debug, Clone, PartialEq)]
pub enum BackupShare {
    /// The nameplate-proportional slice (no shedding in the domain).
    Proportional,
    /// Survivors split the whole installed base: slice scaled by
    /// `nameplate / (nameplate - shed)` ≥ 1.
    Boosted(f64),
}

/// One scheduled leaf evaluation: a distinct (leaf class, supply share)
/// pair the planner wants simulated.
#[derive(Debug, Clone)]
pub enum LeafRun {
    /// Run the consumer's technique against its slice of the domain backup.
    Serve {
        /// The homogeneous server group behind this leaf.
        cluster: Cluster,
        /// The supply domain's backup provisioning.
        config: BackupConfig,
        /// The technique the allocation lets this leaf hold (its own, or
        /// its brownout fallback).
        technique: Technique,
        /// How the leaf's backup slice is sized.
        share: BackupShare,
    },
    /// The deficit policy cut this group's power: crash with no backup.
    Shed {
        /// The homogeneous server group behind this leaf.
        cluster: Cluster,
    },
}

/// Turns planned [`LeafRun`]s into outcomes.
///
/// Evaluators fan out over a [`dcb_fleet::FleetPool`], so they must be
/// `Sync`; determinism across `DCB_THREADS` requires `evaluate` be a
/// pure function of `(run, outage)` plus whatever owned state the
/// evaluator treats as immutable during one resolve.
pub trait LeafEvaluator: Sync {
    /// Evaluates one leaf run through `outage`.
    fn evaluate(&self, run: &LeafRun, outage: Seconds) -> SimOutcome;
}

/// The default evaluator: one engine-hosted kernel run per leaf.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelEvaluator;

impl LeafEvaluator for KernelEvaluator {
    fn evaluate(&self, run: &LeafRun, outage: Seconds) -> SimOutcome {
        match run {
            LeafRun::Shed { cluster } => {
                OutageSim::new(*cluster, BackupConfig::min_cost(), Technique::crash()).run(outage)
            }
            LeafRun::Serve {
                cluster,
                config,
                technique,
                share,
            } => {
                let sim = OutageSim::new(*cluster, config.clone(), technique.clone());
                match share {
                    BackupShare::Proportional => sim.run(outage),
                    BackupShare::Boosted(boost) => {
                        let mut backup = config.instantiate(cluster.peak_power() * *boost);
                        sim.run_with_backup(outage, &mut backup)
                    }
                }
            }
        }
    }
}
