//! Structural digests and subtree aggregation.
//!
//! Two subtrees are *structurally identical* when they differ at most in
//! display names: same level, same feed capacity, same backup provisioning,
//! same consumer payloads, and structurally identical children with the
//! same multiplicities. [`unit_digest`] captures that identity as a stable
//! 128-bit fingerprint (the same FNV-1a machinery `dcb-fleet` uses for
//! [`dcb_fleet::Scenario`] memoization keys), and [`collapse`] normalizes a
//! tree by merging equal-digest siblings into one node with a summed
//! multiplicity — the transform that lets a million-server datacenter
//! resolve in thousands of node-steps.

use crate::node::{Body, Node, Topology};
use dcb_fleet::StableHasher;

/// The structural fingerprint of *one copy* of a subtree.
///
/// Display names are deliberately excluded so that `rack#0 … rack#39`
/// produced by [`Node::expand`] collapse back into one aggregated node.
/// The node's own multiplicity is also excluded (it says how many copies
/// exist, not what a copy is), but children's multiplicities are included
/// because they shape the copy's interior.
#[must_use]
pub fn unit_digest(node: &Node) -> u128 {
    let mut hasher = StableHasher::new();
    absorb(node, &mut hasher);
    hasher.finish()
}

fn absorb(node: &Node, hasher: &mut StableHasher) {
    hasher.write_str(node.level.name());
    match node.feed_capacity {
        Some(capacity) => {
            hasher.write_u64(1);
            hasher.write_f64(capacity.value());
        }
        None => hasher.write_u64(0),
    }
    match &node.backup {
        Some(config) => {
            hasher.write_u64(1);
            hasher.write_debug(config);
        }
        None => hasher.write_u64(0),
    }
    match &node.body {
        Body::Consumer(consumer) => {
            hasher.write_str("consumer");
            hasher.write_debug(&consumer.cluster);
            hasher.write_debug(&consumer.technique);
            hasher.write_u64(u64::from(consumer.priority));
            hasher.write_debug(&consumer.on_deficit);
        }
        Body::Group(children) => {
            hasher.write_str("group");
            hasher.write_u64(children.len() as u64);
            for child in children {
                hasher.write_u64(u64::from(child.multiplicity));
                let child_digest = unit_digest(child);
                hasher.write_u64(child_digest as u64);
                hasher.write_u64((child_digest >> 64) as u64);
            }
        }
    }
}

/// Canonicalizes a subtree: children collapse recursively, then siblings
/// with equal [`unit_digest`]s merge into one node with their
/// multiplicities summed (first-seen sibling order is preserved, so
/// deficit allocation order is unchanged — equal digests imply equal
/// priorities, making merged copies interchangeable).
#[must_use]
pub fn collapse(node: &Node) -> Node {
    let body = match &node.body {
        Body::Consumer(consumer) => Body::Consumer(consumer.clone()),
        Body::Group(children) => {
            let collapsed: Vec<Node> = children.iter().map(collapse).collect();
            let mut merged: Vec<(u128, Node)> = Vec::with_capacity(collapsed.len());
            for child in collapsed {
                let digest = unit_digest(&child);
                match merged.iter_mut().find(|(d, _)| *d == digest) {
                    Some((_, existing)) => {
                        existing.multiplicity += child.multiplicity;
                    }
                    None => merged.push((digest, child)),
                }
            }
            Body::Group(merged.into_iter().map(|(_, child)| child).collect())
        }
    };
    Node {
        name: node.name.clone(),
        level: node.level,
        multiplicity: node.multiplicity,
        feed_capacity: node.feed_capacity,
        backup: node.backup.clone(),
        body,
    }
}

impl Topology {
    /// The canonical aggregated form of this topology (see [`collapse`]).
    #[must_use]
    pub fn collapse(&self) -> Topology {
        Topology::new(collapse(&self.root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Consumer, Level};
    use dcb_power::BackupConfig;
    use dcb_sim::{Cluster, Technique};
    use dcb_units::Watts;
    use dcb_workload::Workload;

    fn rack(name: &str) -> Node {
        Node::consumer(
            name,
            Level::Rack,
            Consumer::new(
                Cluster::rack(Workload::specjbb()),
                Technique::ride_through(),
            ),
        )
    }

    #[test]
    fn names_do_not_affect_the_digest() {
        assert_eq!(unit_digest(&rack("a")), unit_digest(&rack("b")));
    }

    #[test]
    fn structure_does_affect_the_digest() {
        let base = rack("r");
        let capped = rack("r").with_feed_capacity(Watts::new(1000.0));
        let backed = rack("r").with_backup(BackupConfig::no_dg());
        let other_priority = Node::consumer(
            "r",
            Level::Rack,
            Consumer::new(
                Cluster::rack(Workload::specjbb()),
                Technique::ride_through(),
            )
            .with_priority(3),
        );
        let digests = [
            unit_digest(&base),
            unit_digest(&capped),
            unit_digest(&backed),
            unit_digest(&other_priority),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn expansion_collapses_back() {
        let aggregated = Node::group("c", Level::Cluster, vec![rack("r").times(40)]);
        let explicit = Node::group(
            "c",
            Level::Cluster,
            (0..40).map(|i| rack(&format!("r{i}"))).collect(),
        );
        let collapsed = collapse(&explicit);
        assert_eq!(unit_digest(&collapsed), unit_digest(&aggregated));
        match &collapsed.body {
            Body::Group(children) => {
                assert_eq!(children.len(), 1);
                assert_eq!(children[0].multiplicity, 40);
            }
            Body::Consumer(_) => unreachable!("collapsed group stays a group"),
        }
    }

    #[test]
    fn unequal_siblings_stay_separate() {
        let web = rack("web");
        let batch = Node::consumer(
            "batch",
            Level::Rack,
            Consumer::new(Cluster::rack(Workload::spec_cpu()), Technique::hibernate()),
        );
        let group = Node::group("c", Level::Cluster, vec![web, batch]);
        let collapsed = collapse(&group);
        match &collapsed.body {
            Body::Group(children) => assert_eq!(children.len(), 2),
            Body::Consumer(_) => unreachable!(),
        }
    }

    #[test]
    fn multiplicities_merge_additively() {
        let group = Node::group(
            "c",
            Level::Cluster,
            vec![rack("a").times(3), rack("b").times(4)],
        );
        let collapsed = collapse(&group);
        match &collapsed.body {
            Body::Group(children) => {
                assert_eq!(children.len(), 1);
                assert_eq!(children[0].multiplicity, 7);
            }
            Body::Consumer(_) => unreachable!(),
        }
    }
}
