//! A small plain-text topology spec, for `repro topo <file>` and quick
//! experiments.
//!
//! One node per line; nesting by two-space indentation; `#` starts a
//! comment. Each line is
//!
//! ```text
//! <level> [name] [xN] [key=value ...]
//! ```
//!
//! where `<level>` is `dc`/`datacenter`, `cluster`, `rack`, or `server`,
//! `xN` repeats the node N times (aggregated multiplicity, not N parsed
//! copies), and the keys are:
//!
//! | key         | meaning                                                |
//! |-------------|--------------------------------------------------------|
//! | `backup`    | Table-3 configuration label (e.g. `MaxPerf`, `No-UPS`) |
//! | `feed_kw`   | feed-edge capacity in kilowatts                        |
//! | `workload`  | `specjbb`, `websearch`, `memcached`, or `speccpu`      |
//! | `technique` | catalog technique name (e.g. `RideThrough`, `Sleep-L`) |
//! | `servers`   | servers in the leaf group (default 16, a paper rack)   |
//! | `priority`  | shedding priority, lower served first (default 0)      |
//! | `deficit`   | `shed` (default) or `brownout`                         |
//!
//! A line with a `workload` is a consumer leaf (its `technique` is then
//! required); any other line is a distribution group. Config, technique,
//! and workload names match case-insensitively with punctuation ignored,
//! so `backup=maxperf` and `technique=ride-through` both resolve.
//!
//! ```
//! let spec = "\
//! dc main backup=MaxPerf
//!   cluster web x4
//!     rack frontend x20 workload=websearch technique=ridethrough
//!   cluster batch
//!     rack workers x50 workload=speccpu technique=sleep priority=5 deficit=brownout
//! ";
//! let topology = dcb_topology::parse_spec(spec).expect("parses");
//! assert_eq!(topology.root.servers(), 4 * 20 * 16 + 50 * 16);
//! ```

use crate::node::{Body, Consumer, DeficitPolicy, Level, Node, Topology};
use core::fmt;
use dcb_power::BackupConfig;
use dcb_server::ServerSpec;
use dcb_sim::{Cluster, Technique};
use dcb_units::Watts;
use dcb_workload::Workload;

/// A parse failure, pointing at the 1-based offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parses the text spec format into a topology (structurally validated).
///
/// # Errors
///
/// Returns a [`SpecError`] for the first malformed line, unknown name, or
/// structural problem ([`crate::TopologyError`] rendered with the root
/// line number).
pub fn parse_spec(text: &str) -> Result<Topology, SpecError> {
    let mut drafts: Vec<(usize, usize, Node)> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let without_comment = raw.split('#').next().unwrap_or("");
        if without_comment.trim().is_empty() {
            continue;
        }
        let depth = indent_depth(without_comment, line_no)?;
        let node = parse_line(without_comment.trim(), line_no)?;
        drafts.push((line_no, depth, node));
    }
    let Some(&(root_line, first_depth, _)) = drafts.first() else {
        return Err(SpecError {
            line: 1,
            message: "empty spec: expected at least a root node".to_owned(),
        });
    };
    if first_depth != 0 {
        return Err(SpecError {
            line: root_line,
            message: "the first node must not be indented".to_owned(),
        });
    }

    // Assemble by indentation: a line at depth d is a child of the nearest
    // earlier line at depth d-1.
    let mut stack: Vec<(usize, Node)> = Vec::new();
    let mut root: Option<Node> = None;
    for (line_no, depth, node) in drafts {
        while stack.len() > depth {
            pop_attach(&mut stack, &mut root);
        }
        if depth > stack.len() {
            return Err(SpecError {
                line: line_no,
                message: format!("indentation jumps from depth {} to {depth}", stack.len()),
            });
        }
        if depth == 0 && root.is_some() {
            return Err(SpecError {
                line: line_no,
                message: "a spec has exactly one root node".to_owned(),
            });
        }
        if let Some((_, parent)) = stack.last() {
            if matches!(parent.body, Body::Consumer(_)) {
                return Err(SpecError {
                    line: line_no,
                    message: format!(
                        "consumer `{}` cannot have children (drop its workload= or unindent)",
                        parent.name
                    ),
                });
            }
        }
        stack.push((depth, node));
    }
    while !stack.is_empty() {
        pop_attach(&mut stack, &mut root);
    }
    let Some(root) = root else {
        return Err(SpecError {
            line: root_line,
            message: "no root node assembled".to_owned(),
        });
    };
    let topology = Topology::new(root);
    topology.validate().map_err(|err| SpecError {
        line: root_line,
        message: err.to_string(),
    })?;
    Ok(topology)
}

/// Pops the deepest node and attaches it to its parent (or makes it root).
fn pop_attach(stack: &mut Vec<(usize, Node)>, root: &mut Option<Node>) {
    let Some((_, done)) = stack.pop() else { return };
    match stack.last_mut() {
        Some((_, parent)) => match &mut parent.body {
            Body::Group(children) => children.push(done),
            // Unreachable: the assembly loop rejects children under a
            // consumer line before it is pushed deeper.
            Body::Consumer(_) => {}
        },
        None => *root = Some(done),
    }
}

/// Leading-space depth: two spaces per level, tabs rejected.
fn indent_depth(line: &str, line_no: usize) -> Result<usize, SpecError> {
    if line.starts_with('\t') || line.trim_start_matches(' ').starts_with('\t') {
        return Err(SpecError {
            line: line_no,
            message: "indent with spaces, not tabs".to_owned(),
        });
    }
    let spaces = line.len() - line.trim_start_matches(' ').len();
    if !spaces.is_multiple_of(2) {
        return Err(SpecError {
            line: line_no,
            message: format!("odd indentation ({spaces} spaces); use two per level"),
        });
    }
    Ok(spaces / 2)
}

/// Parses one trimmed, non-empty line into a node.
fn parse_line(line: &str, line_no: usize) -> Result<Node, SpecError> {
    let err = |message: String| SpecError {
        line: line_no,
        message,
    };
    let mut tokens = line.split_whitespace();
    let level_token = tokens.next().unwrap_or("");
    let level = match normalize(level_token).as_str() {
        "dc" | "datacenter" => Level::Datacenter,
        "cluster" => Level::Cluster,
        "rack" => Level::Rack,
        "server" => Level::Server,
        other => {
            return Err(err(format!(
                "unknown level `{other}` (expected dc, cluster, rack, or server)"
            )))
        }
    };

    let mut name: Option<String> = None;
    let mut multiplicity: u32 = 1;
    let mut backup: Option<BackupConfig> = None;
    let mut feed_capacity: Option<Watts> = None;
    let mut workload: Option<Workload> = None;
    let mut technique: Option<Technique> = None;
    let mut servers: u32 = 16;
    let mut priority: u8 = 0;
    let mut brownout = false;

    for token in tokens {
        if let Some((key, value)) = token.split_once('=') {
            match key {
                "backup" => {
                    backup =
                        Some(find_config(value).ok_or_else(|| {
                            err(format!("unknown backup configuration `{value}`"))
                        })?);
                }
                "feed_kw" => {
                    let magnitude: f64 = value
                        .parse()
                        .map_err(|_| err(format!("feed_kw: not a number: `{value}`")))?;
                    if !magnitude.is_finite() || magnitude <= 0.0 {
                        return Err(err(format!("feed_kw must be positive, got `{value}`")));
                    }
                    feed_capacity = Some(Watts::new(magnitude * 1e3));
                }
                "workload" => {
                    workload = Some(
                        find_workload(value)
                            .ok_or_else(|| err(format!("unknown workload `{value}`")))?,
                    );
                }
                "technique" => {
                    technique = Some(
                        find_technique(value)
                            .ok_or_else(|| err(format!("unknown technique `{value}`")))?,
                    );
                }
                "servers" => {
                    servers = value
                        .parse()
                        .map_err(|_| err(format!("servers: not a count: `{value}`")))?;
                    if servers == 0 {
                        return Err(err("servers must be at least 1".to_owned()));
                    }
                }
                "priority" => {
                    priority = value
                        .parse()
                        .map_err(|_| err(format!("priority: not 0-255: `{value}`")))?;
                }
                "deficit" => match normalize(value).as_str() {
                    "shed" => brownout = false,
                    "brownout" => brownout = true,
                    other => {
                        return Err(err(format!(
                            "deficit must be shed or brownout, got `{other}`"
                        )))
                    }
                },
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        } else if let Some(count) = token.strip_prefix('x').and_then(|n| n.parse::<u32>().ok()) {
            if count == 0 {
                return Err(err("multiplicity must be at least 1".to_owned()));
            }
            multiplicity = count;
        } else if name.is_none() {
            name = Some(token.to_owned());
        } else {
            return Err(err(format!("unexpected token `{token}`")));
        }
    }

    let name = name.unwrap_or_else(|| level.name().to_owned());
    let mut node = match workload {
        Some(workload) => {
            let Some(technique) = technique else {
                return Err(err("a consumer line needs technique=...".to_owned()));
            };
            let policy = if brownout {
                DeficitPolicy::Brownout(Technique::throttle_deepest())
            } else {
                DeficitPolicy::Shed
            };
            let cluster = Cluster::new(servers, ServerSpec::paper_testbed(), workload);
            Node::consumer(
                name,
                level,
                Consumer::new(cluster, technique)
                    .with_priority(priority)
                    .with_deficit_policy(policy),
            )
        }
        None => {
            if technique.is_some() {
                return Err(err(
                    "technique= without workload=: only consumer lines take a technique".to_owned(),
                ));
            }
            Node::group(name, level, Vec::new())
        }
    }
    .times(multiplicity);
    node.feed_capacity = feed_capacity;
    node.backup = backup;
    Ok(node)
}

/// Lowercases and strips punctuation, so `Ride-Through`, `ridethrough`,
/// and `RideThrough` all compare equal.
fn normalize(s: &str) -> String {
    s.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Resolves a Table-3 configuration by normalized label.
#[must_use]
pub fn find_config(raw: &str) -> Option<BackupConfig> {
    let wanted = normalize(raw);
    BackupConfig::table3()
        .into_iter()
        .find(|config| normalize(config.label()) == wanted)
}

/// Resolves a catalog technique by normalized name.
#[must_use]
pub fn find_technique(raw: &str) -> Option<Technique> {
    let wanted = normalize(raw);
    Technique::extended_catalog()
        .into_iter()
        .find(|technique| normalize(technique.name()) == wanted)
}

/// Resolves one of the paper's four workloads by normalized name.
#[must_use]
pub fn find_workload(raw: &str) -> Option<Workload> {
    match normalize(raw).as_str() {
        "specjbb" => Some(Workload::specjbb()),
        "websearch" => Some(Workload::web_search()),
        "memcached" => Some(Workload::memcached()),
        "speccpu" | "mcf" => Some(Workload::spec_cpu()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# A two-service DC with shared backup at the root.
dc main backup=MaxPerf
  cluster web x4
    rack frontend x20 workload=websearch technique=ridethrough
  cluster batch
    rack workers x50 workload=speccpu technique=sleep priority=5 deficit=brownout
";

    #[test]
    fn sample_spec_parses() {
        let topology = parse_spec(SAMPLE).expect("sample parses");
        assert_eq!(topology.root.servers(), 4 * 20 * 16 + 50 * 16);
        assert_eq!(topology.root.level, Level::Datacenter);
        assert!(topology.root.backup.is_some());
        assert!(topology.validate().is_ok());
    }

    #[test]
    fn names_match_loosely() {
        assert!(find_config("max-perf").is_some());
        assert!(find_config("MAXPERF").is_some());
        assert!(find_config("nope").is_none());
        assert!(find_technique("Ride-Through").is_some());
        assert!(find_technique("sleep-l").is_some());
        assert!(find_workload("web_search").is_some());
        assert!(find_workload("quake").is_none());
    }

    #[test]
    fn error_lines_are_reported() {
        let err = parse_spec("dc main\n  rack r workload=nope technique=sleep\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown workload"));

        let err = parse_spec("dc main backup=MaxPerf\n   cluster c\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("odd indentation"));

        let err = parse_spec(
            "dc a backup=MaxPerf\n  rack r workload=specjbb technique=sleep\ndc b backup=MaxPerf\n",
        )
        .unwrap_err();
        assert!(err.message.contains("one root"));
    }

    #[test]
    fn structural_errors_surface() {
        // No backup anywhere: validate() rejects via parse_spec.
        let err = parse_spec("dc main\n  rack r workload=specjbb technique=sleep\n").unwrap_err();
        assert!(err.message.contains("no backup supply"));
    }

    #[test]
    fn feed_capacity_and_multiplicity_apply() {
        let topology = parse_spec(
            "dc main backup=NoDG\n  cluster c x3 feed_kw=2.5\n    rack r workload=memcached technique=crash\n",
        )
        .expect("parses");
        let Body::Group(children) = &topology.root.body else {
            unreachable!("root is a group");
        };
        assert_eq!(children[0].multiplicity, 3);
        assert_eq!(children[0].feed_capacity, Some(Watts::new(2500.0)));
    }
}
