//! The typed power-graph model: a DC → cluster → rack → server tree of
//! producer/storage context and prioritized consumers.
//!
//! A [`Node`] either *consumes* power (a [`Consumer`] leaf: a server group
//! running one workload under one outage technique) or *distributes* it (a
//! group with children). Backup supply — the grid feed plus the diesel
//! generator and UPS battery described by a [`BackupConfig`] — attaches to
//! exactly one node on every root-to-leaf path; the edge feeding a node
//! from its parent may carry a capacity limit, which is what creates
//! deficits during an outage (see [`crate::resolve`]).
//!
//! Identical sibling subtrees are represented once with a `multiplicity`
//! count instead of being repeated — the representation the aggregated
//! resolver exploits ([`crate::digest`]).

use core::fmt;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, Technique};
use dcb_units::Watts;
use dcb_workload::Workload;

/// The hierarchy level a node sits at (drives reporting and trace lanes;
/// the resolver itself is level-agnostic).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Level {
    /// The facility root.
    Datacenter,
    /// A cluster (a PDU-scale group of racks).
    Cluster,
    /// A rack.
    Rack,
    /// An individual server group below rack granularity.
    Server,
}

impl Level {
    /// Every level, outermost first.
    pub const ALL: [Level; 4] = [
        Level::Datacenter,
        Level::Cluster,
        Level::Rack,
        Level::Server,
    ];

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Datacenter => "datacenter",
            Level::Cluster => "cluster",
            Level::Rack => "rack",
            Level::Server => "server",
        }
    }

    /// Position in [`Level::ALL`] (used for per-level trace lanes).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Level::Datacenter => 0,
            Level::Cluster => 1,
            Level::Rack => 2,
            Level::Server => 3,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a consumer does when its subtree is in deficit and its allocation
/// falls below nameplate demand.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DeficitPolicy {
    /// Cut the group's power: servers crash and recover after the outage.
    Shed,
    /// Fall back to the given low-power technique if the allocation covers
    /// at least [`crate::resolve::BROWNOUT_FLOOR`] of nameplate; shed
    /// otherwise.
    Brownout(Technique),
}

/// A prioritized consumer: a server group running one workload under one
/// outage-handling technique.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Consumer {
    /// The server group (size × spec × workload).
    pub cluster: Cluster,
    /// The technique executed when an outage strikes.
    pub technique: Technique,
    /// Shedding priority: lower numbers are served first under deficit.
    pub priority: u8,
    /// Response when the allocation cannot cover nameplate demand.
    pub on_deficit: DeficitPolicy,
}

impl Consumer {
    /// A consumer with default priority (0) that sheds under deficit.
    #[must_use]
    pub fn new(cluster: Cluster, technique: Technique) -> Self {
        Self {
            cluster,
            technique,
            priority: 0,
            on_deficit: DeficitPolicy::Shed,
        }
    }

    /// Sets the shedding priority (lower = served first).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deficit response.
    #[must_use]
    pub fn with_deficit_policy(mut self, policy: DeficitPolicy) -> Self {
        self.on_deficit = policy;
        self
    }
}

/// What a node is: a consumer leaf or a distribution group.
//
// A Consumer dwarfs the Group variant, but collapsed topologies hold a
// handful of nodes, so pattern-matching ergonomics beat boxing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Body {
    /// A consumer leaf.
    Consumer(Consumer),
    /// An internal distribution node with children.
    Group(Vec<Node>),
}

/// One node of the power graph.
///
/// `multiplicity` says how many identical copies of this subtree exist
/// side by side; [`crate::digest::collapse`] normalizes a tree so equal
/// siblings merge into one node with a summed multiplicity, and
/// [`Node::expand`] undoes it for the naive flat baseline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Node {
    /// Display name (reporting only; never part of the structural digest).
    pub name: String,
    /// Hierarchy level.
    pub level: Level,
    /// How many identical copies of this subtree exist (≥ 1).
    pub multiplicity: u32,
    /// Capacity of the edge feeding one copy from its parent, if limited.
    pub feed_capacity: Option<Watts>,
    /// Backup supply provisioned at this node for its whole subtree.
    pub backup: Option<BackupConfig>,
    /// Consumer payload or children.
    pub body: Body,
}

impl Node {
    /// A consumer leaf.
    #[must_use]
    pub fn consumer(name: impl Into<String>, level: Level, consumer: Consumer) -> Self {
        Self {
            name: name.into(),
            level,
            multiplicity: 1,
            feed_capacity: None,
            backup: None,
            body: Body::Consumer(consumer),
        }
    }

    /// An internal distribution node.
    #[must_use]
    pub fn group(name: impl Into<String>, level: Level, children: Vec<Node>) -> Self {
        Self {
            name: name.into(),
            level,
            multiplicity: 1,
            feed_capacity: None,
            backup: None,
            body: Body::Group(children),
        }
    }

    /// Sets the multiplicity (how many identical copies exist).
    #[must_use]
    pub fn times(mut self, multiplicity: u32) -> Self {
        self.multiplicity = multiplicity;
        self
    }

    /// Limits the capacity of the edge feeding each copy of this node.
    #[must_use]
    pub fn with_feed_capacity(mut self, capacity: Watts) -> Self {
        self.feed_capacity = Some(capacity);
        self
    }

    /// Provisions backup supply at this node for its subtree.
    #[must_use]
    pub fn with_backup(mut self, config: BackupConfig) -> Self {
        self.backup = Some(config);
        self
    }

    /// Nameplate peak demand of *one copy* of this subtree.
    #[must_use]
    pub fn unit_demand(&self) -> Watts {
        match &self.body {
            Body::Consumer(c) => c.cluster.peak_power(),
            Body::Group(children) => children.iter().map(Node::demand).sum(),
        }
    }

    /// Nameplate peak demand of all copies together.
    #[must_use]
    pub fn demand(&self) -> Watts {
        self.unit_demand() * f64::from(self.multiplicity)
    }

    /// Highest shedding priority (lowest number) of any consumer below one
    /// copy — the key deficit allocation orders siblings by.
    #[must_use]
    pub fn priority(&self) -> u8 {
        match &self.body {
            Body::Consumer(c) => c.priority,
            Body::Group(children) => children.iter().map(Node::priority).min().unwrap_or(u8::MAX),
        }
    }

    /// Total servers in all copies of this subtree.
    #[must_use]
    pub fn servers(&self) -> u64 {
        let unit = match &self.body {
            Body::Consumer(c) => u64::from(c.cluster.size()),
            Body::Group(children) => children.iter().map(Node::servers).sum(),
        };
        unit * u64::from(self.multiplicity)
    }

    /// Number of nodes the fully expanded (multiplicity-free) tree has.
    #[must_use]
    pub fn explicit_nodes(&self) -> u64 {
        let below = match &self.body {
            Body::Consumer(_) => 0,
            Body::Group(children) => children.iter().map(Node::explicit_nodes).sum(),
        };
        u64::from(self.multiplicity) * (1 + below)
    }

    /// Number of nodes in this (possibly aggregated) representation.
    #[must_use]
    pub fn represented_nodes(&self) -> u64 {
        let below = match &self.body {
            Body::Consumer(_) => 0,
            Body::Group(children) => children.iter().map(Node::represented_nodes).sum(),
        };
        1 + below
    }

    /// The naive flat expansion: every multiplicity becomes that many
    /// explicit sibling copies (named `name#i`), recursively.
    #[must_use]
    pub fn expand(&self) -> Vec<Node> {
        let unit = Node {
            name: self.name.clone(),
            level: self.level,
            multiplicity: 1,
            feed_capacity: self.feed_capacity,
            backup: self.backup.clone(),
            body: match &self.body {
                Body::Consumer(c) => Body::Consumer(c.clone()),
                Body::Group(children) => {
                    Body::Group(children.iter().flat_map(Node::expand).collect())
                }
            },
        };
        (0..self.multiplicity)
            .map(|i| {
                let mut copy = unit.clone();
                if self.multiplicity > 1 {
                    copy.name = format!("{}#{i}", self.name);
                }
                copy
            })
            .collect()
    }
}

/// A validated power graph: one root node plus the invariants the
/// resolver relies on.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    /// The root node (usually [`Level::Datacenter`]).
    pub root: Node,
}

/// A structural problem that makes a topology unresolvable.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TopologyError {
    /// A consumer has no backup supply anywhere on its path to the root.
    MissingBackup {
        /// Path to the uncovered consumer ("dc/web/rack-0").
        path: String,
    },
    /// Two nodes on one root-to-leaf path both provision backup.
    NestedBackup {
        /// Path to the inner (offending) node.
        path: String,
    },
    /// A node claims zero copies.
    ZeroMultiplicity {
        /// Path to the offending node.
        path: String,
    },
    /// A distribution node has no children.
    EmptyGroup {
        /// Path to the offending node.
        path: String,
    },
    /// A feed-edge capacity is zero or negative.
    InvalidFeedCapacity {
        /// Path to the offending node.
        path: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::MissingBackup { path } => {
                write!(f, "{path}: no backup supply on the path from the root")
            }
            TopologyError::NestedBackup { path } => {
                write!(f, "{path}: backup nested under another backup node")
            }
            TopologyError::ZeroMultiplicity { path } => {
                write!(f, "{path}: multiplicity must be at least 1")
            }
            TopologyError::EmptyGroup { path } => {
                write!(f, "{path}: distribution node has no children")
            }
            TopologyError::InvalidFeedCapacity { path } => {
                write!(f, "{path}: feed capacity must be positive")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Wraps a root node.
    #[must_use]
    pub fn new(root: Node) -> Self {
        Self { root }
    }

    /// The degenerate single-path topology: one backup config at the DC
    /// root feeding one cluster → rack → consumer chain — semantically the
    /// flat scenario the `dcb-sim` kernel evaluates directly.
    #[must_use]
    pub fn single_path(cluster: Cluster, config: BackupConfig, technique: Technique) -> Self {
        let leaf = Node::consumer("rack", Level::Rack, Consumer::new(cluster, technique));
        let group = Node::group("cluster", Level::Cluster, vec![leaf]);
        let root = Node::group("dc", Level::Datacenter, vec![group]).with_backup(config);
        Self::new(root)
    }

    /// A uniform datacenter: `clusters` identical clusters of
    /// `racks_per_cluster` paper-testbed racks each, all running `workload`
    /// under `technique`, backed by `config` at the DC root — expressed in
    /// aggregated (multiplicity) form.
    #[must_use]
    pub fn uniform(
        clusters: u32,
        racks_per_cluster: u32,
        workload: Workload,
        config: BackupConfig,
        technique: Technique,
    ) -> Self {
        let rack = Node::consumer(
            "rack",
            Level::Rack,
            Consumer::new(Cluster::rack(workload), technique),
        )
        .times(racks_per_cluster);
        let cluster = Node::group("cluster", Level::Cluster, vec![rack]).times(clusters);
        let root = Node::group("dc", Level::Datacenter, vec![cluster]).with_backup(config);
        Self::new(root)
    }

    /// Checks the structural invariants the resolver relies on.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyError`] found in pre-order.
    pub fn validate(&self) -> Result<(), TopologyError> {
        validate_node(&self.root, "", false)
    }

    /// The naive flat expansion of the whole topology.
    #[must_use]
    pub fn expand(&self) -> Topology {
        let mut copies = self.root.expand();
        let root = if copies.len() == 1 {
            // dcb-audit: allow(panic-site, len()==1 guarantees a first element)
            copies.pop().expect("one expanded copy")
        } else {
            // A multiplicity > 1 root expands under a synthetic super-root.
            Node::group("root", self.root.level, copies)
        };
        Topology::new(root)
    }
}

fn validate_node(node: &Node, prefix: &str, covered: bool) -> Result<(), TopologyError> {
    let path = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix}/{}", node.name)
    };
    if node.multiplicity == 0 {
        return Err(TopologyError::ZeroMultiplicity { path });
    }
    if let Some(capacity) = node.feed_capacity {
        if !capacity.is_positive() {
            return Err(TopologyError::InvalidFeedCapacity { path });
        }
    }
    let provisions = node.backup.is_some();
    if provisions && covered {
        return Err(TopologyError::NestedBackup { path });
    }
    let covered = covered || provisions;
    match &node.body {
        Body::Consumer(_) => {
            if !covered {
                return Err(TopologyError::MissingBackup { path });
            }
        }
        Body::Group(children) => {
            if children.is_empty() {
                return Err(TopologyError::EmptyGroup { path });
            }
            for child in children {
                validate_node(child, &path, covered)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn consumer() -> Consumer {
        Consumer::new(
            Cluster::rack(Workload::specjbb()),
            Technique::ride_through(),
        )
    }

    #[test]
    fn single_path_validates() {
        let topo = Topology::single_path(
            Cluster::rack(Workload::specjbb()),
            BackupConfig::max_perf(),
            Technique::ride_through(),
        );
        assert!(topo.validate().is_ok());
        assert_eq!(topo.root.servers(), 16);
        assert_eq!(topo.root.explicit_nodes(), 3);
    }

    #[test]
    fn uniform_counts_scale_with_multiplicity() {
        let topo = Topology::uniform(
            10,
            100,
            Workload::specjbb(),
            BackupConfig::max_perf(),
            Technique::ride_through(),
        );
        assert!(topo.validate().is_ok());
        assert_eq!(topo.root.servers(), 10 * 100 * 16);
        // 1 dc + 10 clusters + 1000 racks explicit; 3 represented.
        assert_eq!(topo.root.explicit_nodes(), 1 + 10 + 1000);
        assert_eq!(topo.root.represented_nodes(), 3);
        let expanded = topo.expand();
        assert_eq!(expanded.root.explicit_nodes(), 1 + 10 + 1000);
        assert_eq!(expanded.root.represented_nodes(), 1 + 10 + 1000);
        assert_eq!(expanded.root.demand(), topo.root.demand());
    }

    #[test]
    fn missing_backup_detected() {
        let node = Node::group(
            "dc",
            Level::Datacenter,
            vec![Node::consumer("rack", Level::Rack, consumer())],
        );
        let err = Topology::new(node).validate().unwrap_err();
        assert_eq!(
            err,
            TopologyError::MissingBackup {
                path: "dc/rack".to_owned()
            }
        );
        assert!(err.to_string().contains("no backup supply"));
    }

    #[test]
    fn nested_backup_detected() {
        let inner =
            Node::consumer("rack", Level::Rack, consumer()).with_backup(BackupConfig::no_dg());
        let root =
            Node::group("dc", Level::Datacenter, vec![inner]).with_backup(BackupConfig::max_perf());
        let err = Topology::new(root).validate().unwrap_err();
        assert!(matches!(err, TopologyError::NestedBackup { .. }));
    }

    #[test]
    fn degenerate_structures_rejected() {
        let zero = Node::consumer("r", Level::Rack, consumer())
            .times(0)
            .with_backup(BackupConfig::max_perf());
        assert!(matches!(
            Topology::new(zero).validate(),
            Err(TopologyError::ZeroMultiplicity { .. })
        ));
        let empty =
            Node::group("dc", Level::Datacenter, vec![]).with_backup(BackupConfig::max_perf());
        assert!(matches!(
            Topology::new(empty).validate(),
            Err(TopologyError::EmptyGroup { .. })
        ));
        let bad_feed = Node::consumer("r", Level::Rack, consumer())
            .with_backup(BackupConfig::max_perf())
            .with_feed_capacity(Watts::ZERO);
        assert!(matches!(
            Topology::new(bad_feed).validate(),
            Err(TopologyError::InvalidFeedCapacity { .. })
        ));
    }

    #[test]
    fn priority_propagates_upward() {
        let high = Node::consumer("a", Level::Rack, consumer().with_priority(1));
        let low = Node::consumer("b", Level::Rack, consumer().with_priority(7));
        let group = Node::group("g", Level::Cluster, vec![low, high]);
        assert_eq!(group.priority(), 1);
    }
}
