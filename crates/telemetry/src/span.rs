//! Hierarchical span timers with a thread-local span stack.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The active span names on this thread, root first. Each thread has
    /// its own stack, so spans opened on fleet workers root at that
    /// worker's top level rather than under the batch caller's span —
    /// which keeps span *paths* a pure function of the code that opened
    /// them, never of which thread the scheduler picked.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name`, nested under the calling thread's currently
/// open spans (`outer/inner` paths). The span closes when the returned
/// guard drops, accumulating one call and the elapsed wall time into the
/// global [`crate::Registry`].
///
/// Call counts and paths are **stable** (deterministic for a fixed
/// workload); wall times are **volatile** and only rendered by the
/// human-facing sinks (see the crate docs). When collection is disabled
/// the guard is inert and no clock is read.
///
/// `name` must be a `'static` literal and should not contain `/` (the
/// path separator) or `"` (unescaped into reports).
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { open: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    SpanGuard {
        open: Some(OpenSpan {
            path,
            // The one sanctioned wall-clock read in the workspace (the
            // telemetry crate is exempt from the time-source lint): span
            // wall times are volatile-only and never enter result paths.
            started: Instant::now(),
        }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    path: String,
    started: Instant,
}

/// Closes its span on drop. Returned by [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        crate::registry().record_span(&open.path, open.started.elapsed().as_nanos());
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        {
            let _a = span("span-test-a");
            let _b = span("span-test-b");
        }
        {
            let _a = span("span-test-a");
        }
        crate::set_enabled(false);
        let snap = crate::snapshot();
        let calls: Vec<(&str, u64)> = snap
            .spans
            .iter()
            .filter(|s| s.path.starts_with("span-test-a"))
            .map(|s| (s.path.as_str(), s.calls))
            .collect();
        assert_eq!(
            calls,
            vec![("span-test-a", 2), ("span-test-a/span-test-b", 1)]
        );
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let _g = span("span-test-disabled");
        drop(_g);
        assert!(crate::snapshot()
            .spans
            .iter()
            .all(|s| s.path != "span-test-disabled"));
    }
}
