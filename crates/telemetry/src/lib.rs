//! # dcb-telemetry
//!
//! Deterministic-by-construction observability for the underprovisioning
//! framework: monotonic [`Counter`]s, fixed-bucket log-scale
//! [`Histogram`]s, hierarchical [`span`] timers, and a process-wide
//! [`Registry`] whose [`Snapshot`] is **stable-ordered and
//! byte-reproducible**, so telemetry output can be asserted in tests and
//! diffed across runs.
//!
//! The paper's contribution is a cost/performance/availability trade-off
//! surface (§6, Figures 5–9); trusting a reproduction of it requires
//! knowing *where* simulated work goes — how many analytic segments the
//! event kernel emits per outage (DESIGN.md §9), how often the root finder
//! bisects, how well the fleet cache memoizes (DESIGN.md §7). This crate
//! is the substrate those layers report through.
//!
//! ## Determinism contract
//!
//! Metrics are split into two stability classes at registration time:
//!
//! * **Stable** metrics count *model work* — kernel segments, cache
//!   lookups, bisection iterations. Their values are a pure function of
//!   the evaluated scenario set, so for a fixed workload the stable
//!   snapshot is byte-identical across runs and across `DCB_THREADS`
//!   settings. The JSON sink renders *only* this class.
//! * **Volatile** metrics describe *scheduling* — per-worker task counts,
//!   spawned workers, shard layouts. They legitimately vary with thread
//!   count and are rendered only by the human-facing text sink (and the
//!   bench harness), never by the byte-compared JSON report.
//!
//! Span *structure* (paths and call counts) is stable; span *wall times*
//! are volatile and quarantined the same way. Telemetry state lives
//! entirely outside result paths: nothing in the model layers may read a
//! value back out of this crate (fenced by the `telemetry-in-result`
//! audit lint, DESIGN.md §8).
//!
//! ## Cost when disabled
//!
//! Collection is off by default ([`NullSink`] semantics): every record
//! operation is a single relaxed atomic load and branch, so instrumented
//! hot paths stay within measurement noise of uninstrumented builds (the
//! engine bench's ≥5× floor in `ci.sh` runs with collection disabled and
//! guards exactly this). Enable with `DCB_TELEMETRY=json|text` (via
//! [`init_from_env`]) or programmatically with [`set_enabled`].
//!
//! ## Example
//!
//! ```
//! use dcb_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::counter!("doc.example.widgets").add(3);
//! telemetry::histogram!("doc.example.sizes").observe(17);
//! {
//!     let _outer = telemetry::span("doc-outer");
//!     let _inner = telemetry::span("doc-inner"); // path: doc-outer/doc-inner
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("doc.example.widgets"), Some(3));
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod registry;
mod sink;
mod span;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{registry, snapshot, Registry, Snapshot, SpanSnapshot, Stability};
pub use sink::{report, report_with, sink_from_env, JsonSink, NullSink, Sink, SinkKind, TextSink};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether collection is currently enabled. This is the one branch every
/// record operation pays when telemetry is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide. Registration still works while
/// disabled; record operations become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Configures collection from the `DCB_TELEMETRY` environment variable:
/// `json` or `text` enable collection (and select the [`report`] sink);
/// anything else (or unset) leaves the default [`NullSink`] and collection
/// disabled. Returns the selected sink kind. Binaries call this once at
/// startup.
pub fn init_from_env() -> SinkKind {
    let kind = sink_from_env();
    set_enabled(!matches!(kind, SinkKind::Null));
    kind
}

/// Registers (or finds) the stable counter named by the literal, cached
/// per call site. See [`Registry::counter`].
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Registers (or finds) the volatile counter named by the literal, cached
/// per call site. See [`Registry::volatile_counter`] and the stability
/// discussion in the crate docs.
#[macro_export]
macro_rules! volatile_counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().volatile_counter($name))
    }};
}

/// Registers (or finds) the stable histogram named by the literal, cached
/// per call site. See [`Registry::histogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Registers (or finds) the volatile histogram named by the literal,
/// cached per call site. See [`Registry::volatile_histogram`].
#[macro_export]
macro_rules! volatile_histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().volatile_histogram($name))
    }};
}

/// Serializes tests that toggle the process-wide enabled flag. Every unit
/// test touching [`set_enabled`] must hold this guard.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _g = test_guard();
        let c = registry().counter("lib.test.toggle");
        c.add(5); // collection is disabled while the guard is held
        set_enabled(true);
        c.add(2);
        set_enabled(false);
        c.add(9);
        assert_eq!(c.peek(), 2);
    }

    #[test]
    fn disabled_recording_is_cheap() {
        // Not a benchmark, a regression tripwire: 10M disabled increments
        // must stay far under a second (one load + branch each). A real
        // regression (e.g. locking the registry per record) is orders of
        // magnitude slower and trips even on a loaded CI box.
        let _g = test_guard();
        let c = registry().counter("lib.test.disabled_cost");
        let start = std::time::Instant::now();
        for _ in 0..10_000_000u64 {
            c.incr();
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "disabled-path cost regressed: {:?}",
            start.elapsed()
        );
        assert_eq!(c.peek(), 0);
    }

    #[test]
    fn macros_cache_and_register() {
        let _g = test_guard();
        set_enabled(true);
        counter!("lib.test.macro").incr();
        counter!("lib.test.macro").incr();
        histogram!("lib.test.macro_hist").observe(4);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test.macro"), Some(2));
    }
}
