//! Pluggable report sinks.
//!
//! A [`Sink`] turns a [`Snapshot`] into a rendered report (or nothing, for
//! [`NullSink`]). Sinks exist so the decision of *whether and how* to
//! surface telemetry lives at the edge of a binary, not inside
//! instrumented code: model layers only ever record, and a binary's `main`
//! calls [`report`] once at exit.

use crate::registry::Snapshot;

/// Renders a snapshot into a report string, or `None` to emit nothing.
pub trait Sink {
    /// Renders `snapshot`, or returns `None` if this sink is inert.
    fn render(&self, snapshot: &Snapshot) -> Option<String>;
}

/// The default sink: renders nothing. With this sink selected, collection
/// stays disabled and every record operation costs one branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn render(&self, _snapshot: &Snapshot) -> Option<String> {
        None
    }
}

/// Renders the stable subset as byte-reproducible JSON (see
/// [`Snapshot::to_stable_json`]). Selected by `DCB_TELEMETRY=json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSink;

impl Sink for JsonSink {
    fn render(&self, snapshot: &Snapshot) -> Option<String> {
        Some(snapshot.to_stable_json())
    }
}

/// Renders a human-readable report including volatile metrics and span
/// wall times (see [`Snapshot::to_text`]). Selected by
/// `DCB_TELEMETRY=text`. Not byte-reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextSink;

impl Sink for TextSink {
    fn render(&self, snapshot: &Snapshot) -> Option<String> {
        Some(snapshot.to_text())
    }
}

/// Which sink the `DCB_TELEMETRY` environment variable selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// No reporting, collection disabled (the default).
    Null,
    /// Stable JSON report ([`JsonSink`]).
    Json,
    /// Human-readable text report ([`TextSink`]).
    Text,
}

impl SinkKind {
    /// The sink this kind names.
    #[must_use]
    pub fn sink(self) -> &'static dyn Sink {
        match self {
            SinkKind::Null => &NullSink,
            SinkKind::Json => &JsonSink,
            SinkKind::Text => &TextSink,
        }
    }
}

/// Reads `DCB_TELEMETRY` and returns the selected sink kind: `json`,
/// `text`, or [`SinkKind::Null`] for anything else (including unset).
#[must_use]
pub fn sink_from_env() -> SinkKind {
    match std::env::var("DCB_TELEMETRY").as_deref() {
        Ok("json") => SinkKind::Json,
        Ok("text") => SinkKind::Text,
        _ => SinkKind::Null,
    }
}

/// Snapshots the global registry and renders it through the sink
/// `DCB_TELEMETRY` selects. Returns `None` under the default [`NullSink`]
/// (so callers can skip printing entirely). The canonical end-of-run call
/// for binaries.
#[must_use]
pub fn report() -> Option<String> {
    report_with(sink_from_env().sink())
}

/// Snapshots the global registry and renders it through `sink`.
#[must_use]
pub fn report_with(sink: &dyn Sink) -> Option<String> {
    sink.render(&crate::snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_renders_nothing() {
        let _g = crate::test_guard();
        assert!(report_with(&NullSink).is_none());
    }

    #[test]
    fn json_and_text_sinks_render() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::registry().counter("sink.test.events").add(1);
        crate::set_enabled(false);
        let json = report_with(&JsonSink).expect("json sink renders");
        assert!(json.contains("\"dcb_telemetry\""));
        assert!(json.contains("\"sink.test.events\": 1"));
        let text = report_with(&TextSink).expect("text sink renders");
        assert!(text.contains("sink.test.events"));
    }

    #[test]
    fn sink_kind_maps_to_sinks() {
        let _g = crate::test_guard();
        assert!(SinkKind::Null.sink().render(&crate::snapshot()).is_none());
        assert!(SinkKind::Json.sink().render(&crate::snapshot()).is_some());
        assert!(SinkKind::Text.sink().render(&crate::snapshot()).is_some());
    }
}
