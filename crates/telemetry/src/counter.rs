//! Monotonic event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic, thread-safe event counter.
///
/// Increments from any thread accumulate into one relaxed atomic, so the
/// total is invariant to scheduling: a workload that performs N increments
/// reports N regardless of `DCB_THREADS`. When collection is disabled
/// (see [`crate::enabled`]) every record operation is one load + branch.
///
/// Counters are obtained from the [`crate::Registry`] (usually via the
/// [`crate::counter!`] macro) and live for the whole process; they are
/// never read back by model code (fenced by the `telemetry-in-result`
/// audit lint) — values leave the process only through a
/// [`crate::Snapshot`].
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events, if collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event, if collection is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value. Crate-internal: snapshots are the only sanctioned
    /// way values leave the telemetry layer.
    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Test-only read of the raw value (kept out of the public snapshot
    /// path so the `telemetry-in-result` lint surface stays minimal).
    #[cfg(test)]
    pub(crate) fn peek(&self) -> u64 {
        self.get()
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_threads() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        crate::set_enabled(false);
        assert_eq!(c.peek(), 4000);
    }

    #[test]
    fn reset_zeroes() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let c = Counter::new();
        c.add(7);
        c.reset();
        crate::set_enabled(false);
        assert_eq!(c.peek(), 0);
    }
}
