//! The process-wide metric registry and its stable-ordered snapshot.

use crate::counter::Counter;
use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a registry map, recovering from poisoning: entries are leaked
/// `&'static` metrics inserted whole, so a panicked writer cannot leave a
/// torn value and recovery is always safe.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a metric's value is a pure function of the evaluated workload
/// (`Stable`) or may vary with scheduling, thread count, or the wall
/// clock (`Volatile`). Declared at registration; the JSON sink renders
/// only `Stable` metrics (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stability {
    /// Byte-reproducible across runs and `DCB_THREADS` settings.
    Stable,
    /// Scheduling- or clock-dependent; excluded from reproducible output.
    Volatile,
}

#[derive(Debug, Default)]
struct SpanStat {
    calls: u64,
    wall_ns: u128,
}

/// The process-wide registry of counters, histograms, and span stats.
///
/// Metrics register on first use under a `&'static str` name and live for
/// the whole process (they are leaked, so call sites can hold cheap
/// `&'static` handles via the [`crate::counter!`]-family macros). All
/// maps are `BTreeMap`s keyed by name, so every [`Snapshot`] comes out in
/// one canonical order — no dependence on registration order or hash
/// seeds.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, (Stability, &'static Counter)>>,
    histograms: Mutex<BTreeMap<&'static str, (Stability, &'static Histogram)>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// The global registry all instrumentation records into.
#[must_use]
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Snapshots the global registry. Equivalent to
/// [`registry()`](registry)`.snapshot()`; this free function is the
/// canonical read surface the `telemetry-in-result` audit lint fences out
/// of model code.
#[must_use]
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

impl Registry {
    fn counter_with(&self, name: &'static str, stability: Stability) -> &'static Counter {
        lock(&self.counters)
            .entry(name)
            .or_insert_with(|| (stability, Box::leak(Box::new(Counter::new()))))
            .1
        // A name registered under two stability classes keeps the
        // first; names are workspace-unique by convention (see
        // OBSERVABILITY.md).
    }

    /// Registers (or finds) a stable counter. Prefer the
    /// [`crate::counter!`] macro, which caches the handle per call site.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.counter_with(name, Stability::Stable)
    }

    /// Registers (or finds) a volatile counter (scheduling-dependent;
    /// excluded from reproducible output).
    pub fn volatile_counter(&self, name: &'static str) -> &'static Counter {
        self.counter_with(name, Stability::Volatile)
    }

    fn histogram_with(&self, name: &'static str, stability: Stability) -> &'static Histogram {
        lock(&self.histograms)
            .entry(name)
            .or_insert_with(|| (stability, Box::leak(Box::new(Histogram::new()))))
            .1
    }

    /// Registers (or finds) a stable histogram. Prefer the
    /// [`crate::histogram!`] macro.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.histogram_with(name, Stability::Stable)
    }

    /// Registers (or finds) a volatile histogram.
    pub fn volatile_histogram(&self, name: &'static str) -> &'static Histogram {
        self.histogram_with(name, Stability::Volatile)
    }

    /// Accumulates one closed span occurrence. Called by
    /// [`crate::SpanGuard`] on drop.
    pub(crate) fn record_span(&self, path: &str, wall_ns: u128) {
        let mut spans = lock(&self.spans);
        let stat = if let Some(stat) = spans.get_mut(path) {
            stat
        } else {
            spans.entry(path.to_owned()).or_default()
        };
        stat.calls += 1;
        stat.wall_ns += wall_ns;
    }

    /// Freezes every metric into a [`Snapshot`], in canonical name order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters);
        let histograms = lock(&self.histograms);
        let spans = lock(&self.spans);
        Snapshot {
            counters: counters
                .iter()
                .map(|(name, (stability, counter))| ((*name).to_owned(), *stability, counter.get()))
                .collect(),
            histograms: histograms
                .iter()
                .map(|(name, (stability, histogram))| {
                    ((*name).to_owned(), *stability, histogram.snapshot())
                })
                .collect(),
            spans: spans
                .iter()
                .map(|(path, stat)| SpanSnapshot {
                    path: path.clone(),
                    calls: stat.calls,
                    wall_ns: stat.wall_ns,
                })
                .collect(),
        }
    }

    /// Zeroes every counter, histogram, and span stat (registrations are
    /// kept). Benchmarks use this to isolate an instrumented pass.
    pub fn reset(&self) {
        for (_, counter) in lock(&self.counters).values() {
            counter.reset();
        }
        for (_, histogram) in lock(&self.histograms).values() {
            histogram.reset();
        }
        lock(&self.spans).clear();
    }
}

/// A frozen, stable-ordered view of the registry.
///
/// Everything is sorted by metric name / span path, so two snapshots of
/// identical metric state render byte-identically. The *stable* subset
/// (see [`Stability`]) is additionally identical across `DCB_THREADS`
/// settings for a fixed workload — that is what
/// [`Snapshot::to_stable_json`] renders and what the snapshot tests
/// byte-compare.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, stability, value)` for every registered counter, sorted by
    /// name.
    pub counters: Vec<(String, Stability, u64)>,
    /// `(name, stability, contents)` for every registered histogram,
    /// sorted by name.
    pub histograms: Vec<(String, Stability, HistogramSnapshot)>,
    /// Per-path span statistics, sorted by path.
    pub spans: Vec<SpanSnapshot>,
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `/`-joined nesting path (`repro/fig5/sweep_configs`).
    pub path: String,
    /// Times the span was opened and closed. Stable.
    pub calls: u64,
    /// Total wall time spent inside, in nanoseconds. Volatile.
    pub wall_ns: u128,
}

/// Minimal JSON string escaping for metric names and span paths.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// The value of a counter by name, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, v)| *v)
    }

    /// The contents of a histogram by name, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, h)| h)
    }

    /// Derived ratios computed from stable metrics at snapshot time,
    /// rendered with a fixed precision so output stays byte-reproducible.
    /// Every `<prefix>.hits` / `<prefix>.misses` stable counter pair
    /// yields a `<prefix>.hit_rate`, and every stable histogram yields a
    /// `<name>_mean` (`sum / count`, e.g.
    /// `sim.kernel.segments_per_outage_mean`). Entries are sorted by name.
    fn derived(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (name, stability, hits) in &self.counters {
            if *stability != Stability::Stable {
                continue;
            }
            let Some(prefix) = name.strip_suffix(".hits") else {
                continue;
            };
            let Some(misses) = self.counter(&format!("{prefix}.misses")) else {
                continue;
            };
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                *hits as f64 / total as f64
            };
            out.push((format!("{prefix}.hit_rate"), format!("{rate:.6}")));
        }
        for (name, stability, histogram) in &self.histograms {
            if *stability != Stability::Stable {
                continue;
            }
            out.push((format!("{name}_mean"), format!("{:.6}", histogram.mean())));
        }
        out.sort();
        out
    }

    fn render_histogram_json(h: &HistogramSnapshot) -> String {
        let buckets = h
            .buckets
            .iter()
            .map(|(lo, hi, count)| format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{count}}}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            h.count, h.sum, buckets
        )
    }

    fn render_json(&self, include_volatile: bool) -> String {
        let keep = |s: Stability| include_volatile || s == Stability::Stable;
        let mut out = String::from("{\n  \"dcb_telemetry\": {\n");
        out.push_str("    \"counters\": {");
        let counters = self
            .counters
            .iter()
            .filter(|(_, s, _)| keep(*s))
            .map(|(name, _, value)| format!("\n      \"{}\": {value}", escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&counters);
        out.push_str("\n    },\n    \"derived\": {");
        let derived = self
            .derived()
            .iter()
            .map(|(name, value)| format!("\n      \"{}\": {value}", escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&derived);
        out.push_str("\n    },\n    \"histograms\": {");
        let histograms = self
            .histograms
            .iter()
            .filter(|(_, s, _)| keep(*s))
            .map(|(name, _, h)| {
                format!(
                    "\n      \"{}\": {}",
                    escape(name),
                    Self::render_histogram_json(h)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&histograms);
        out.push_str("\n    },\n    \"spans\": [");
        let spans = self
            .spans
            .iter()
            .map(|span| {
                if include_volatile {
                    format!(
                        "\n      {{\"path\":\"{}\",\"calls\":{},\"wall_ns\":{}}}",
                        escape(&span.path),
                        span.calls,
                        span.wall_ns
                    )
                } else {
                    format!(
                        "\n      {{\"path\":\"{}\",\"calls\":{}}}",
                        escape(&span.path),
                        span.calls
                    )
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&spans);
        out.push_str("\n    ]\n  }\n}\n");
        out
    }

    /// Renders the **stable** subset as JSON: stable counters and
    /// histograms, derived ratios, and span paths + call counts (no wall
    /// times, no volatile metrics). Byte-reproducible across runs and
    /// `DCB_THREADS` settings for a fixed workload; safe to assert in
    /// tests.
    #[must_use]
    pub fn to_stable_json(&self) -> String {
        self.render_json(false)
    }

    /// Renders everything as JSON, including volatile metrics and span
    /// wall times. For bench reports and humans; **not** reproducible.
    #[must_use]
    pub fn to_full_json(&self) -> String {
        self.render_json(true)
    }

    /// Renders a human-readable report, including volatile metrics and
    /// span wall times (marked as such). Not byte-reproducible.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("dcb-telemetry report\n");
        let _ = writeln!(out, "  counters:");
        for (name, stability, value) in &self.counters {
            let tag = if *stability == Stability::Volatile {
                "  [volatile]"
            } else {
                ""
            };
            let _ = writeln!(out, "    {name:<44} {value:>12}{tag}");
        }
        for (name, value) in self.derived() {
            let _ = writeln!(out, "    {name:<44} {value:>12}  [derived]");
        }
        let _ = writeln!(out, "  histograms:");
        for (name, stability, h) in &self.histograms {
            let tag = if *stability == Stability::Volatile {
                "  [volatile]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {name}: count {} sum {} mean {:.2} p50 \u{2264} {} p95 \u{2264} {} max \u{2264} {}{tag}",
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.max_observed()
            );
            for (lo, hi, count) in &h.buckets {
                let _ = writeln!(out, "      [{lo}, {hi}] {count}");
            }
        }
        let _ = writeln!(out, "  spans (wall times are volatile):");
        for span in &self.spans {
            let _ = writeln!(
                out,
                "    {:<44} calls {:>8}  wall {:.3} ms",
                span.path,
                span.calls,
                span.wall_ns as f64 / 1e6
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_and_reproducible() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        registry().counter("registry.test.zz").add(2);
        registry().counter("registry.test.aa").add(1);
        registry().histogram("registry.test.hist").observe(5);
        crate::set_enabled(false);
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a.to_stable_json(), b.to_stable_json());
        let names: Vec<&String> = a.counters.iter().map(|(n, _, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn volatile_metrics_are_excluded_from_stable_json() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        registry()
            .volatile_counter("registry.test.volatile")
            .add(99);
        crate::set_enabled(false);
        let snap = snapshot();
        assert!(!snap.to_stable_json().contains("registry.test.volatile"));
        assert!(snap.to_full_json().contains("registry.test.volatile"));
        assert!(snap.to_text().contains("registry.test.volatile"));
    }

    #[test]
    fn hit_rate_is_derived_with_fixed_precision() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        registry().counter("registry.test.cache.hits").add(1);
        registry().counter("registry.test.cache.misses").add(3);
        crate::set_enabled(false);
        let json = snapshot().to_stable_json();
        assert!(
            json.contains("\"registry.test.cache.hit_rate\": 0.250000"),
            "{json}"
        );
    }

    #[test]
    fn histogram_means_are_derived_and_entries_sorted() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        registry().histogram("registry.test.meanhist").observe(3);
        registry().histogram("registry.test.meanhist").observe(6);
        registry().counter("registry.test.zz.hits").add(1);
        registry().counter("registry.test.zz.misses").add(0);
        crate::set_enabled(false);
        let snap = snapshot();
        let json = snap.to_stable_json();
        assert!(
            json.contains("\"registry.test.meanhist_mean\": 4.500000"),
            "{json}"
        );
        // Derived entries are sorted by name regardless of source kind.
        let derived = snap.derived();
        let names: Vec<&String> = derived.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        // Quantile bounds reach the text report.
        let text = snap.to_text();
        assert!(text.contains("p50 \u{2264}"), "{text}");
        assert!(text.contains("max \u{2264}"), "{text}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
