//! Fixed-bucket log-scale histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket `i` holds values whose bit length is `i`: bucket 0 is exactly
/// `{0}`, bucket `i ≥ 1` spans `[2^(i-1), 2^i - 1]`. 65 buckets cover the
/// full `u64` range.
const BUCKETS: usize = 65;

/// A fixed-bucket base-2 log-scale histogram of `u64` observations.
///
/// The bucket layout is static (no resizing, no quantile sketching), so
/// recording is one atomic increment and the snapshot is a pure function
/// of the multiset of observed values — identical observations produce
/// identical buckets regardless of thread interleaving. Log-scale buckets
/// suit the quantities this workspace observes (segments per outage,
/// bisection iterations per search): exact at the small end, coarse at
/// the long tail.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// The index of the bucket holding `value`: its bit length.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (index - 1);
        let hi = if index == 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (lo, hi)
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation, if collection is enabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (index, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                let (lo, hi) = bucket_bounds(index);
                buckets.push((lo, hi, count));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub(crate) fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// The frozen contents of a [`Histogram`]: total observation count, sum,
/// and the non-empty buckets as `(lo, hi, count)` triples in ascending
/// value order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations recorded.
    pub count: u64,
    /// Sum of all observed values (wrapping in the astronomically unlikely
    /// case of `u64` overflow).
    pub sum: u64,
    /// Non-empty buckets: inclusive value range and observation count.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (0 when empty). Bucket-upper-bound semantics make this
    /// *conservative*: the true quantile is ≤ the returned value, and
    /// because buckets are power-of-two ranges it overestimates by at most
    /// 2× (exactly correct for values 0 and 1, which get singleton
    /// buckets).
    #[must_use]
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the q-quantile observation, 1-based, clamped into range.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(_, hi, count) in &self.buckets {
            seen += count;
            if seen >= target {
                return hi;
            }
        }
        self.max_observed()
    }

    /// Conservative median: the upper bound of the bucket holding the
    /// 50th-percentile observation (see [`Self::quantile_upper`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_upper(0.50)
    }

    /// Conservative 95th percentile: the upper bound of the bucket holding
    /// the 95th-percentile observation (see [`Self::quantile_upper`]).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile_upper(0.95)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty): the
    /// largest value the histogram can rule in — the true maximum is ≤
    /// this, with the same ≤2× conservatism as the quantiles.
    #[must_use]
    pub fn max_observed(&self) -> u64 {
        self.buckets.last().map_or(0, |&(_, hi, _)| hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn observations_land_in_the_right_buckets() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.observe(v);
        }
        crate::set_enabled(false);
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 25);
        assert_eq!(
            snap.buckets,
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 2), (8, 15, 1)]
        );
        assert!((snap.mean() - 25.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        // 10 observations: 0, 1..=8 land in buckets {0},{1},{2,3},{4..7},{8..15}.
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 8] {
            h.observe(v);
        }
        crate::set_enabled(false);
        let snap = h.snapshot();
        // 5th observation (rank ceil(0.5*10)=5) is value 4 → bucket [4,7].
        assert_eq!(snap.p50(), 7);
        // Rank ceil(0.95*10)=10 is value 8 → bucket [8,15].
        assert_eq!(snap.p95(), 15);
        assert_eq!(snap.max_observed(), 15);
        // Conservatism: the true values are ≤ the reported bounds.
        assert!(snap.p50() >= 4 && snap.p95() >= 8);
    }

    #[test]
    fn quantiles_of_the_empty_histogram_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p95(), 0);
        assert_eq!(snap.max_observed(), 0);
    }

    #[test]
    fn singleton_buckets_are_exact() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        for _ in 0..4 {
            h.observe(1);
        }
        h.observe(0);
        crate::set_enabled(false);
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 1, "values 0 and 1 have singleton buckets");
        assert_eq!(snap.max_observed(), 1);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let h = Histogram::new();
        h.observe(42);
        assert_eq!(h.snapshot().count, 0);
    }
}
