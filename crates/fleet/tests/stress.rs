//! Race/interleaving stress: hammer the pool and the shared cache with
//! float-producing workloads across every `DCB_THREADS` setting from 1 to
//! 8 and assert bit-identical results against the serial reference
//! (`f64::to_bits`, not approximate equality).

use dcb_fleet::{EvalCache, FleetPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// A float workload with enough arithmetic to expose any reordering:
/// a short chaotic (logistic-map) iteration seeded by the index.
fn chaotic(index: u64) -> f64 {
    let mut x = (index as f64 + 0.5) / 1e4 % 1.0;
    for _ in 0..64 {
        x = 3.999 * x * (1.0 - x);
    }
    x
}

#[test]
fn dcb_threads_sweep_is_bit_identical_to_serial() {
    // DCB_THREADS is read per `FleetPool::new()` call, so mutating it and
    // constructing a fresh pool inside this one test is safe: integration
    // tests run in their own process, and nothing else in this file
    // touches the variable.
    let items: Vec<u64> = (0..997).collect();
    let reference: Vec<u64> = items.iter().map(|&i| chaotic(i).to_bits()).collect();
    for threads in 1..=8 {
        std::env::set_var("DCB_THREADS", threads.to_string());
        let pool = FleetPool::new();
        assert_eq!(pool.threads(), threads, "DCB_THREADS={threads} not honored");
        for round in 0..4 {
            let got: Vec<u64> = pool
                .run_all(&items, |&i| chaotic(i))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(
                got, reference,
                "bits diverged at DCB_THREADS={threads}, round {round}"
            );
        }
    }
    std::env::remove_var("DCB_THREADS");
}

#[test]
fn shared_cache_under_contention_computes_each_key_once_per_value() {
    // 8 workers × 200 lookups over only 50 hot keys: heavy shard
    // contention. Values must stay bit-stable and every key must resolve
    // to the same value on every thread.
    let cache: EvalCache<f64> = EvalCache::new();
    let computes = AtomicU64::new(0);
    let pool = FleetPool::with_threads(8);
    let lookups: Vec<u64> = (0..1600).map(|i| i % 50).collect();
    let results = pool.run_all(&lookups, |&key| {
        cache.get_or_compute(u128::from(key), || {
            computes.fetch_add(1, Ordering::Relaxed);
            chaotic(key)
        })
    });
    for (&key, &value) in lookups.iter().zip(&results) {
        assert_eq!(
            value.to_bits(),
            chaotic(key).to_bits(),
            "cache returned a different value for key {key}"
        );
    }
    assert_eq!(cache.len(), 50);
    // `get_or_compute` races compute outside the lock, so a key may be
    // computed more than once under contention — but never unboundedly
    // (at most once per concurrent looker), and the cached value must
    // make every later lookup a hit.
    let computed = computes.load(Ordering::Relaxed);
    assert!((50..=400).contains(&computed), "{computed} computes");
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 1600);
    assert!(stats.hits >= 1200, "only {} hits", stats.hits);
}

#[test]
fn repeated_batches_reuse_the_cache_deterministically() {
    // Re-running the same batch through one shared cache must return the
    // original bits: later rounds are pure hits, never recomputation with
    // drifted state.
    let cache: EvalCache<f64> = EvalCache::new();
    let items: Vec<u64> = (0..300).collect();
    let first: Vec<u64> = FleetPool::with_threads(5)
        .run_all(&items, |&i| {
            cache.get_or_compute(u128::from(i), || chaotic(i))
        })
        .into_iter()
        .map(f64::to_bits)
        .collect();
    for threads in [1usize, 3, 8] {
        let again: Vec<u64> = FleetPool::with_threads(threads)
            .run_all(&items, |&i| {
                cache.get_or_compute(u128::from(i), || chaotic(i) + 1.0)
            })
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(again, first, "cache bypassed at {threads} threads");
    }
    assert_eq!(cache.len(), 300);
}

#[test]
fn monte_carlo_stays_sharded_and_stable_under_stress() {
    let reference = FleetPool::with_threads(1)
        .monte_carlo(42, 511, 1, |t| chaotic(t.seed ^ t.index as u64).to_bits());
    for threads in 1..=8 {
        for shards in [0usize, 3, 17, 511] {
            let got = FleetPool::with_threads(threads).monte_carlo(42, 511, shards, |t| {
                chaotic(t.seed ^ t.index as u64).to_bits()
            });
            assert_eq!(
                got, reference,
                "monte carlo diverged at {threads} threads / {shards} shards"
            );
        }
    }
}

#[test]
fn nested_fan_out_from_workers_matches_serial() {
    // A worker closure that itself calls run_all must run the inner batch
    // inline (no thread explosion) and still produce identical bits.
    let inner_items: Vec<u64> = (0..37).collect();
    let reference: Vec<u64> = (0..23u64)
        .map(|outer| {
            inner_items
                .iter()
                .map(|&i| chaotic(outer.wrapping_mul(31) ^ i))
                .sum::<f64>()
                .to_bits()
        })
        .collect();
    let outer_items: Vec<u64> = (0..23).collect();
    let pool = FleetPool::with_threads(8);
    let got: Vec<u64> = pool
        .run_all(&outer_items, |&outer| {
            pool.run_all(&inner_items, |&i| chaotic(outer.wrapping_mul(31) ^ i))
                .into_iter()
                .sum::<f64>()
        })
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert_eq!(got, reference);
}
