//! The determinism contract, property-tested: parallel execution is
//! bit-identical to the serial reference for every thread count, and
//! Monte-Carlo batches are invariant to how they are sharded.

use dcb_fleet::{trial_seed, FleetPool};
use proptest::prelude::*;

/// A cheap but index-sensitive stand-in for scenario evaluation.
fn work(x: u64, salt: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(13)
        .wrapping_add(salt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn run_all_matches_serial_for_threads_1_to_8(
        len in 0usize..257,
        salt in 0u64..=u64::MAX,
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i ^ salt).collect();
        let reference: Vec<u64> = items.iter().map(|&x| work(x, salt)).collect();
        for threads in 1..=8usize {
            let got = FleetPool::with_threads(threads).run_all(&items, |&x| work(x, salt));
            prop_assert_eq!(&got, &reference, "diverged at {} threads", threads);
        }
    }

    #[test]
    fn monte_carlo_invariant_to_shard_and_thread_count(
        trials in 1usize..300,
        base_seed in 0u64..=u64::MAX,
    ) {
        // Serial, single-shard run is the reference.
        let reference = FleetPool::with_threads(1)
            .monte_carlo(base_seed, trials, 1, |t| work(t.seed, t.index as u64));
        for threads in [1usize, 2, 3, 8] {
            for shards in [0usize, 1, 2, 7, 64, 1024] {
                let got = FleetPool::with_threads(threads)
                    .monte_carlo(base_seed, trials, shards, |t| work(t.seed, t.index as u64));
                prop_assert_eq!(
                    &got, &reference,
                    "diverged at {} threads, {} shards", threads, shards
                );
            }
        }
    }

    #[test]
    fn trial_seeds_depend_only_on_base_and_index(
        base_seed in 0u64..=u64::MAX,
        index in 0u64..1_000_000,
    ) {
        prop_assert_eq!(trial_seed(base_seed, index), trial_seed(base_seed, index));
        // Neighbouring trials get distinct streams.
        prop_assert!(trial_seed(base_seed, index) != trial_seed(base_seed, index + 1));
    }
}
