//! # dcb-fleet
//!
//! Deterministic, std-only parallel scenario execution for the
//! underprovisioning framework.
//!
//! Every expensive path in the reproduction — configuration sweeps, sizing
//! bisections, planner searches, Monte-Carlo availability analysis — is an
//! embarrassingly parallel loop over independent
//! `(cluster, config, technique, duration)` points. This crate provides the
//! shared machinery those paths fan out on:
//!
//! * [`FleetPool`] — a work-queue thread pool sized from
//!   [`std::thread::available_parallelism`], overridable with the
//!   `DCB_THREADS` environment variable, with a serial fallback at `N = 1`.
//!   Its batch APIs preserve input ordering, so parallel output is
//!   **bit-identical** to the serial reference.
//! * [`EvalCache`] — a sharded memoization map keyed by a 128-bit stable
//!   digest, so repeated sweeps, bisection probes, and planner searches
//!   never re-simulate the same point.
//! * [`Scenario`] — the canonical evaluation key: one
//!   `(cluster, config, technique, duration)` point with a stable digest.
//! * [`FleetPool::monte_carlo`] — sharded Monte-Carlo driving with
//!   per-trial seeding ([`trial_seed`]), making results invariant to the
//!   shard count for a fixed base seed.
//!
//! ## Determinism contract
//!
//! For any inputs and any thread/shard configuration:
//!
//! * `pool.run_all(items, f)[i] == f(&items[i])` element-for-element;
//! * `pool.monte_carlo(seed, n, s, f)` is the same vector for every `s`;
//! * cache hits return clones of the exact value first computed.
//!
//! The pool owns no background threads: each batch call spawns scoped
//! workers that drain an atomic work queue and exit, so there is no global
//! state to poison and nested batch calls simply run inline on the worker
//! that issued them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hash;
mod pool;
mod scenario;

pub use cache::{CacheStats, EvalCache};
pub use hash::{stable_digest, StableHasher};
pub use pool::{trial_seed, FleetPool, Trial};
pub use scenario::Scenario;
