//! Stable 128-bit hashing for memoization keys.
//!
//! [`std::hash::Hasher`] is the wrong tool here twice over: `HashMap`'s
//! default hasher is randomized per process, and the spec types carry
//! `f64` fields that deliberately don't implement `Hash`. This module
//! hashes values through their *canonical `Debug` encoding* with FNV-1a
//! (128-bit), which is deterministic across runs and covers every semantic
//! field of a `#[derive(Debug)]` struct. 128 bits keeps the accidental
//! collision probability negligible (≈ 2⁻⁶⁴ even for billions of keys), so
//! digests can be used directly as cache keys.

use std::fmt::{Debug, Write};

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// An incremental FNV-1a (128-bit) hasher with a stable byte encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a string's UTF-8 bytes plus a terminator (so `("ab", "c")`
    /// and `("a", "bc")` hash differently).
    pub fn write_str(&mut self, value: &str) {
        self.write_bytes(value.as_bytes());
        self.write_bytes(&[0xFF]);
    }

    /// Absorbs an unsigned integer, little-endian.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a float via its IEEE-754 bit pattern (so `-0.0` and `0.0`
    /// hash differently, and `NaN` payloads are respected).
    // dcb-audit: allow(unit-flow, the hash substrate absorbs raw bits; dimensions are erased on purpose)
    pub fn write_f64(&mut self, value: f64) {
        self.write_bytes(&value.to_bits().to_le_bytes());
    }

    /// Absorbs a value's `Debug` rendering followed by a terminator.
    ///
    /// Derived `Debug` prints every field of a struct/enum, making this a
    /// canonical encoding for plain-data spec types. Types with manual,
    /// lossy `Debug` implementations should be hashed field-by-field
    /// instead.
    pub fn write_debug(&mut self, value: &dyn Debug) {
        struct Absorb<'a>(&'a mut StableHasher);
        impl Write for Absorb<'_> {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.write_bytes(s.as_bytes());
                Ok(())
            }
        }
        // dcb-audit: allow(panic-site, Absorb::write_str is infallible so write! cannot fail)
        write!(Absorb(self), "{value:?}").expect("Debug formatting never fails");
        self.write_bytes(&[0xFE]);
    }

    /// The accumulated digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest of a sequence of `Debug`-encodable parts.
#[must_use]
pub fn stable_digest(parts: &[&dyn Debug]) -> u128 {
    let mut hasher = StableHasher::new();
    for part in parts {
        hasher.write_debug(*part);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_hashers() {
        let a = stable_digest(&[&1.5f64, &"config", &42u32]);
        let b = stable_digest(&[&1.5f64, &"config", &42u32]);
        assert_eq!(a, b);
    }

    #[test]
    fn field_boundaries_matter() {
        assert_ne!(stable_digest(&[&"ab", &"c"]), stable_digest(&[&"a", &"bc"]));
    }

    #[test]
    fn nearby_floats_differ() {
        assert_ne!(
            stable_digest(&[&1.0f64]),
            stable_digest(&[&(1.0f64 + f64::EPSILON)])
        );
        let mut neg = StableHasher::new();
        neg.write_f64(-0.0);
        let mut pos = StableHasher::new();
        pos.write_f64(0.0);
        assert_ne!(neg.finish(), pos.finish());
    }

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV128_OFFSET);
    }
}
