//! The sharded memoization cache for evaluated scenarios.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a shard, recovering from poisoning: cached values are only ever
/// written whole (a panicked writer leaves either the old map or the new
/// entry, never a torn value), so the poison flag carries no information
/// here and recovery is always safe.
fn lock_shard<V>(shard: &Mutex<HashMap<u128, V>>) -> MutexGuard<'_, HashMap<u128, V>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sharded, thread-safe memoization map keyed by 128-bit stable digests
/// (see [`crate::Scenario::digest`] and [`crate::stable_digest`]).
///
/// Keys are the digests themselves: with 128-bit digests the accidental
/// collision probability is negligible, so no full key is stored. Lookups
/// lock only the shard owning the key; misses compute *outside* the lock,
/// so a slow simulation never serializes unrelated evaluations (two racing
/// misses on the same key may both compute — the first insert wins, which
/// is harmless because evaluation is deterministic).
///
/// ```
/// use dcb_fleet::EvalCache;
///
/// let cache: EvalCache<u64> = EvalCache::new();
/// assert_eq!(cache.get_or_compute(7, || 41 + 1), 42);
/// assert_eq!(cache.get_or_compute(7, || unreachable!("memoized")), 42);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct EvalCache<V> {
    shards: Box<[Mutex<HashMap<u128, V>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss counters for an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const DEFAULT_SHARDS: usize = 16;

impl<V: Clone> EvalCache<V> {
    /// A cache with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (clamped up to 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, V>> {
        // The digest's low bits are well-mixed; fold in the high half anyway.
        let fold = (key as u64) ^ ((key >> 64) as u64);
        &self.shards[(fold as usize) % self.shards.len()]
    }

    /// The cached value for `key`, if any.
    #[must_use]
    pub fn get(&self, key: u128) -> Option<V> {
        lock_shard(self.shard(key)).get(&key).cloned()
    }

    /// Stores a value, overwriting any previous entry.
    pub fn insert(&self, key: u128, value: V) {
        lock_shard(self.shard(key)).insert(key, value);
    }

    /// Returns the cached value for `key`, computing and caching it on a
    /// miss. `compute` runs outside the shard lock.
    pub fn get_or_compute(&self, key: u128, compute: impl FnOnce() -> V) -> V {
        // Both counters register up front (registration is a cached
        // OnceLock read) so the derived hit rate appears in snapshots even
        // for all-miss workloads.
        let hit_events = dcb_telemetry::counter!("fleet.cache.hits");
        let miss_events = dcb_telemetry::counter!("fleet.cache.misses");
        if let Some(value) = self.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hit_events.incr();
            dcb_trace::instant(None, None, || dcb_trace::EventKind::CacheHit {
                digest: format!("{key:032x}"),
            });
            return value;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        miss_events.incr();
        dcb_trace::instant(None, None, || dcb_trace::EventKind::CacheMiss {
            digest: format!("{key:032x}"),
        });
        if dcb_prof::enabled() {
            let _cache = dcb_prof::frame("eval-cache");
            dcb_prof::record(dcb_prof::WorkKind::CacheMisses, 1);
        }
        let value = compute();
        lock_shard(self.shard(key))
            .entry(key)
            .or_insert_with(|| value.clone());
        value
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_shard(shard).len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        dcb_telemetry::counter!("fleet.cache.evictions").add(self.len() as u64);
        for shard in &self.shards {
            lock_shard(shard).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Hit/miss counters since construction (or the last [`Self::clear`]).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<V: Clone> Default for EvalCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache: EvalCache<String> = EvalCache::new();
        assert_eq!(cache.get_or_compute(1, || "a".to_owned()), "a");
        assert_eq!(cache.get_or_compute(1, || "b".to_owned()), "a");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let cache: EvalCache<u8> = EvalCache::with_shards(4);
        for key in 0..100u128 {
            cache.get_or_compute(key * 7, || key as u8);
        }
        assert_eq!(cache.len(), 100);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_hammering_stays_consistent() {
        let cache: EvalCache<u128> = EvalCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for key in 0..500u128 {
                        assert_eq!(cache.get_or_compute(key, || key * 2), key * 2);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 500);
    }
}
