//! The canonical evaluation key: one (cluster, config, technique, duration)
//! point.

use crate::hash::StableHasher;
use dcb_power::BackupConfig;
use dcb_sim::{Cluster, Technique};
use dcb_units::Seconds;

/// One point in the cost-performability space, as a value: the cluster
/// spec, backup configuration, outage-handling technique, and outage
/// duration that together determine an evaluation.
///
/// Evaluation is a pure function of these four components, which is what
/// makes memoization sound: two scenarios with equal [`Self::digest`]s
/// simulate identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The cluster under test.
    pub cluster: Cluster,
    /// The backup power configuration.
    pub config: BackupConfig,
    /// The outage-handling technique.
    pub technique: Technique,
    /// The outage duration.
    pub duration: Seconds,
}

impl Scenario {
    /// Bundles one evaluation point.
    #[must_use]
    pub fn new(
        cluster: &Cluster,
        config: &BackupConfig,
        technique: &Technique,
        duration: Seconds,
    ) -> Self {
        Self {
            cluster: *cluster,
            config: config.clone(),
            technique: technique.clone(),
            duration,
        }
    }

    /// The scenario's stable 128-bit digest, suitable as an
    /// [`crate::EvalCache`] key.
    ///
    /// Hashes each component through its derived-`Debug` canonical encoding
    /// (see [`StableHasher::write_debug`]): every semantic field — server
    /// spec, workload parameters, DG/UPS fractions, battery runtime and
    /// chemistry, technique actions — participates, and the duration is
    /// hashed by IEEE-754 bit pattern.
    #[must_use]
    pub fn digest(&self) -> u128 {
        let mut hasher = StableHasher::new();
        hasher.write_debug(&self.cluster);
        hasher.write_debug(&self.config);
        hasher.write_debug(&self.technique);
        hasher.write_f64(self.duration.value());
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcb_workload::Workload;

    fn base() -> Scenario {
        Scenario::new(
            &Cluster::rack(Workload::specjbb()),
            &BackupConfig::no_dg(),
            &Technique::ride_through(),
            Seconds::from_minutes(5.0),
        )
    }

    #[test]
    fn digest_is_stable() {
        assert_eq!(base().digest(), base().digest());
    }

    #[test]
    fn every_component_feeds_the_digest() {
        let reference = base().digest();
        let mut other_workload = base();
        other_workload.cluster = Cluster::rack(Workload::memcached());
        let mut other_config = base();
        other_config.config = BackupConfig::max_perf();
        let mut other_technique = base();
        other_technique.technique = Technique::sleep();
        let mut other_duration = base();
        other_duration.duration = Seconds::from_minutes(5.0 + 1e-9);
        for (what, scenario) in [
            ("workload", other_workload),
            ("config", other_config),
            ("technique", other_technique),
            ("duration", other_duration),
        ] {
            assert_ne!(reference, scenario.digest(), "{what} ignored by digest");
        }
    }

    #[test]
    fn table3_catalog_grid_has_no_collisions() {
        let cluster = Cluster::rack(Workload::specjbb());
        let mut digests = Vec::new();
        for config in BackupConfig::table3() {
            for technique in Technique::catalog() {
                for minutes in [0.5, 5.0, 30.0, 60.0, 120.0] {
                    digests.push(
                        Scenario::new(
                            &cluster,
                            &config,
                            &technique,
                            Seconds::from_minutes(minutes),
                        )
                        .digest(),
                    );
                }
            }
        }
        let total = digests.len();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), total, "digest collision in the paper grid");
    }
}
