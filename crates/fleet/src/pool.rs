//! The work-queue thread pool and its order-preserving batch APIs.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set while a fleet worker is executing its closure: nested batch
    /// calls detect it and run inline instead of over-spawning.
    static IN_FLEET_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A deterministic scenario-execution pool.
///
/// The pool is a *configuration* (a thread count), not a set of live
/// threads: each batch call spawns that many scoped workers which drain a
/// shared atomic work queue and join before the call returns. Workers
/// collect `(index, result)` pairs locally and results are re-assembled in
/// input order, so output is bit-identical to the serial reference
/// regardless of scheduling.
///
/// ```
/// use dcb_fleet::FleetPool;
///
/// let pool = FleetPool::with_threads(4);
/// let squares = pool.run_all(&[1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct FleetPool {
    threads: usize,
}

impl FleetPool {
    /// A pool sized from the environment: the `DCB_THREADS` variable if set
    /// to a positive integer, otherwise [`std::thread::available_parallelism`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(default_thread_count())
    }

    /// A pool with an explicit worker count (clamped up to 1). One worker
    /// means every batch call runs serially on the calling thread.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `eval` over every item, preserving input ordering.
    ///
    /// Serial when the pool has one worker, when the batch is trivially
    /// small, or when called from inside another `run_all` (nested fan-out
    /// runs inline on the issuing worker).
    ///
    /// # Panics
    ///
    /// Propagates a panic from `eval` after all workers have stopped.
    pub fn run_all<T, R, F>(&self, items: &[T], eval: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // Claim one trace lane per item *here, on the calling thread* —
        // program order makes lane assignment a pure function of the
        // workload, so traces are byte-identical across thread counts.
        // Returns None when tracing is off or this batch is nested.
        let lane_base = dcb_trace::claim_lanes(items.len());
        // The profiler's attribution path is captured the same way: on
        // the calling thread, so every worker records under the frames
        // open at the submission site regardless of scheduling.
        let prof_handoff = dcb_prof::handoff();
        let eval_in_lane = |index: usize, item: &T| -> R {
            let _prof = prof_handoff.as_ref().map(dcb_prof::enter);
            match lane_base {
                Some(base) => {
                    let _guard = dcb_trace::lane_scope(base + index as u64);
                    eval(item)
                }
                None => eval(item),
            }
        };
        if self.threads <= 1 || items.len() <= 1 || IN_FLEET_WORKER.get() {
            return items
                .iter()
                .enumerate()
                .map(|(index, item)| eval_in_lane(index, item))
                .collect();
        }
        let queue = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        // Scheduling shape (how many workers spawned, how the queue split
        // across them) varies with DCB_THREADS, so these are volatile.
        dcb_telemetry::volatile_counter!("fleet.pool.batches").incr();
        dcb_telemetry::volatile_counter!("fleet.pool.workers_spawned").add(workers as u64);
        let mut harvested: Vec<(usize, R)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        IN_FLEET_WORKER.set(true);
                        let mut local = Vec::new();
                        loop {
                            let index = queue.fetch_add(1, Ordering::Relaxed);
                            if index >= items.len() {
                                break;
                            }
                            local.push((index, eval_in_lane(index, &items[index])));
                        }
                        IN_FLEET_WORKER.set(false);
                        dcb_telemetry::volatile_histogram!("fleet.pool.tasks_per_worker")
                            .observe(local.len() as u64);
                        local
                    })
                })
                .collect();
            for handle in handles {
                // dcb-audit: allow(panic-site, deliberate worker-panic propagation to the caller)
                harvested.extend(handle.join().expect("fleet worker panicked"));
            }
        });
        // Re-assemble in input order.
        harvested.sort_by_key(|(index, _)| *index);
        debug_assert_eq!(harvested.len(), items.len());
        harvested.into_iter().map(|(_, result)| result).collect()
    }

    /// Runs `trials` independent Monte-Carlo trials, fanned out over
    /// `shards` contiguous chunks (0 picks a default based on the worker
    /// count).
    ///
    /// Each trial receives its own [`Trial::seed`] derived *only* from
    /// `base_seed` and the trial index ([`trial_seed`]), never from the
    /// shard layout — so for a fixed `base_seed` the returned vector is
    /// identical for every shard count and thread count.
    pub fn monte_carlo<R, F>(&self, base_seed: u64, trials: usize, shards: usize, run: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Trial) -> R + Sync,
    {
        if trials == 0 {
            return Vec::new();
        }
        let shards = if shards == 0 {
            (self.threads * 4).clamp(1, trials)
        } else {
            shards.clamp(1, trials)
        };
        let ranges = split_even(trials, shards);
        // Trial count is workload-determined; the shard layout is not (the
        // default shard count scales with the worker count).
        dcb_telemetry::counter!("fleet.pool.monte_carlo_trials").add(trials as u64);
        dcb_telemetry::volatile_counter!("fleet.pool.monte_carlo_shards").add(shards as u64);
        // Trace lanes are claimed per *trial*, not per shard: the shard
        // layout varies with the worker count, the trial list does not.
        let trial_lanes = dcb_trace::claim_lanes(trials);
        let chunks = self.run_all(&ranges, |range| {
            range
                .clone()
                .map(|index| {
                    let trial = Trial {
                        index,
                        seed: trial_seed(base_seed, index as u64),
                    };
                    match trial_lanes {
                        Some(base) => {
                            let _guard = dcb_trace::lane_scope(base + index as u64);
                            run(trial)
                        }
                        None => run(trial),
                    }
                })
                .collect::<Vec<R>>()
        });
        chunks.into_iter().flatten().collect()
    }
}

impl Default for FleetPool {
    fn default() -> Self {
        Self::new()
    }
}

/// One Monte-Carlo trial: its position in the batch and its private seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Index of the trial in `0..trials`.
    pub index: usize,
    /// Deterministic per-trial seed (see [`trial_seed`]).
    pub seed: u64,
}

/// Derives the seed for trial `index` of a batch seeded with `base_seed`:
/// a SplitMix64-style mix of the pair, so neighbouring indices yield
/// statistically independent streams while staying a pure function of
/// `(base_seed, index)`.
#[must_use]
pub fn trial_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `0..total` into `parts` contiguous near-even ranges.
fn split_even(total: usize, parts: usize) -> Vec<Range<usize>> {
    let base = total / parts;
    let remainder = total % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for part in 0..parts {
        let len = base + usize::from(part < remainder);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    ranges
}

/// The worker count implied by the environment: `DCB_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
#[must_use]
pub fn default_thread_count() -> usize {
    parse_thread_override(std::env::var("DCB_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Parses a `DCB_THREADS` value; `None` (unset, empty, zero, or garbage)
/// falls back to hardware parallelism. Factored out for testability.
#[must_use]
pub fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|value| value.trim().parse::<usize>().ok())
        .filter(|&threads| threads > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(37) ^ 5).collect();
        for threads in 1..=8 {
            let pool = FleetPool::with_threads(threads);
            let got = pool.run_all(&items, |x| x.wrapping_mul(37) ^ 5);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn run_all_handles_empty_and_single() {
        let pool = FleetPool::with_threads(4);
        assert_eq!(pool.run_all(&[] as &[u8], |_| 0u8), Vec::<u8>::new());
        assert_eq!(pool.run_all(&[9u8], |x| *x), vec![9]);
    }

    #[test]
    fn nested_batches_run_inline() {
        let pool = FleetPool::with_threads(4);
        let outer: Vec<usize> = (0..16).collect();
        let result = pool.run_all(&outer, |&i| {
            let inner = FleetPool::with_threads(4);
            inner.run_all(&[i, i + 1], |&j| j * 2).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&i| 2 * i + 2 * (i + 1)).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn monte_carlo_invariant_to_shards_and_threads() {
        let reference = FleetPool::with_threads(1)
            .monte_carlo(99, 100, 1, |t| (t.index, t.seed.wrapping_mul(3)));
        for threads in [1, 2, 5] {
            for shards in [1, 2, 3, 7, 100] {
                let got = FleetPool::with_threads(threads)
                    .monte_carlo(99, 100, shards, |t| (t.index, t.seed.wrapping_mul(3)));
                assert_eq!(got, reference, "threads={threads} shards={shards}");
            }
        }
    }

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..1000).map(|i| trial_seed(42, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision");
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
    }

    #[test]
    fn split_even_covers_everything() {
        for total in [1usize, 7, 100, 101] {
            for parts in [1usize, 2, 3, 7] {
                let ranges = split_even(total, parts.min(total));
                let mut covered = 0;
                let mut expected_start = 0;
                for range in &ranges {
                    assert_eq!(range.start, expected_start);
                    expected_start = range.end;
                    covered += range.len();
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 12 ")), Some(12));
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("-3")), None);
        assert_eq!(parse_thread_override(Some("many")), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(None), None);
    }
}
